"""The cluster network fabric: fluid flows with max-min fair sharing.

Every node has an egress shaper (any
:class:`~repro.netmodel.base.LinkModel` — a token bucket for the
emulated-EC2 experiments) and an ingress capacity.  Active flows share
those resources max-min fairly, which is what TCP congestion control
approximates for long-lived shuffle transfers on a non-blocking core
(the paper's 12-node cluster has an FDR InfiniBand fabric, so node
access links are the only bottlenecks).

Rates are piecewise-constant: :meth:`Fabric.compute_rates` performs the
water-filling, :meth:`Fabric.horizon` bounds how long the current rate
assignment stays valid (flow completions and shaper transitions), and
:meth:`Fabric.advance` integrates one step, returning completed flows.

Internally the fabric is a struct-of-arrays engine: flow endpoints,
remaining volumes, and rates live in flat numpy arrays kept in flow
insertion order, so water-filling runs as ``np.bincount`` incidence
counts plus vectorized fair-share passes, and ``horizon``/``advance``
are single fused array expressions instead of per-flow Python loops.
:class:`Flow` objects are handles into those arrays.  The vectorized
water-filling reproduces the reference progressive-filling algorithm
*bit for bit* — same saturation order, same tie-breaking (first
resource in flow-insertion order wins), same floating-point operation
order for the per-flow capacity subtractions — which is what lets the
golden-trace equivalence test pin pre-refactor outputs exactly.

The shaper side is batched the same way: the fabric holds a
:class:`~repro.netmodel.fleet.LinkModelFleet` (built automatically
from the ``egress_models`` sequence — homogeneous model lists get
struct-of-arrays fleets, anything else the per-model
:class:`~repro.netmodel.fleet.ScalarFleetAdapter` loop), so gathering
N egress ceilings, bounding N shaper horizons, and advancing N shapers
are single array operations rather than N scalar calls per event step.
Near-tied shaper horizons additionally *coalesce*: horizons within a
relative ``coalesce_eps`` of the binding event are treated as one
event, so a fleet of look-alike token buckets whose budgets differ
only by float residue transitions in one step instead of fragmenting
into N micro-steps.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.netmodel.base import LinkModel
from repro.netmodel.fleet import LinkModelFleet, build_fleet
from repro.simulator import _kernels

__all__ = ["Flow", "Fabric"]

#: Flows whose remaining volume drops to/below this complete (Gbit).
_COMPLETE_EPS_GBIT = 1e-9

#: Initial capacity of the flow arrays; doubled on demand.
_MIN_CAPACITY = 64

#: Below this many flows the water-filling and horizon scans run the
#: scalar reference algorithm: per-call numpy dispatch overhead beats
#: vectorization on tiny operands (small scenario-campaign cells),
#: while dense flow sets want the array path.  Both paths are
#: bit-identical by construction (see tests/simulator/test_fabric.py).
_SCALAR_CUTOFF = 64

#: Default relative tolerance for event-horizon coalescing: shaper
#: horizons within this factor of the step bound resolve in the same
#: step.  One part per billion is far below any physically distinct
#: event spacing but wide enough to absorb accumulation residue that
#: escapes the shapers' own state-snap epsilons (budget deltas just
#: above ``_EMPTY_EPS_GBIT`` on ordinary bucket scales).
_COALESCE_EPS = 1e-9


class Flow:
    """One fluid transfer between two nodes.

    While registered, the authoritative ``remaining_gbit``/``rate_gbps``
    state lives in the owning fabric's arrays and the handle reads
    through; once completed or removed, the final values are
    materialized onto the handle (so a completed flow still reports its
    terminal state, as callers of :meth:`Fabric.advance` expect).
    """

    __slots__ = ("flow_id", "src", "dst", "tag", "_fabric", "_index", "_remaining", "_rate")

    def __init__(
        self, flow_id: int, src: int, dst: int, volume_gbit: float, tag: object = None
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.tag = tag
        self._fabric: "Fabric | None" = None
        self._index = -1
        self._remaining = float(volume_gbit)
        self._rate = 0.0

    @property
    def remaining_gbit(self) -> float:
        if self._fabric is not None:
            return float(self._fabric._remaining[self._index])
        return self._remaining

    @remaining_gbit.setter
    def remaining_gbit(self, value: float) -> None:
        if self._fabric is not None:
            self._fabric._remaining[self._index] = value
            self._fabric._flow_bound_valid = False
        else:
            self._remaining = float(value)

    @property
    def rate_gbps(self) -> float:
        if self._fabric is not None:
            return float(self._fabric._rate[self._index])
        return self._rate

    @rate_gbps.setter
    def rate_gbps(self, value: float) -> None:
        if self._fabric is not None:
            self._fabric._rate[self._index] = value
            self._fabric._flow_bound_valid = False
        else:
            self._rate = float(value)

    def completion_time(self) -> float:
        """Seconds until completion at the current rate."""
        remaining = self.remaining_gbit
        if remaining <= 0:
            return 0.0
        rate = self.rate_gbps
        if rate <= 0:
            return math.inf
        return remaining / rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flow({self.src}->{self.dst}, {self.remaining_gbit:.1f} Gbit "
            f"@ {self.rate_gbps:.2f} Gbps)"
        )


class Fabric:
    """Max-min fair fluid network between cluster nodes."""

    def __init__(
        self,
        egress_models: Sequence[LinkModel] | LinkModelFleet,
        ingress_caps_gbps: Sequence[float],
        coalesce_eps: float = _COALESCE_EPS,
    ) -> None:
        if isinstance(egress_models, LinkModelFleet):
            self.fleet = egress_models
        else:
            self.fleet = build_fleet(egress_models)
        if coalesce_eps < 0:
            raise ValueError("coalesce_eps cannot be negative")
        self.coalesce_eps = float(coalesce_eps)
        if self.fleet.n != len(ingress_caps_gbps):
            raise ValueError("one ingress cap per egress model required")
        if any(cap <= 0 for cap in ingress_caps_gbps):
            raise ValueError("ingress caps must be positive")
        self.egress_models = list(self.fleet.models)
        self.ingress_caps = [float(c) for c in ingress_caps_gbps]
        #: Number of nodes attached to the fabric.
        self.n_nodes = self.fleet.n
        self._ingress_arr = np.asarray(self.ingress_caps, dtype=float)
        self.flows: dict[int, Flow] = {}
        self._next_id = 0
        self._rates_valid = False
        # Struct-of-arrays flow state, in insertion order up to _n.
        self._src = np.zeros(_MIN_CAPACITY, dtype=np.intp)
        self._dst = np.zeros(_MIN_CAPACITY, dtype=np.intp)
        self._remaining = np.zeros(_MIN_CAPACITY, dtype=float)
        self._rate = np.zeros(_MIN_CAPACITY, dtype=float)
        self._handles: list[Flow] = []
        self._n = 0
        #: Per-node aggregate send rates under the current assignment,
        #: computed at most once per event step (``None`` = stale).
        self._egress_cache: np.ndarray | None = None
        #: Conservative lower bound on the earliest flow completion,
        #: maintained incrementally across completion-free advances so
        #: :meth:`horizon` can skip the O(flows) scan when no flow can
        #: possibly bind (see the maintenance notes in :meth:`advance`).
        self._flow_bound = math.inf
        self._flow_bound_valid = False
        #: Scratch for the compiled advance kernel's completed indices.
        self._done_scratch = np.empty(_MIN_CAPACITY, dtype=np.int64)
        #: Cached scalar water-filling topology (resource ids, flow
        #: adjacency) for the current flow set; rebuilt whenever flows
        #: are added or removed.  Between flow-set changes only the
        #: resource capacities (shaper limits) move, so the per-step
        #: scalar path reuses the structure (see
        #: :meth:`_compute_rates_scalar`).
        self._scalar_topo: tuple | None = None
        #: Optional external buffer for the egress cache (a view into
        #: the multistream runner's shared staging array); ``None``
        #: means refills allocate their own array.
        self._egress_out: np.ndarray | None = None

    def set_recorder(self, recorder) -> None:
        """Attach (or with ``None`` detach) an observability recorder.

        Wires the fleet's :attr:`~repro.netmodel.fleet.LinkModelFleet.
        transition_hook` to the recorder's shaper-transition handler so
        throttle/redraw events surface as metrics and trace events.
        The hook only reads fleet state; detaching restores the
        zero-overhead path.
        """
        if recorder is None:
            self.fleet.transition_hook = None
        else:
            recorder.bind_fabric(self)
            self.fleet.transition_hook = recorder.on_shaper_transition

    # ------------------------------------------------------------------
    # flow registry
    # ------------------------------------------------------------------
    def add_flow(self, src: int, dst: int, volume_gbit: float, tag: object = None) -> Flow:
        """Register a new transfer; rates are recomputed lazily."""
        if not 0 <= src < self.n_nodes or not 0 <= dst < self.n_nodes:
            raise ValueError(f"flow endpoints out of range: {src}->{dst}")
        if src == dst:
            raise ValueError("loopback transfers never touch the fabric")
        if volume_gbit <= 0:
            raise ValueError("flow volume must be positive")
        if self._n == self._src.shape[0]:
            self._grow()
        index = self._n
        self._src[index] = src
        self._dst[index] = dst
        self._remaining[index] = volume_gbit
        self._rate[index] = 0.0
        flow = Flow(self._next_id, src, dst, volume_gbit, tag=tag)
        flow._fabric = self
        flow._index = index
        self._next_id += 1
        self.flows[flow.flow_id] = flow
        self._handles.append(flow)
        self._n = index + 1
        self._rates_valid = False
        self._egress_cache = None
        self._flow_bound_valid = False
        self._scalar_topo = None
        return flow

    def remove_flow(self, flow: Flow) -> None:
        """Withdraw a flow (for cancelled tasks).

        A handle not registered here — already completed or removed,
        or owned by a different fabric (flow ids are per-fabric
        counters, so ids alone cannot identify a flow) — is a no-op.
        """
        if flow._fabric is not self:
            return
        keep = np.ones(self._n, dtype=bool)
        keep[flow._index] = False
        self._compact(keep)
        self._rates_valid = False
        self._egress_cache = None
        self._flow_bound_valid = False

    def _grow(self) -> None:
        capacity = max(2 * self._src.shape[0], _MIN_CAPACITY)
        for name in ("_src", "_dst", "_remaining", "_rate"):
            old = getattr(self, name)
            new = np.zeros(capacity, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)
        self._done_scratch = np.empty(capacity, dtype=np.int64)

    def _compact(self, keep: np.ndarray, removed: np.ndarray | None = None) -> None:
        """Drop flows where ``keep`` is False, preserving insertion order.

        ``removed`` optionally carries the precomputed indices of the
        dropped flows (callers that already ran ``flatnonzero`` on the
        completion mask pass it to avoid a second scan).
        """
        n = self._n
        self._scalar_topo = None
        if removed is None:
            removed = np.flatnonzero(~keep)
        for i in removed.tolist():
            handle = self._handles[i]
            handle._remaining = float(self._remaining[i])
            handle._rate = float(self._rate[i])
            handle._fabric = None
            handle._index = -1
            del self.flows[handle.flow_id]
        kept = np.flatnonzero(keep)
        k = kept.shape[0]
        self._src[:k] = self._src[:n][keep]
        self._dst[:k] = self._dst[:n][keep]
        self._remaining[:k] = self._remaining[:n][keep]
        self._rate[:k] = self._rate[:n][keep]
        handles = [self._handles[i] for i in kept.tolist()]
        for index, handle in enumerate(handles):
            handle._index = index
        self._handles = handles
        self._n = k

    # ------------------------------------------------------------------
    # water-filling
    # ------------------------------------------------------------------
    def compute_rates(self) -> None:
        """Water-filling max-min fair allocation under current limits.

        Resources are node egress limits (from the shapers' current
        state) and node ingress caps.  Classic progressive filling:
        repeatedly saturate the tightest resource and freeze its flows.
        A no-op while the current assignment is still valid — flow
        arrivals/completions and shaper ceiling changes (detected by
        :meth:`advance`) invalidate it, as does
        :meth:`invalidate_rates`.
        """
        if self._rates_valid:
            return
        self._egress_cache = None
        self._flow_bound_valid = False
        n = self._n
        if n == 0:
            self._rates_valid = True
            return
        if _kernels.HAVE_JIT:
            _kernels.waterfill(
                self._src[:n],
                self._dst[:n],
                self.fleet.limits(),
                self._ingress_arr.copy(),
                self._rate[:n],
            )
            self._rates_valid = True
            return
        if n < _SCALAR_CUTOFF:
            self._compute_rates_scalar(n)
            self._rates_valid = True
            return
        src = self._src[:n]
        dst = self._dst[:n]
        rate = self._rate[:n]
        rate[:] = 0.0
        n_nodes = self.n_nodes

        out_rem = self.fleet.limits()
        in_rem = self._ingress_arr.copy()
        out_counts = np.bincount(src, minlength=n_nodes)
        in_counts = np.bincount(dst, minlength=n_nodes)
        ranks: np.ndarray | None = None

        unfixed = np.ones(n, dtype=bool)
        n_unfixed = n
        shares = np.empty(2 * n_nodes, dtype=float)
        while n_unfixed:
            # Fair share each resource could give its unfixed flows.
            shares[:] = np.inf
            np.divide(
                out_rem, out_counts, out=shares[:n_nodes], where=out_counts > 0
            )
            np.divide(
                in_rem, in_counts, out=shares[n_nodes:], where=in_counts > 0
            )
            best_share = shares.min()
            if not math.isfinite(best_share):
                break
            candidates = np.flatnonzero(shares == best_share)
            if candidates.shape[0] == 1:
                best = int(candidates[0])
            else:
                if ranks is None:
                    ranks = self._tie_break_ranks(src, dst)
                best = int(candidates[np.argmin(ranks[candidates])])
            # Freeze the bottleneck's flows at the fair share.
            if best < n_nodes:
                selected = unfixed & (src == best)
            else:
                selected = unfixed & (dst == best - n_nodes)
            frozen = np.flatnonzero(selected)
            rate_val = max(float(best_share), 0.0)
            rate[frozen] = rate_val
            unfixed[frozen] = False
            n_unfixed -= frozen.shape[0]
            frozen_src = src[frozen]
            frozen_dst = dst[frozen]
            # Scalar clamped subtraction per frozen flow, matching the
            # reference loop's floating-point operation order (the
            # per-iteration rate is uniform, so order within the batch
            # cannot change the result).
            for s_node, d_node in zip(frozen_src.tolist(), frozen_dst.tolist()):
                out_rem[s_node] = max(out_rem[s_node] - rate_val, 0.0)
                in_rem[d_node] = max(in_rem[d_node] - rate_val, 0.0)
            out_counts -= np.bincount(frozen_src, minlength=n_nodes)
            in_counts -= np.bincount(frozen_dst, minlength=n_nodes)
        self._rates_valid = True

    def _compute_rates_scalar(self, n: int) -> None:
        """Reference progressive filling over Python scalars.

        Semantically (and bit-for-bit) the same algorithm as the
        vectorized path: resources tracked in one insertion-ordered
        dict — (out, src), (in, dst) per flow in flow order — the
        tightest fair share saturates first, first-inserted resource
        wins ties, and capacity subtraction clamps per frozen flow.

        Active-flow counts per resource are maintained incrementally
        (decremented as flows freeze) instead of intersecting member
        sets against the unfixed set on every scan — the shares and
        the saturation order come out identical, without the O(R)
        set allocations per water-filling round.
        """
        if n == 1:
            # One flow: the tighter of its two resources is the unique
            # bottleneck.  The strict ``<`` scan order makes the out
            # resource win exact ties, so this is the general loop's
            # first (and only) round verbatim.
            lim = self.fleet.limit_at(self._src[0])
            cap = self.ingress_caps[self._dst[0]]
            best_share = cap if cap < lim else lim
            self._rate[0] = best_share if best_share > 0.0 else 0.0
            return
        topo = self._scalar_topo
        if topo is None:
            src = self._src[:n].tolist()
            dst = self._dst[:n].tolist()
            caps = self.ingress_caps
            # Resources as flat parallel lists in first-appearance order
            # over the (out, src), (in, dst) sequence — the same rank
            # the reference dict ordering produced, without per-round
            # dict and set churn.  ``res_flows`` adjacency is
            # deduplicated by construction (a flow's out and in
            # resources are distinct).  The structure depends only on
            # the flow set, so it is cached until flows change; the
            # capacities (shaper limits, ingress caps) are re-read on
            # every call below.
            out_id = [-1] * self.n_nodes
            in_id = [-1] * self.n_nodes
            flow_out = [0] * n
            flow_in = [0] * n
            res_node: list[int] = []
            res_is_out: list[bool] = []
            res_cnt0: list[int] = []
            res_flows: list[list[int]] = []
            for i in range(n):
                node = src[i]
                rid = out_id[node]
                if rid < 0:
                    rid = len(res_node)
                    out_id[node] = rid
                    res_node.append(node)
                    res_is_out.append(True)
                    res_cnt0.append(0)
                    res_flows.append([])
                flow_out[i] = rid
                res_cnt0[rid] += 1
                res_flows[rid].append(i)
                node = dst[i]
                rid = in_id[node]
                if rid < 0:
                    rid = len(res_node)
                    in_id[node] = rid
                    res_node.append(node)
                    res_is_out.append(False)
                    res_cnt0.append(0)
                    res_flows.append([])
                flow_in[i] = rid
                res_cnt0[rid] += 1
                res_flows[rid].append(i)
            topo = (flow_out, flow_in, res_node, res_is_out, res_cnt0, res_flows)
            self._scalar_topo = topo
        flow_out, flow_in, res_node, res_is_out, res_cnt0, res_flows = topo
        caps = self.ingress_caps
        fleet = self.fleet
        if sum(res_is_out) <= 4:
            # Few sending nodes: scalar limit reads beat materializing
            # (and list-converting) the whole fleet's limit array.
            res_rem = [
                (fleet.limit_at(node) if is_out else caps[node])
                for node, is_out in zip(res_node, res_is_out)
            ]
        else:
            limits = fleet.limits().tolist()
            res_rem = [
                (limits[node] if is_out else caps[node])
                for node, is_out in zip(res_node, res_is_out)
            ]
        res_cnt = res_cnt0.copy()
        n_res = len(res_rem)
        rates = [0.0] * n
        fixed = [False] * n
        n_unfixed = n
        while n_unfixed:
            best = -1
            best_share = math.inf
            for rid in range(n_res):
                count = res_cnt[rid]
                if count:
                    share = res_rem[rid] / count
                    if share < best_share:
                        best_share = share
                        best = rid
            if best < 0:
                break
            # ``v if v > 0.0 else 0.0`` is ``max(v, 0.0)``: -0.0 cannot
            # arise from IEEE subtraction under round-to-nearest.
            rate_val = best_share if best_share > 0.0 else 0.0
            for i in res_flows[best]:
                if fixed[i]:
                    continue
                fixed[i] = True
                rates[i] = rate_val
                n_unfixed -= 1
                rid = flow_out[i]
                v = res_rem[rid] - rate_val
                res_rem[rid] = v if v > 0.0 else 0.0
                res_cnt[rid] -= 1
                rid = flow_in[i]
                v = res_rem[rid] - rate_val
                res_rem[rid] = v if v > 0.0 else 0.0
                res_cnt[rid] -= 1
        self._rate[:n] = rates

    def _tie_break_ranks(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Resource order used to break exact fair-share ties.

        Replicates the reference implementation's dict ordering:
        resources rank by first appearance in the (out, src), (in, dst)
        sequence over flows in insertion order, and the lowest-ranked
        resource wins.  Computed lazily — most water-filling iterations
        have a unique bottleneck.
        """
        n = src.shape[0]
        n_nodes = self.n_nodes
        positions = 2 * np.arange(n, dtype=np.intp)
        out_rank = np.full(n_nodes, 2 * n + 2, dtype=np.intp)
        in_rank = np.full(n_nodes, 2 * n + 2, dtype=np.intp)
        np.minimum.at(out_rank, src, positions)
        np.minimum.at(in_rank, dst, positions + 1)
        return np.concatenate([out_rank, in_rank])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _egress_raw(self) -> np.ndarray:
        """Per-node aggregate send rates; cached until rates change.

        When ``_egress_out`` is set (the batched multistream runner
        points it at this cell's slice of the shared staging array),
        refills write into that buffer in place, so the caller's copy
        of the egress vector is maintained for free.
        """
        if self._egress_cache is None:
            n = self._n
            out = self._egress_out
            if out is not None:
                out.fill(0.0)
                if n <= 8:
                    src = self._src
                    rate = self._rate
                    for i in range(n):
                        out[src[i]] += rate[i]
                else:
                    out[:] = np.bincount(
                        self._src[:n],
                        weights=self._rate[:n],
                        minlength=self.n_nodes,
                    )
                self._egress_cache = out
            elif n <= 8:
                # bincount accumulates weights in input order; this
                # loop performs the identical additions, skipping the
                # ufunc dispatch that dominates at campaign-cell sizes.
                out = np.zeros(self.n_nodes, dtype=float)
                src = self._src
                rate = self._rate
                for i in range(n):
                    out[src[i]] += rate[i]
                self._egress_cache = out
            else:
                self._egress_cache = np.bincount(
                    self._src[:n], weights=self._rate[:n], minlength=self.n_nodes
                )
        return self._egress_cache

    def node_egress_rates(self) -> np.ndarray:
        """Aggregate send rate per node under the current assignment."""
        return self._egress_raw().copy()

    def horizon(self) -> float:
        """Seconds the current rate assignment is guaranteed valid.

        The bound is the earliest flow completion or shaper transition,
        except that shaper horizons within ``coalesce_eps`` (relative)
        of that bound coalesce into the same event: the step extends to
        the latest of the near-tied horizons, so shapers transitioning
        at float-residue-distinct instants resolve together instead of
        fragmenting the simulation into degenerate micro-steps.  Models
        tolerate the resulting sub-epsilon overshoot by contract.

        The flow-completion side is O(flows), and most event steps do
        not move it (steps bounded by compute completions, arrivals,
        or shaper transitions leave every remaining volume strictly
        positive), so the fabric maintains a conservative lower bound
        on the earliest flow completion across completion-free
        advances (see :meth:`advance`).  When that cached bound
        provably clears the binding shaper event's coalescing window,
        the scan cannot change the answer and is skipped — the
        returned bound is bit-identical to the full computation.
        """
        if not self._rates_valid:
            self.compute_rates()
        egress = self._egress_raw()
        shaper_bounds = self.fleet.horizons(egress)
        shaper_min = float(shaper_bounds.min()) if shaper_bounds.size else math.inf
        flow_bound = self._flow_completion_bound(shaper_min)
        bound = flow_bound if flow_bound < shaper_min else shaper_min
        if self.coalesce_eps > 0.0 and 0.0 < bound < math.inf:
            ceiling = bound * (1.0 + self.coalesce_eps)
            # Only scan for near-ties when a shaper is at (or within
            # epsilon of) the binding event; when a flow completion
            # binds well before any shaper, there is nothing to
            # coalesce.
            if shaper_min <= ceiling:
                near = shaper_bounds[shaper_bounds <= ceiling]
                coalesced = float(near.max())
                if coalesced > bound:
                    bound = coalesced
        return bound

    def horizon_with_shaper_bounds(self, shaper_bounds: list[float]) -> float:
        """:meth:`horizon` with externally computed shaper horizons.

        The batched multistream runner gathers every cell's shaper
        horizons in one concatenated super-fleet call and hands each
        fabric its slice (as a plain float list) here.  The combine —
        shaper minimum, flow completion bound (with the same skip
        cache), near-tie coalescing — is selection-only over the same
        float64 values :meth:`horizon` would compute, so the result is
        bit-identical; only the numpy dispatches on a tiny per-cell
        array are replaced by scalar Python.

        Callers must have computed rates (the runner's step prologue
        does) and pass exactly one horizon per node, taken from this
        fabric's fleet state.
        """
        if not self._rates_valid:
            self.compute_rates()
        shaper_min = min(shaper_bounds) if shaper_bounds else math.inf
        flow_bound = self._flow_completion_bound(shaper_min)
        bound = flow_bound if flow_bound < shaper_min else shaper_min
        if self.coalesce_eps > 0.0 and 0.0 < bound < math.inf:
            ceiling = bound * (1.0 + self.coalesce_eps)
            if shaper_min <= ceiling:
                # max over {h <= ceiling}: the set contains shaper_min,
                # so seeding the scan with it is the numpy ``near.max()``.
                coalesced = shaper_min
                for h in shaper_bounds:
                    if h <= ceiling and h > coalesced:
                        coalesced = h
                if coalesced > bound:
                    bound = coalesced
        return bound

    def _flow_completion_bound(self, shaper_min: float) -> float:
        """Earliest flow completion, or inf when provably not binding.

        When the cached conservative lower bound proves every flow
        completes strictly after the coalescing ceiling around the
        binding shaper event, the O(flows) scan could neither tighten
        the step nor join the coalesced set — skip it and report inf.
        (An infinite ``shaper_min`` never takes this path.)  Otherwise
        scan (kernel, scalar, or vectorized by flow count) and refresh
        the cache.
        """
        n = self._n
        if self._flow_bound_valid and self._flow_bound > shaper_min * (
            1.0 + self.coalesce_eps
        ):
            return math.inf
        if _kernels.HAVE_JIT and n:
            flow_bound = float(
                _kernels.flow_min_bound(self._remaining[:n], self._rate[:n])
            )
        elif n == 1:
            rem = float(self._remaining[0])
            rate = float(self._rate[0])
            if rem <= 0.0:
                flow_bound = 0.0
            elif rate <= 0.0:
                flow_bound = math.inf
            else:
                flow_bound = rem / rate
        elif 0 < n < _SCALAR_CUTOFF:
            flow_bound = math.inf
            rates = self._rate[:n].tolist()
            for rem, rate in zip(self._remaining[:n].tolist(), rates):
                if rem <= 0.0:
                    completion = 0.0
                elif rate <= 0.0:
                    continue  # math.inf never tightens the bound
                else:
                    completion = rem / rate
                if completion < flow_bound:
                    flow_bound = completion
        elif n:
            remaining = self._remaining[:n]
            rate = self._rate[:n]
            completion = np.full(n, math.inf)
            np.divide(remaining, rate, out=completion, where=rate > 0.0)
            completion[remaining <= 0.0] = 0.0
            flow_bound = float(completion.min())
        else:
            return math.inf
        self._flow_bound = flow_bound
        self._flow_bound_valid = True
        return flow_bound

    def advance(self, dt: float) -> list[Flow]:
        """Integrate ``dt`` seconds; returns flows that completed.

        Callers must not advance past :meth:`horizon`.  Shaper models
        advance with their node's aggregate egress rate so token
        buckets drain exactly as much as the flows send.  If any
        shaper's ceiling changed over the step (a token-bucket tier
        transition, a stochastic resample), the rate assignment is
        invalidated even when no flow completed — rates computed
        against the old ceiling are stale.
        """
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        if not self._rates_valid:
            self.compute_rates()
        egress = self._egress_raw()
        limit_changed = self.fleet.advance(dt, egress)
        return self._advance_flows(dt, limit_changed)

    def _advance_flows(self, dt: float, limit_changed: bool) -> list[Flow]:
        """Flow-side half of :meth:`advance`: integrate and complete.

        The batched multistream runner advances all cells' shapers in
        one concatenated super-fleet call and then calls this per cell
        with the cell's own ``dt`` and the reduced per-cell
        limit-changed flag; the serial :meth:`advance` calls it with
        its own fleet result.  Both paths run the same flow update,
        compaction, and flow-bound cache maintenance.
        """
        completed: list[Flow] = []
        n = self._n
        if n:
            if _kernels.HAVE_JIT:
                count = _kernels.advance_flows(
                    self._remaining[:n],
                    self._rate[:n],
                    dt,
                    _COMPLETE_EPS_GBIT,
                    self._done_scratch,
                )
                if count:
                    done_idx = self._done_scratch[:count].copy()
                    completed = [self._handles[i] for i in done_idx.tolist()]
                    keep = np.ones(n, dtype=bool)
                    keep[done_idx] = False
                    self._compact(keep, removed=done_idx)
                    self._rates_valid = False
                    self._egress_cache = None
            elif n == 1:
                v = float(self._remaining[0]) - float(self._rate[0]) * dt
                self._remaining[0] = v
                if v <= _COMPLETE_EPS_GBIT:
                    completed = [self._handles[0]]
                    self._compact(
                        np.zeros(1, dtype=bool),
                        removed=np.zeros(1, dtype=np.intp),
                    )
                    self._rates_valid = False
                    self._egress_cache = None
            elif n < _SCALAR_CUTOFF:
                # Scalar loop over a handful of flows: the same
                # ``remaining -= rate * dt`` multiply-subtract per
                # element (IEEE-identical to the vectorized update),
                # without numpy dispatch on tiny arrays.
                remaining = self._remaining
                rem_list = remaining[:n].tolist()
                rate_list = self._rate[:n].tolist()
                done_list: list[int] = []
                for i in range(n):
                    v = rem_list[i] - rate_list[i] * dt
                    rem_list[i] = v
                    if v <= _COMPLETE_EPS_GBIT:
                        done_list.append(i)
                remaining[:n] = rem_list
                if done_list:
                    completed = [self._handles[i] for i in done_list]
                    keep = np.ones(n, dtype=bool)
                    keep[done_list] = False
                    self._compact(
                        keep, removed=np.array(done_list, dtype=np.intp)
                    )
                    self._rates_valid = False
                    self._egress_cache = None
            else:
                remaining = self._remaining[:n]
                remaining -= self._rate[:n] * dt
                done = remaining <= _COMPLETE_EPS_GBIT
                done_idx = np.flatnonzero(done)
                if done_idx.shape[0]:
                    completed = [self._handles[i] for i in done_idx.tolist()]
                    self._compact(~done, removed=done_idx)
                    self._rates_valid = False
                    self._egress_cache = None
        if limit_changed:
            self._rates_valid = False
        if completed or limit_changed:
            # Remaining volumes or rates moved in ways the cached
            # completion bound cannot track; drop it.
            self._flow_bound_valid = False
        elif self._flow_bound_valid:
            # No completion and no rate change: every flow's completion
            # shrank by exactly dt (up to float residue).  Keep the
            # cached lower bound valid by shifting it down dt and
            # paying a margin that strictly dominates the accumulated
            # ulp error of the ``remaining -= rate * dt`` update — the
            # relative term covers division/min rounding at any scale,
            # the dt-proportional term covers the multiply-subtract
            # residue even when the bound lands near zero.
            self._flow_bound = (self._flow_bound - dt) * (1.0 - 1e-12) - dt * 1e-12
        return completed

    def invalidate_rates(self) -> None:
        """Force a rate recomputation before the next horizon/advance.

        Required after mutating an egress model behind the fabric's
        back (``set_budget``, ``reset``, resting a shaper directly).
        """
        self._rates_valid = False
        self._egress_cache = None
        self._flow_bound_valid = False
