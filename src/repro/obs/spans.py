"""Span and event tracing in simulated time.

Records job / stage / task-group / flow spans and discrete events
(admission, launch, preempt, deadline-miss, shaper transitions) as they
happen inside the simulator, then exports them as JSONL or as Chrome
trace-event JSON — the ``{"traceEvents": [...]}`` format that
chrome://tracing and Perfetto open directly, so a simulated campaign
can be inspected with the same tools as a real distributed trace.

Timestamps are simulated seconds; the Chrome export converts them to
microseconds (the trace-event unit).  Tracks (one per job, one for the
fabric, ...) map to thread lanes via ``thread_name`` metadata events.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

__all__ = ["SpanTracer"]


class SpanTracer:
    """Collects spans (``begin``/``end``) and instant events in sim time."""

    def __init__(self) -> None:
        self._records: list[dict] = []
        self._open: dict[int, dict] = {}
        self._next_id = 1
        self._tracks: dict[str, int] = {}

    def _track_id(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks)
            self._tracks[track] = tid
        return tid

    def begin(self, name: str, cat: str, t: float, track: str, **args) -> int:
        """Open a span; returns an id for the matching :meth:`end`."""
        span_id = self._next_id
        self._next_id += 1
        record = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "t0": float(t),
            "t1": None,
            "track": track,
            "args": args,
        }
        self._track_id(track)
        self._records.append(record)
        self._open[span_id] = record
        return span_id

    def end(self, span_id: int, t: float, **args) -> None:
        """Close the span opened as ``span_id`` at sim time ``t``."""
        record = self._open.pop(span_id)
        record["t1"] = float(t)
        if args:
            record["args"].update(args)

    def event(self, name: str, cat: str, t: float, track: str, **args) -> None:
        """Record an instant event."""
        self._track_id(track)
        self._records.append(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "t0": float(t),
                "track": track,
                "args": args,
            }
        )

    def close_open_spans(self, t: float) -> int:
        """Close any still-open spans at ``t`` (end-of-run flush)."""
        closed = 0
        for span_id in list(self._open):
            self.end(span_id, t, truncated=True)
            closed += 1
        return closed

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[dict]:
        """All raw records (spans carry ``t0``/``t1``, events ``t0``)."""
        return list(self._records)

    def spans(self, cat: str | None = None) -> list[dict]:
        """Completed spans, optionally filtered by category."""
        return [
            r
            for r in self._records
            if r["ph"] == "X"
            and r["t1"] is not None
            and (cat is None or r["cat"] == cat)
        ]

    def events(self, cat: str | None = None) -> list[dict]:
        """Instant events, optionally filtered by category."""
        return [
            r
            for r in self._records
            if r["ph"] == "i" and (cat is None or r["cat"] == cat)
        ]

    def to_jsonl(self) -> str:
        """One JSON object per line, in record order."""
        return "\n".join(json.dumps(r, sort_keys=True) for r in self._records)

    def _chrome_events(self) -> Iterator[dict]:
        for track, tid in self._tracks.items():
            yield {
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        for record in self._records:
            tid = self._tracks[record["track"]]
            event = {
                "name": record["name"],
                "cat": record["cat"],
                "pid": 0,
                "tid": tid,
                "ts": record["t0"] * 1e6,
                "args": record["args"],
            }
            if record["ph"] == "X":
                t1 = record["t1"]
                if t1 is None:
                    continue  # never closed and not flushed: drop
                event["ph"] = "X"
                event["dur"] = (t1 - record["t0"]) * 1e6
            else:
                event["ph"] = "i"
                event["s"] = "t"
            yield event

    def to_chrome_trace(self) -> dict:
        """The trace in Chrome trace-event JSON (Perfetto-loadable)."""
        return {
            "traceEvents": list(self._chrome_events()),
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Write :meth:`to_chrome_trace` JSON to ``path``."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace(), indent=1))
        return path

    def write_jsonl(self, path: str | Path) -> Path:
        """Write :meth:`to_jsonl` to ``path``."""
        path = Path(path)
        path.write_text(self.to_jsonl() + "\n")
        return path
