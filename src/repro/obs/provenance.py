"""Per-cell execution provenance for the campaign runtime.

Every cell a worker executes gets a small provenance record — wall
time, peak RSS, completion wall-clock, plus the simulator step count
and SLO violation count when the result exposes them — stored in the
cell's ``ArtifactStore``
manifest *meta* (never in the documents, so store content hashes and
the serial == pool == shard byte-equivalence contract are untouched).
``repro campaign status`` reads these records back to compute per-shard
throughput and ETA.
"""

from __future__ import annotations

import time
from typing import Mapping

__all__ = ["PROVENANCE_KEY", "cell_provenance"]

#: Manifest-meta key under which provenance records are stored.
PROVENANCE_KEY = "obs"


def _result_int(result: object, name: str) -> int | None:
    if isinstance(result, Mapping):
        value = result.get(name)
    else:
        value = getattr(result, name, None)
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        return None


def cell_provenance(wall_s: float, result: object = None) -> dict:
    """Build one provenance record for a just-executed cell."""
    record = {
        "wall_s": round(float(wall_s), 6),
        "unix_s": round(time.time(), 3),
    }
    try:
        import resource

        record["maxrss_kb"] = int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        )
    except (ImportError, OSError):  # non-unix platforms
        pass
    n_steps = _result_int(result, "n_steps")
    if n_steps is not None:
        record["n_steps"] = n_steps
    # Serving cells expose their SLO verdict; ``repro campaign status``
    # surfaces the campaign-wide violation count as an SLO column.
    slo_violations = _result_int(result, "slo_violations")
    if slo_violations is not None:
        record["slo_violations"] = slo_violations
    return record
