"""Lightweight metrics: counters, gauges, histograms with label sets.

The paper's methodology (F5.x) insists that variability be *observed*,
not assumed; this module gives the simulator and the campaign runtime a
zero-dependency metrics vocabulary modelled on the Prometheus data
model.  A :class:`MetricsRegistry` holds named metrics; each metric
keeps one float (or bucket vector) per label set.  The registry renders
the standard text exposition format (``# HELP`` / ``# TYPE`` / sample
lines) so ``repro campaign status --prom`` output can be scraped by any
Prometheus-compatible collector, and :func:`parse_prometheus_text`
round-trips it for validation in tests and CI.

Nothing here allocates on the hot path unless a metric is actually
touched — the simulator's disabled-observability contract lives in
:mod:`repro.obs.recorder`, not here.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, in seconds (latency-shaped).
DEFAULT_BUCKETS = (
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
    1800.0,
    7200.0,
)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    """Canonical (sorted, stringified) form of a label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Base class: a named family of samples keyed by label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help
        self._samples: dict[tuple[tuple[str, str], ...], float] = {}

    def value(self, **labels: str) -> float:
        """Current value for one label set (0.0 when never touched)."""
        return self._samples.get(_label_key(labels), 0.0)

    def samples(self) -> dict[tuple[tuple[str, str], ...], float]:
        """All (label-set, value) samples of this family."""
        return dict(self._samples)

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key in sorted(self._samples):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_value(self._samples[key])}"
            )
        return lines


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: str) -> None:
        """Add ``value`` (must be >= 0) to the labelled sample."""
        if value < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + value


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled sample to ``value``."""
        self._samples[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels: str) -> None:
        """Add ``value`` (may be negative) to the labelled sample."""
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + value


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    Each label set keeps per-bucket counts plus ``_sum`` and ``_count``;
    buckets are cumulative at render time (``le`` upper bounds with a
    final ``+Inf``).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = bounds
        self._bucket_counts: dict[tuple[tuple[str, str], ...], list[int]] = {}
        self._counts: dict[tuple[tuple[str, str], ...], int] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation."""
        key = _label_key(labels)
        counts = self._bucket_counts.get(key)
        if counts is None:
            counts = [0] * (len(self.buckets) + 1)
            self._bucket_counts[key] = counts
        # First bucket whose upper bound covers the value; the extra
        # slot is the +Inf overflow bucket.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._samples[key] = self._samples.get(key, 0.0) + float(value)
        self._counts[key] = self._counts.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        """Total number of observations for one label set."""
        return self._counts.get(_label_key(labels), 0)

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key in sorted(self._bucket_counts):
            counts = self._bucket_counts[key]
            cumulative = 0
            for bound, n in zip(self.buckets, counts):
                cumulative += n
                le = 'le="' + _format_value(bound) + '"'
                lines.append(
                    f"{self.name}_bucket{_render_labels(key, le)} {cumulative}"
                )
            cumulative += counts[-1]
            inf = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket{_render_labels(key, inf)} {cumulative}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(self._samples.get(key, 0.0))}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(key)} "
                f"{self._counts.get(key, 0)}"
            )
        return lines


class MetricsRegistry:
    """A named collection of metrics with idempotent registration."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(name, lambda: Histogram(name, help, buckets), "histogram")

    def metrics(self) -> list[_Metric]:
        """All registered metrics, in name order."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        for metric in self.metrics():
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r"\s+(?P<value>[-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|\.\d+|Inf|NaN))"
    r"(?:\s+\d+)?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def parse_prometheus_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    This is a strict validating parser for the subset the registry
    renders (and what ``repro campaign status --prom`` emits): ``# HELP``
    and ``# TYPE`` comments plus sample lines.  Raises
    :class:`ValueError` on any malformed line so CI can use it as a
    format gate.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    typed: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) >= 3 and fields[1] in ("HELP", "TYPE"):
                if not _NAME_RE.match(fields[2]):
                    raise ValueError(
                        f"line {lineno}: bad metric name in comment: {raw!r}"
                    )
                if fields[1] == "TYPE":
                    typed.add(fields[2])
                continue
            raise ValueError(f"line {lineno}: malformed comment: {raw!r}")
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        labels: list[tuple[str, str]] = []
        body = match.group("labels")
        if body:
            pos = 0
            while pos < len(body):
                pair = _LABEL_PAIR_RE.match(body, pos)
                if not pair:
                    raise ValueError(
                        f"line {lineno}: malformed labels: {raw!r}"
                    )
                value = (
                    pair.group("value")
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels.append((pair.group("key"), value))
                pos = pair.end()
        key = (match.group("name"), tuple(sorted(labels)))
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample: {raw!r}")
        samples[key] = float(match.group("value"))
    return samples
