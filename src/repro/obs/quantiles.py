"""Streaming quantile estimation (P², Jain & Chlamtac 1985).

The open-loop telemetry the ROADMAP asks for — sliding-window p50 /
p99 / p99.9 of task latency and queueing delay — must run *inside* the
simulator without retaining every observation.  The P² algorithm keeps
five markers per tracked quantile and updates them in O(1) per
observation with a parabolic (falling back to linear) height
adjustment; its estimates converge to the true quantile for iid
streams, which the property tests pin against :func:`numpy.percentile`.

:class:`WindowedQuantiles` composes per-window estimators over tumbling
sim-time windows — the streaming approximation of a sliding window that
the "When Should I Run My Application Benchmark?" methodology calls
for (within-run time series, not just end-of-run aggregates).
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["P2Quantile", "WindowedQuantiles", "quantile_key"]


def quantile_key(q: float) -> str:
    """Column name for quantile ``q``: 0.5 → ``p50``, 0.999 → ``p999``."""
    return "p" + format(q * 100.0, "g").replace(".", "")


class P2Quantile:
    """Streaming estimator of one quantile via the P² algorithm.

    Keeps five markers: minimum, the p/2, p, and (1+p)/2 quantile
    estimates, and the maximum.  Until five observations arrive the
    exact value is interpolated from the sorted sample (matching
    ``numpy.percentile``'s default linear definition).
    """

    __slots__ = ("p", "_q", "_n", "_np", "_dn", "count")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._q: list[float] = []  # marker heights
        self._n = [0, 1, 2, 3, 4]  # marker positions (0-based)
        self._np = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        x = float(x)
        self.count += 1
        q = self._q
        if self.count <= 5:
            q.append(x)
            if self.count == 5:
                q.sort()
            return
        n = self._n
        # Find the cell k with q[k] <= x < q[k+1]; clamp the extremes.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        np_ = self._np
        dn = self._dn
        for i in range(5):
            np_[i] += dn[i]
        # Adjust the three interior markers toward their desired
        # positions with the P² parabolic formula, falling back to
        # linear when the parabola would break monotonicity.
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or (
                d <= -1.0 and n[i - 1] - n[i] < -1
            ):
                d = 1 if d >= 0 else -1
                qi = q[i] + d / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + d)
                    * (q[i + 1] - q[i])
                    / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - d)
                    * (q[i] - q[i - 1])
                    / (n[i] - n[i - 1])
                )
                if q[i - 1] < qi < q[i + 1]:
                    q[i] = qi
                else:
                    q[i] = q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])
                n[i] += d

    def value(self) -> float:
        """Current quantile estimate (NaN before any observation)."""
        if self.count == 0:
            return math.nan
        if self.count <= 5:
            # Exact: numpy.percentile's linear interpolation.
            ordered = sorted(self._q)
            pos = self.p * (len(ordered) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(ordered) - 1)
            frac = pos - lo
            return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        return self._q[2]


class WindowedQuantiles:
    """Tumbling-window streaming quantiles over a sim-time stream.

    Observations ``(t, value)`` are bucketed into consecutive windows
    of ``window_s`` simulated seconds; each window keeps one
    :class:`P2Quantile` per tracked quantile, plus whole-stream
    estimators for the run-level summary.
    """

    def __init__(
        self,
        window_s: float,
        quantiles: Sequence[float] = (0.5, 0.99, 0.999),
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        self.quantiles = tuple(quantiles)
        self._windows: dict[int, list[P2Quantile]] = {}
        self._counts: dict[int, int] = {}
        self.overall = [P2Quantile(q) for q in self.quantiles]

    def add(self, t: float, value: float) -> None:
        """Record ``value`` observed at sim time ``t``."""
        index = int(t // self.window_s)
        estimators = self._windows.get(index)
        if estimators is None:
            estimators = [P2Quantile(q) for q in self.quantiles]
            self._windows[index] = estimators
            self._counts[index] = 0
        for est in estimators:
            est.add(value)
        for est in self.overall:
            est.add(value)
        self._counts[index] += 1

    @property
    def count(self) -> int:
        """Total observations across all windows."""
        return sum(self._counts.values())

    def rows(self) -> list[dict[str, float]]:
        """One row per non-empty window, in time order.

        Each row carries ``window_start``, ``count``, and one column per
        tracked quantile (``p50`` / ``p99`` / ``p999`` by default).
        """
        rows = []
        for index in sorted(self._windows):
            row: dict[str, float] = {
                "window_start": index * self.window_s,
                "count": float(self._counts[index]),
            }
            for q, est in zip(self.quantiles, self._windows[index]):
                row[quantile_key(q)] = est.value()
            rows.append(row)
        return rows

    def summary(self) -> dict[str, float]:
        """Whole-stream quantile estimates keyed by column name."""
        return {
            quantile_key(q): est.value()
            for q, est in zip(self.quantiles, self.overall)
        }
