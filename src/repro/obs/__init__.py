"""repro.obs — observability for simulations and campaigns.

Three layers, all inert unless explicitly attached:

* **In-sim telemetry** — pass an :class:`ObsRecorder` to
  ``SparkEngine.run_stream(..., recorder=...)`` (or
  ``run_scenario(..., recorder=...)``) and the run produces Prometheus
  -style metrics (:class:`MetricsRegistry`), sim-time scrapes of
  engine/fabric state as :class:`~repro.trace.TimeSeries`, streaming
  P² p50/p99/p99.9 latency windows (:class:`WindowedQuantiles`), and
  job/stage/task-group/flow spans (:class:`SpanTracer`) exportable to
  Chrome trace-event JSON for Perfetto.
* **Worker/runtime provenance** — every executed cell records wall
  time, peak RSS, and step count into its store manifest
  (:func:`cell_provenance`), and workers log structured
  ``key=value`` lines (:class:`StructuredLogger`).
* **Campaign status** — ``repro campaign status <shard-dir>``
  (:func:`campaign_status`) reads shard manifests + stores and reports
  per-shard progress, throughput, ETA, and stragglers; ``--prom``
  renders Prometheus text exposition.

The recorder only *reads* simulator state, so enabling observability
never changes results: golden traces and bench checksums are pinned
bit-identical with the recorder on and off, and the disabled path adds
a single pointer check per event.
"""

from repro.obs.logging import StructuredLogger, format_fields
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.provenance import PROVENANCE_KEY, cell_provenance
from repro.obs.quantiles import P2Quantile, WindowedQuantiles, quantile_key
from repro.obs.recorder import NullRecorder, ObsRecorder
from repro.obs.spans import SpanTracer
from repro.obs.status import (
    CampaignStatus,
    ShardStatus,
    campaign_status,
    render_prometheus,
    render_text,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
    "StructuredLogger",
    "format_fields",
    "PROVENANCE_KEY",
    "cell_provenance",
    "P2Quantile",
    "WindowedQuantiles",
    "quantile_key",
    "ObsRecorder",
    "NullRecorder",
    "SpanTracer",
    "CampaignStatus",
    "ShardStatus",
    "campaign_status",
    "render_text",
    "render_prometheus",
]
