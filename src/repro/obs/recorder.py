"""The simulation-time observability recorder.

An :class:`ObsRecorder` plugs into :meth:`SparkEngine.run_stream
<repro.simulator.engine.SparkEngine.run_stream>` (and
:func:`~repro.scenarios.orchestrate.run_scenario`) and turns a run
into:

* **metrics** — counters/gauges/histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry` (task completions,
  preemptions, deadline misses, shaper throttles/redraws, latency
  histograms);
* **scrapes** — engine/fabric state (runnable stages, active flows,
  free slots, token-budget totals, per-tenant queue depth, preemption
  count) sampled every ``scrape_interval_s`` *simulated* seconds into
  :class:`~repro.trace.TimeSeries`-compatible series;
* **sliding-window quantiles** — streaming P² p50/p99/p99.9 of task
  latency and queueing delay per tumbling ``window_s`` window
  (:class:`~repro.obs.quantiles.WindowedQuantiles`);
* **spans/events** — job, stage, task-group, and flow spans plus
  admission/launch/preempt/deadline-miss/shaper events in a
  :class:`~repro.obs.spans.SpanTracer`, exportable to Chrome
  trace-event JSON.

The contract that makes this safe to ship on by default in tooling:
the recorder only ever *reads* simulator state — it draws no random
numbers, mutates no budgets, and reorders no floating-point work — so
results with a recorder attached are bit-identical to results without
one (pinned by the golden-trace and bench-checksum determinism tests).
When no recorder is passed the engine's hot loop pays exactly one
``is not None`` check per event step.
"""

from __future__ import annotations

import math

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.quantiles import WindowedQuantiles
from repro.obs.spans import SpanTracer
from repro.trace import TimeSeries

__all__ = ["ObsRecorder", "NullRecorder"]


class ObsRecorder:
    """Records metrics, scrapes, quantiles, and spans for one run.

    Create one recorder per ``run_stream`` call; pass
    ``trace_flows=False`` to skip per-flow spans on very large streams
    (flows dominate span volume).  All hook methods are invoked by the
    engine/fabric — user code only reads the results afterwards:
    :attr:`registry`, :meth:`series`, :attr:`task_latency` /
    :attr:`queueing_delay` (``.rows()`` / ``.summary()``), and
    :attr:`tracer` (``.to_chrome_trace()`` / ``.to_jsonl()``).
    """

    #: A falsy ``enabled`` makes the engine treat the recorder as absent.
    enabled = True

    def __init__(
        self,
        scrape_interval_s: float = 5.0,
        window_s: float = 300.0,
        quantiles: tuple[float, ...] = (0.5, 0.99, 0.999),
        trace_flows: bool = True,
    ) -> None:
        if scrape_interval_s <= 0:
            raise ValueError("scrape_interval_s must be positive")
        self.scrape_interval_s = float(scrape_interval_s)
        self.trace_flows = bool(trace_flows)
        #: Sim time, maintained by the engine so hooks fired from deep
        #: inside :meth:`Fabric.advance` (shaper transitions) can stamp
        #: events at the end of the step being integrated.
        self.now = 0.0
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer()
        self.task_latency = WindowedQuantiles(window_s, quantiles)
        self.queueing_delay = WindowedQuantiles(window_s, quantiles)

        reg = self.registry
        self._c_admitted = reg.counter(
            "repro_sim_jobs_admitted_total", "Jobs admitted to the stream"
        )
        self._c_finished = reg.counter(
            "repro_sim_jobs_finished_total", "Jobs that completed"
        )
        self._c_groups = reg.counter(
            "repro_sim_task_groups_launched_total", "Task groups launched"
        )
        self._c_tasks = reg.counter(
            "repro_sim_tasks_completed_total", "Tasks completed"
        )
        self._c_preempt = reg.counter(
            "repro_sim_preemptions_total", "Task groups checkpoint-preempted"
        )
        self._c_miss = reg.counter(
            "repro_sim_deadline_misses_total", "Jobs that finished late"
        )
        self._c_flows_open = reg.counter(
            "repro_sim_flows_opened_total", "Fabric flows opened"
        )
        self._c_flows_closed = reg.counter(
            "repro_sim_flows_closed_total",
            "Fabric flows closed, by result (completed/cancelled)",
        )
        self._c_throttle = reg.counter(
            "repro_sim_shaper_throttles_total",
            "Shaper ceiling drops (token bucket depleted), by node",
        )
        self._c_redraw = reg.counter(
            "repro_sim_shaper_redraws_total",
            "Shaper ceiling raises/redraws, by node",
        )
        self._h_latency = reg.histogram(
            "repro_sim_task_latency_seconds",
            "Task-group launch to task completion, sim seconds",
        )
        self._h_queue = reg.histogram(
            "repro_sim_queueing_delay_seconds",
            "Job submission to first task launch, sim seconds",
        )
        self._g_makespan = reg.gauge(
            "repro_sim_makespan_seconds", "Stream makespan so far"
        )
        self._gauges = {
            name: reg.gauge("repro_sim_" + name, help)
            for name, help in (
                ("runnable_stages", "Stages with launchable tasks"),
                ("active_flows", "Flows currently on the fabric"),
                ("free_slots", "Unoccupied executor slots"),
                ("running_tasks", "Tasks occupying slots"),
                ("queued_tasks", "Admitted tasks not yet launched"),
                ("budget_total_gbit", "Sum of shaper token budgets"),
            )
        }

        # Scrape storage: plain appended lists, one column per signal.
        self._scrape_times: list[float] = []
        self._scrape_cols: dict[str, list[float]] = {
            "runnable_stages": [],
            "active_flows": [],
            "free_slots": [],
            "running_tasks": [],
            "queued_tasks": [],
            "budget_total_gbit": [],
            "preemptions_total": [],
        }
        self._tenant_names: list[str] = []
        self._tenant_depth: dict[str, list[float]] = {}
        self._job_tracks: dict[int, str] = {}
        self._last_scrape_t = -math.inf

        # Span bookkeeping.
        self._job_spans: dict[int, int] = {}
        self._stage_spans: dict[tuple[int, int], int] = {}
        self._group_spans: dict[int, int] = {}
        self._flow_spans: dict[int, int] = {}
        self._jobs_started: set[int] = set()

        self._last_limits: np.ndarray | None = None

    # -- wiring (called by the engine / fabric) ---------------------------
    def bind_stream(self, state) -> None:
        """Register a stream's job roster (called by the engine)."""
        seen: dict[str, int] = {}
        names: list[str] = []
        for job in state.jobs:
            name = job.name
            count = seen.get(name, 0)
            seen[name] = count + 1
            if count:
                name = f"{name}#{count}"
            names.append(name)
        self._tenant_names = names
        pad = [0.0] * len(self._scrape_times)
        for j, name in enumerate(names):
            self._tenant_depth.setdefault(name, list(pad))
            self._job_tracks[j] = "job:" + name

    def bind_fabric(self, fabric) -> None:
        """Snapshot the fleet's ceilings (called by ``set_recorder``)."""
        self._last_limits = np.asarray(fabric.fleet.limits(), dtype=float)

    # -- engine event hooks -----------------------------------------------
    def on_job_admitted(self, state, j: int) -> None:
        t = state.now
        track = self._job_tracks.get(j, "jobs")
        name = self._tenant_names[j] if j < len(self._tenant_names) else str(j)
        self._c_admitted.inc()
        self.tracer.event("admit", "sched", t, track, submit_s=state.submits[j])
        self._job_spans[j] = self.tracer.begin(
            name, "job", t, track, submit_s=state.submits[j]
        )

    def on_stage_start(self, state, j: int, index: int) -> None:
        stage = state.jobs[j].stages[index]
        self._stage_spans[(j, index)] = self.tracer.begin(
            stage.name,
            "stage",
            state.now,
            self._job_tracks.get(j, "jobs"),
            tasks=stage.num_tasks,
        )

    def on_group_launch(self, state, group) -> None:
        t = state.now
        j = group.job_index
        if j not in self._jobs_started:
            self._jobs_started.add(j)
            delay = t - state.submits[j]
            self.queueing_delay.add(t, delay)
            self._h_queue.observe(delay)
        track = self._job_tracks.get(j, "jobs")
        stage = state.jobs[j].stages[group.stage_index]
        self._c_groups.inc()
        self.tracer.event(
            "launch",
            "sched",
            t,
            track,
            stage=stage.name,
            node=group.node,
            n_tasks=group.n_tasks,
        )
        self._group_spans[id(group)] = self.tracer.begin(
            f"{stage.name}[{group.n_tasks}]",
            "taskgroup",
            t,
            track,
            node=group.node,
        )

    def on_group_preempt(self, state, group) -> None:
        t = state.now
        self._c_preempt.inc()
        track = self._job_tracks.get(group.job_index, "jobs")
        self.tracer.event(
            "preempt",
            "sched",
            t,
            track,
            node=group.node,
            tasks_lost=group.n_tasks - group.n_done,
        )
        span = self._group_spans.pop(id(group), None)
        if span is not None:
            self.tracer.end(span, t, preempted=True)
        for flow in group.flows:
            flow_span = self._flow_spans.pop(flow.flow_id, None)
            if flow_span is not None:
                self._c_flows_closed.inc(result="cancelled")
                self.tracer.end(flow_span, t, cancelled=True)

    def on_flow_open(self, state, flow, group) -> None:
        self._c_flows_open.inc()
        if self.trace_flows:
            self._flow_spans[flow.flow_id] = self.tracer.begin(
                f"flow {flow.src}->{flow.dst}",
                "flow",
                state.now,
                "fabric",
                volume_gbit=round(flow.remaining_gbit, 6),
            )

    def on_flow_close(self, state, flow) -> None:
        self._c_flows_closed.inc(result="completed")
        span = self._flow_spans.pop(flow.flow_id, None)
        if span is not None:
            self.tracer.end(span, state.now)

    def on_task_done(self, state, group) -> None:
        t = state.now
        latency = t - group.t_launch
        self._c_tasks.inc()
        self.task_latency.add(t, latency)
        self._h_latency.observe(latency)
        if group.n_done >= group.n_tasks:
            span = self._group_spans.pop(id(group), None)
            if span is not None:
                self.tracer.end(span, t)

    def on_stage_end(self, state, j: int, index: int) -> None:
        span = self._stage_spans.pop((j, index), None)
        if span is not None:
            self.tracer.end(span, state.now)

    def on_job_finish(self, state, j: int) -> None:
        t = state.now
        self._c_finished.inc()
        span = self._job_spans.pop(j, None)
        if span is not None:
            self.tracer.end(span, t)
        deadline = state.deadlines[j]
        if not math.isinf(deadline) and t > deadline + 1e-9:
            self._c_miss.inc()
            self.tracer.event(
                "deadline_miss",
                "sched",
                t,
                self._job_tracks.get(j, "jobs"),
                deadline_s=deadline,
                late_s=t - deadline,
            )

    # -- fleet hook ---------------------------------------------------------
    def on_shaper_transition(self, indices, limits) -> None:
        """Classify ceiling changes as throttles (drop) or redraws.

        Called from inside :meth:`LinkModelFleet.advance
        <repro.netmodel.fleet.LinkModelFleet.advance>` with the changed
        link indices and the fleet's fresh post-step ceilings; the sim
        timestamp is :attr:`now`, which the engine sets to the end of
        the step being integrated.
        """
        t = self.now
        last = self._last_limits
        for i in np.asarray(indices).tolist():
            new = float(limits[i])
            old = new if last is None else float(last[i])
            if new < old:
                self._c_throttle.inc(node=str(i))
                self.tracer.event(
                    "shaper_throttle", "fabric", t, "fabric",
                    node=i, limit_gbps=new,
                )
            else:
                self._c_redraw.inc(node=str(i))
                self.tracer.event(
                    "shaper_redraw", "fabric", t, "fabric",
                    node=i, limit_gbps=new,
                )
        self._last_limits = np.asarray(limits, dtype=float)

    # -- scraping -----------------------------------------------------------
    def maybe_scrape(self, state, force: bool = False) -> None:
        """Sample engine/fabric state every ``scrape_interval_s``."""
        now = state.now
        if (
            not force
            and now - self._last_scrape_t
            < self.scrape_interval_s - 1e-12
        ):
            return
        self._last_scrape_t = now
        finished = state.finished
        runnable = state._runnable
        admitted_n = state._next_arrival
        runnable_stages = 0
        queued = 0.0
        for j in state._admitted:
            if finished[j]:
                continue
            runnable_stages += len(runnable[j])
            queued += state._job_tasks[j] - state._launched_total[j]
        total_slots = state.engine.cluster.total_slots
        running = float(total_slots - state._free_total)
        active_flows = float(state.fabric._n)
        budgets = state.fabric.fleet.budgets()
        budget_total = float(np.sum(budgets)) if budgets is not None else 0.0
        cols = self._scrape_cols
        self._scrape_times.append(now)
        cols["runnable_stages"].append(float(runnable_stages))
        cols["active_flows"].append(active_flows)
        cols["free_slots"].append(float(state._free_total))
        cols["running_tasks"].append(running)
        cols["queued_tasks"].append(queued)
        cols["budget_total_gbit"].append(budget_total)
        cols["preemptions_total"].append(self._c_preempt.value())
        for j, name in enumerate(self._tenant_names):
            depth = 0.0
            if j < admitted_n and not finished[j]:
                depth = float(state._job_tasks[j] - state._launched_total[j])
            self._tenant_depth[name].append(depth)
        gauges = self._gauges
        gauges["runnable_stages"].set(float(runnable_stages))
        gauges["active_flows"].set(active_flows)
        gauges["free_slots"].set(float(state._free_total))
        gauges["running_tasks"].set(running)
        gauges["queued_tasks"].set(queued)
        gauges["budget_total_gbit"].set(budget_total)
        self._g_makespan.set(now)

    def finalize(self, state) -> None:
        """End-of-run flush: final scrape, close dangling spans."""
        self.maybe_scrape(state, force=True)
        self.tracer.close_open_spans(state.now)
        self._g_makespan.set(state.now)

    # -- results -------------------------------------------------------------
    def series(self) -> dict[str, TimeSeries]:
        """The scraped signals as named :class:`~repro.trace.TimeSeries`.

        Aggregate signals under their scrape-column names, plus one
        ``tenant_queue_depth/<job>`` series per tenant.
        """
        times = np.asarray(self._scrape_times, dtype=float)
        out = {
            name: TimeSeries(times, np.asarray(col, dtype=float), label=name)
            for name, col in self._scrape_cols.items()
        }
        for name, depths in self._tenant_depth.items():
            padded = depths + [0.0] * (len(times) - len(depths))
            out[f"tenant_queue_depth/{name}"] = TimeSeries(
                times,
                np.asarray(padded, dtype=float),
                label=f"queue-depth {name}",
            )
        return out

    def render_prometheus(self) -> str:
        """Final metric values in Prometheus text exposition format."""
        return self.registry.render_prometheus()


class NullRecorder:
    """An explicit 'observability off' recorder.

    ``enabled`` is False, so the engine discards it up front and the
    simulation runs the exact zero-overhead disabled path; useful when
    an API wants to thread a recorder unconditionally.
    """

    enabled = False

    def __getattr__(self, name: str):
        def _noop(*args, **kwargs) -> None:
            return None

        return _noop
