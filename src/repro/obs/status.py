"""Live campaign status from shard manifests and shard stores.

``repro campaign status <shard-dir>`` reads the coordinator-written
shard manifests (``shard-0.json`` ...) plus whatever each worker has
persisted so far into its shard store, and reports per-shard progress,
throughput, ETA, and stragglers — without touching the workers.  The
worker side needs no status protocol: every finished cell lands in the
shard store's ``manifest.json`` with an ``obs`` provenance record
(wall seconds, completion wall-clock, step count), so "status" is just
reading files the campaign already produces.

Shard *stores* are read with :func:`json.loads` directly rather than
through :class:`~repro.runtime.store.ArtifactStore` — constructing a
store creates its directory and an empty manifest as a side effect,
and a status probe must not scaffold stores for shards whose workers
have not started yet.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import PROVENANCE_KEY

__all__ = [
    "ShardStatus",
    "CampaignStatus",
    "campaign_status",
    "find_shard_manifests",
    "render_text",
    "render_prometheus",
]


@dataclass
class ShardStatus:
    """Progress of one shard: manifest contract vs store contents."""

    index: int
    manifest_path: Path
    store_root: Path
    n_cells: int
    n_done: int
    #: Sum of per-cell wall seconds from provenance records (0.0 when
    #: the worker predates provenance or has stored nothing yet).
    wall_s: float = 0.0
    #: Cells in the store that carry a provenance record.
    n_timed: int = 0
    #: Total simulator steps across timed cells.
    n_steps: int = 0
    #: Summed SLO violation counts from provenance (serving cells).
    n_slo_violations: int = 0
    #: Cells whose provenance carried an SLO verdict at all; 0 means
    #: the shard ran no serving cells and the SLO column is moot.
    n_slo_cells: int = 0
    #: Wall-clock (unix seconds) of the most recent stored cell.
    last_unix_s: float | None = None
    #: Cells revoked from this shard by the coordinator (stolen chains;
    #: excludes quarantined/blocked cells, which count as failed).
    n_stolen: int = 0
    #: Cells quarantined or blocked on this shard (``failures.json``).
    n_failed: int = 0
    #: ``"alive"`` / ``"dead"`` from the shard's lease file, or ``"-"``
    #: when no worker has ever leased the shard (serial/manual runs).
    worker_state: str = "-"
    #: Worker id from the lease file (``""`` without a lease).
    worker_id: str = ""
    #: True when the probe was given a remote root to compare against
    #: (``repro campaign status --remote``); the sync fields below are
    #: meaningful only then.
    has_remote: bool = False
    #: Local documents whose sha256 matches the remote store's entry.
    n_docs_synced: int = 0
    #: Local documents the remote lacks (or holds with other digests).
    n_docs_pending: int = 0
    #: Keys the last recorded push/pull/sync could not transfer, from
    #: the shard store's ``.sync.json`` sidecar.
    n_sync_failed: int = 0

    @property
    def n_pending(self) -> int:
        return max(0, self.n_cells - self.n_done - self.n_stolen - self.n_failed)

    @property
    def done_frac(self) -> float:
        return self.n_done / self.n_cells if self.n_cells else 1.0

    @property
    def throughput_cps(self) -> float:
        """Cells per wall second, from provenance (NaN if unknowable)."""
        if self.n_timed == 0 or self.wall_s <= 0:
            return math.nan
        return self.n_timed / self.wall_s

    @property
    def eta_s(self) -> float:
        """Estimated seconds of work left (NaN without a throughput)."""
        if self.n_pending == 0:
            return 0.0
        rate = self.throughput_cps
        if math.isnan(rate) or rate <= 0:
            return math.nan
        return self.n_pending / rate


@dataclass
class CampaignStatus:
    """Aggregate view over all discovered shards."""

    shard_dir: Path
    shards: list[ShardStatus] = field(default_factory=list)

    @property
    def n_cells(self) -> int:
        return sum(s.n_cells for s in self.shards)

    @property
    def n_done(self) -> int:
        return sum(s.n_done for s in self.shards)

    @property
    def n_pending(self) -> int:
        return self.n_cells - self.n_done

    @property
    def done_frac(self) -> float:
        return self.n_done / self.n_cells if self.n_cells else 1.0

    @property
    def wall_s(self) -> float:
        return sum(s.wall_s for s in self.shards)

    @property
    def n_slo_violations(self) -> int:
        return sum(s.n_slo_violations for s in self.shards)

    @property
    def eta_s(self) -> float:
        """Campaign ETA: shards run in parallel, so the slowest wins."""
        etas = [s.eta_s for s in self.shards if s.n_pending > 0]
        if not etas:
            return 0.0
        if any(math.isnan(eta) for eta in etas):
            return math.nan
        return max(etas)

    def stragglers(self) -> list[ShardStatus]:
        """Unfinished shards lagging well behind the median progress.

        A shard is a straggler when it still has pending cells and its
        completed fraction trails the median shard's by 25 points or
        more — the "one slow machine holds the campaign" signal the
        variability study repeatedly hits.
        """
        if len(self.shards) < 2:
            return []
        fracs = sorted(s.done_frac for s in self.shards)
        mid = len(fracs) // 2
        if len(fracs) % 2:
            median = fracs[mid]
        else:
            median = 0.5 * (fracs[mid - 1] + fracs[mid])
        return [
            s
            for s in self.shards
            if s.n_pending > 0 and s.done_frac <= median - 0.25
        ]


def _read_store_manifest(store_root: Path) -> dict:
    """A shard store's manifest, or ``{}`` before the worker starts."""
    path = store_root / "manifest.json"
    if not path.exists():
        return {}
    manifest = json.loads(path.read_text())
    if not isinstance(manifest, dict):
        raise ValueError(f"{path} does not hold a JSON object")
    return manifest


def _shard_status(
    index: int,
    manifest_path: Path,
    store_root: Path,
    remote_store_root: Path | None = None,
) -> ShardStatus:
    # Imported lazily: repro.runtime modules import repro.obs at load
    # time, so a module-level import here would be circular.
    from repro.runtime.coordinator import (
        lease_path_for,
        lease_expired,
        read_lease,
    )
    from repro.runtime.worker import (
        FAILURES_NAME,
        read_failures,
        read_revoked,
        revoked_path_for,
    )

    manifest = json.loads(manifest_path.read_text())
    keys = [entry["key"] for entry in manifest.get("cells", [])]
    stored = _read_store_manifest(store_root)
    failures = read_failures(store_root / FAILURES_NAME) or {}
    failed_keys = (
        set(failures.get("cells", {})) | set(failures.get("blocked", ()))
    ) & set(keys)
    revoked = read_revoked(revoked_path_for(manifest_path)) & set(keys)
    status = ShardStatus(
        index=index,
        manifest_path=manifest_path,
        store_root=store_root,
        n_cells=len(keys),
        n_done=sum(1 for key in keys if key in stored),
        n_stolen=sum(
            1
            for key in revoked - failed_keys
            if key not in stored
        ),
        n_failed=sum(1 for key in failed_keys if key not in stored),
    )
    lease = read_lease(lease_path_for(manifest_path))
    if lease is not None:
        status.worker_id = str(lease.get("worker_id", ""))
        status.worker_state = (
            "dead" if lease_expired(lease) else "alive"
        )
    for key in keys:
        entry = stored.get(key)
        if not isinstance(entry, dict):
            continue
        prov = entry.get(PROVENANCE_KEY)
        if not isinstance(prov, dict):
            continue
        wall = prov.get("wall_s")
        if isinstance(wall, (int, float)):
            status.wall_s += float(wall)
            status.n_timed += 1
        steps = prov.get("n_steps")
        if isinstance(steps, int):
            status.n_steps += steps
        slo = prov.get("slo_violations")
        if isinstance(slo, int):
            status.n_slo_violations += slo
            status.n_slo_cells += 1
        unix = prov.get("unix_s")
        if isinstance(unix, (int, float)) and (
            status.last_unix_s is None or unix > status.last_unix_s
        ):
            status.last_unix_s = float(unix)
    if remote_store_root is not None:
        _sync_lag(status, stored, remote_store_root)
    return status


def _sync_lag(
    status: ShardStatus, stored: dict, remote_store_root: Path
) -> None:
    """Fill a shard's sync-lag fields by comparing manifests digest-wise.

    The remote store's manifest is read raw (like the local one, never
    scaffolding) and every local document is classified: synced when
    the remote entry records the same sha256, pending otherwise.
    Failed keys come from the ``.sync.json`` sidecar the last
    push/pull/sync wrote — no sidecar, no failures to report.
    """
    # Lazy import for the same circularity reason as _shard_status.
    from repro.runtime.remote import read_sync_state
    from repro.runtime.store import DIGESTS_KEY

    status.has_remote = True
    remote_path = remote_store_root / "manifest.json"
    remote_manifest: dict = {}
    if remote_path.exists():
        try:
            parsed = json.loads(remote_path.read_text())
        except ValueError:
            parsed = None
        if isinstance(parsed, dict):
            remote_manifest = parsed
    for key, entry in stored.items():
        if not isinstance(entry, dict):
            continue
        digests = entry.get(DIGESTS_KEY)
        digests = digests if isinstance(digests, dict) else {}
        names = entry.get("documents") or sorted(digests)
        remote_entry = remote_manifest.get(key)
        remote_digests = (
            remote_entry.get(DIGESTS_KEY)
            if isinstance(remote_entry, dict)
            else None
        )
        remote_digests = (
            remote_digests if isinstance(remote_digests, dict) else {}
        )
        for name in names:
            recorded = digests.get(name)
            if recorded is not None and remote_digests.get(name) == recorded:
                status.n_docs_synced += 1
            else:
                status.n_docs_pending += 1
    state = read_sync_state(status.store_root)
    if state is not None:
        failed_keys: set[str] = set()
        for direction in ("push", "pull", "sync"):
            outcome = state.get(direction)
            if isinstance(outcome, dict):
                failed = outcome.get("failed")
                if isinstance(failed, dict):
                    failed_keys |= set(failed)
        status.n_sync_failed = len(failed_keys)


def find_shard_manifests(
    shard_dir: str | Path, prefix: str = "shard"
) -> list[tuple[int, Path]]:
    """Discover ``{prefix}-<i>.json`` shard manifests, in shard order.

    The one place the on-disk shard layout is interpreted: both
    ``repro campaign status`` and the fault-tolerant supervisor
    (:func:`repro.runtime.coordinator.run_campaign`) discover shards
    through this, so they can never disagree about what a campaign
    directory contains.  Sidecar files (``*.lease.json``,
    ``*.revoked.json``, steal manifests) never match.
    """
    shard_dir = Path(shard_dir)
    pattern = re.compile(re.escape(prefix) + r"-(\d+)\.json$")
    found: list[tuple[int, Path]] = []
    for path in sorted(shard_dir.glob(f"{prefix}-*.json")):
        match = pattern.fullmatch(path.name)
        if match:
            found.append((int(match.group(1)), path))
    if not found:
        raise ValueError(
            f"no shard manifests matching {prefix}-<N>.json in {shard_dir}"
        )
    found.sort()
    return found


def campaign_status(
    shard_dir: str | Path,
    prefix: str = "shard",
    stores: Sequence[str | Path] | None = None,
    remote: str | Path | None = None,
) -> CampaignStatus:
    """Probe a sharded campaign's progress from its on-disk state.

    Discovers ``{prefix}-<i>.json`` manifests under ``shard_dir`` and
    pairs shard *i* with the store ``{prefix}-<i>-store`` in the same
    directory (the layout ``repro scenario --shards`` prints worker
    commands for), unless explicit ``stores`` override the pairing
    positionally.  ``remote`` names the remote store root the campaign
    syncs through (``repro campaign run --remote``); when given, each
    shard additionally reports its sync lag against
    ``<remote>/{prefix}-<i>-store``.
    """
    shard_dir = Path(shard_dir)
    found = find_shard_manifests(shard_dir, prefix)
    if stores is not None and len(stores) != len(found):
        raise ValueError(
            f"{len(found)} shard manifest(s) but {len(stores)} --stores "
            "path(s); pass one store per shard, in shard order"
        )
    status = CampaignStatus(shard_dir=shard_dir)
    for position, (index, manifest_path) in enumerate(found):
        if stores is not None:
            store_root = Path(stores[position])
        else:
            store_root = shard_dir / f"{prefix}-{index}-store"
        remote_store_root = (
            Path(remote) / f"{prefix}-{index}-store"
            if remote is not None
            else None
        )
        status.shards.append(
            _shard_status(index, manifest_path, store_root, remote_store_root)
        )
    return status


def _fmt_eta(eta_s: float) -> str:
    if math.isnan(eta_s):
        return "?"
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.1f}s"


def render_text(status: CampaignStatus) -> str:
    """Human-readable per-shard progress table plus campaign totals."""
    lines = [f"campaign {status.shard_dir} — {len(status.shards)} shard(s)"]
    straggling = {s.index for s in status.stragglers()}
    for s in status.shards:
        rate = s.throughput_cps
        rate_text = "?" if math.isnan(rate) else f"{rate:.3g} cell/s"
        extras = ""
        if s.n_stolen:
            extras += f", stolen {s.n_stolen}"
        if s.n_failed:
            extras += f", failed {s.n_failed}"
        if s.n_slo_cells:
            extras += f", slo-violations {s.n_slo_violations}"
        if s.worker_state != "-":
            extras += f", worker {s.worker_state}"
            if s.worker_id:
                extras += f" ({s.worker_id})"
        if s.has_remote:
            extras += (
                f", synced {s.n_docs_synced}/"
                f"{s.n_docs_synced + s.n_docs_pending}"
            )
            if s.n_sync_failed:
                extras += f", sync-failed {s.n_sync_failed}"
        flag = "  STRAGGLER" if s.index in straggling else ""
        lines.append(
            f"  shard {s.index}: {s.n_done}/{s.n_cells} cells "
            f"({100.0 * s.done_frac:.0f}%), {s.wall_s:.1f}s wall, "
            f"{rate_text}, eta {_fmt_eta(s.eta_s)}{extras}{flag}"
        )
    total = (
        f"  total: {status.n_done}/{status.n_cells} cells "
        f"({100.0 * status.done_frac:.0f}%), eta {_fmt_eta(status.eta_s)}"
    )
    if any(s.n_slo_cells for s in status.shards):
        total += f", slo-violations {status.n_slo_violations}"
    lines.append(total)
    return "\n".join(lines)


def render_prometheus(status: CampaignStatus) -> str:
    """The same status as Prometheus text exposition (``--prom``)."""
    reg = MetricsRegistry()
    cells = reg.gauge(
        "repro_campaign_shard_cells", "Cells assigned to the shard"
    )
    done = reg.gauge(
        "repro_campaign_shard_cells_done", "Cells the shard has stored"
    )
    wall = reg.gauge(
        "repro_campaign_shard_wall_seconds",
        "Summed per-cell wall seconds from provenance",
    )
    steps = reg.gauge(
        "repro_campaign_shard_sim_steps", "Summed simulator steps"
    )
    eta = reg.gauge(
        "repro_campaign_shard_eta_seconds",
        "Estimated seconds of work remaining (NaN if unknown)",
    )
    stolen = reg.gauge(
        "repro_campaign_shard_cells_stolen",
        "Cells revoked from the shard by work stealing",
    )
    failed = reg.gauge(
        "repro_campaign_shard_cells_failed",
        "Cells quarantined or blocked on the shard",
    )
    slo_violations = reg.gauge(
        "repro_campaign_shard_slo_violations",
        "Summed SLO violation counts from serving-cell provenance",
    )
    alive = reg.gauge(
        "repro_campaign_shard_worker_alive",
        "1 = lease renewed within TTL, 0 = lease expired (dead worker), "
        "NaN = never leased",
    )
    any_remote = any(s.has_remote for s in status.shards)
    if any_remote:
        synced = reg.gauge(
            "repro_campaign_shard_docs_synced",
            "Local documents whose digests match the remote shard store",
        )
        pending = reg.gauge(
            "repro_campaign_shard_docs_pending",
            "Local documents absent from or stale on the remote shard store",
        )
        sync_failed = reg.gauge(
            "repro_campaign_shard_sync_failed",
            "Keys whose last transport sync attempt failed (.sync.json)",
        )
    for s in status.shards:
        label = str(s.index)
        cells.set(float(s.n_cells), shard=label)
        done.set(float(s.n_done), shard=label)
        wall.set(s.wall_s, shard=label)
        steps.set(float(s.n_steps), shard=label)
        eta.set(s.eta_s, shard=label)
        stolen.set(float(s.n_stolen), shard=label)
        failed.set(float(s.n_failed), shard=label)
        slo_violations.set(float(s.n_slo_violations), shard=label)
        alive.set(
            math.nan
            if s.worker_state == "-"
            else float(s.worker_state == "alive"),
            shard=label,
        )
        if s.has_remote:
            synced.set(float(s.n_docs_synced), shard=label)
            pending.set(float(s.n_docs_pending), shard=label)
            sync_failed.set(float(s.n_sync_failed), shard=label)
    reg.gauge("repro_campaign_shards", "Discovered shards").set(
        float(len(status.shards))
    )
    reg.gauge(
        "repro_campaign_done_ratio", "Campaign-wide completed fraction"
    ).set(status.done_frac)
    reg.gauge(
        "repro_campaign_stragglers", "Shards flagged as stragglers"
    ).set(float(len(status.stragglers())))
    return reg.render_prometheus()
