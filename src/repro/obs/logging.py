"""Structured logging for campaign workers.

Replaces the free-form ``say()`` lines the shard workers used to print
with single-line ``key=value`` records carrying a UTC timestamp and an
event name, so multi-machine campaign logs can be grepped, joined on
shard id / cell key, and fed to a collector without a parser per
message shape.
"""

from __future__ import annotations

import datetime
from typing import Callable, Optional

__all__ = ["StructuredLogger", "format_fields"]


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format(value, ".6g")
    text = str(value)
    if text == "" or any(c.isspace() or c == '"' for c in text):
        return '"' + text.replace('"', '\\"') + '"'
    return text


def format_fields(**fields: object) -> str:
    """Render ``key=value`` pairs in call order, quoting as needed."""
    return " ".join(f"{k}={_format_value(v)}" for k, v in fields.items())


class StructuredLogger:
    """Emits timestamped ``event=... key=value`` lines through ``echo``.

    ``echo=None`` silences the logger entirely (the ``--quiet`` path);
    any other callable — ``print``, a file writer, a test spy —
    receives one fully formatted line per event.
    """

    def __init__(
        self,
        echo: Optional[Callable[[str], None]] = print,
        component: str = "",
        clock: Callable[[], datetime.datetime] | None = None,
    ) -> None:
        self._echo = echo
        self.component = component
        self._clock = clock or (
            lambda: datetime.datetime.now(datetime.timezone.utc)
        )

    @property
    def enabled(self) -> bool:
        """False when the logger swallows everything (``echo=None``)."""
        return self._echo is not None

    def log(self, event: str, **fields: object) -> None:
        """Emit one structured record."""
        if self._echo is None:
            return
        stamp = self._clock().strftime("%Y-%m-%dT%H:%M:%S.%f")[:-3] + "Z"
        parts = [f"ts={stamp}"]
        if self.component:
            parts.append(f"component={self.component}")
        parts.append(f"event={event}")
        if fields:
            parts.append(format_fields(**fields))
        self._echo(" ".join(parts))

    def child(self, component: str) -> "StructuredLogger":
        """A logger tagged with ``component``, sharing this sink."""
        return StructuredLogger(
            echo=self._echo, component=component, clock=self._clock
        )
