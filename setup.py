"""Build entry point and dependency metadata.

Kept as a plain ``setup.py`` so ``pip install -e .`` works in offline
environments that lack the ``wheel`` package (pip falls back to
``setup.py develop``).

The ``jit`` extra pulls in numba for the compiled hot kernels in
:mod:`repro.simulator.kernels`.  It is strictly optional: every kernel
has a pure-numpy fallback that is bit-identical (the golden trace and
``repro bench --check`` gate both paths), so the base install never
needs a compiler toolchain.  ``REPRO_NO_JIT=1`` forces the fallback
even when numba is importable.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.9.0",
    description=(
        "Simulation harness for studying big-data performance "
        "reproducibility under cloud network variability"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.26",
        "scipy>=1.11",
    ],
    extras_require={
        "jit": ["numba>=0.59"],
    },
)
