"""Legacy build entry point.

The project metadata lives in pyproject.toml; this stub exists only so
``pip install -e .`` works in offline environments that lack the
``wheel`` package (pip falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
