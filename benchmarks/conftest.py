"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or tables and
prints the rows/series the paper reports.  The reproductions are full
experiments (some run minutes of simulated weeks), so each benchmark
executes exactly once via ``benchmark.pedantic`` — the interesting
number is the figure's content, with wall-clock time as a byproduct.
"""

from __future__ import annotations


def print_rows(title: str, rows) -> None:
    """Render a list of row dicts the way the harness reports figures."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    for row in rows:
        parts = []
        for key, value in row.items():
            parts.append(f"{key}={value}")
        print("  " + "  ".join(parts))


def run_once(benchmark, fn, *args, **kwargs):
    """Execute a reproduction exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
