"""Figure 5: Google Cloud bandwidth by access pattern (week per pattern).

Paper values: 13-15.8 Gbps overall on the 8-core pair; full-speed
stable and fastest, 5-30 long-tailed; consecutive-sample changes up to
~114 % for 5-30.
"""

from conftest import print_rows, run_once

from repro.paper import fig05


def test_fig05_gce_bandwidth(benchmark):
    result = run_once(benchmark, fig05.reproduce)
    print_rows("Figure 5: GCE per-pattern boxes", result.rows())

    boxes = result.boxes
    assert boxes["full-speed"].p50 > boxes["5-30"].p50
    assert boxes["full-speed"].whisker_span < boxes["5-30"].whisker_span
    assert 13.0 < boxes["full-speed"].p50 < 16.0
