"""Figure 16: HiBench runtime and variability vs token budget.

Ten runs per (application, budget) as in the paper.

Paper values: the network-intensive applications (TS, WC) see a
25-50 % budget impact; compute-bound ones (KM, BS) barely move.
"""

from conftest import print_rows, run_once

from repro.paper import fig16


def test_fig16_hibench_budgets(benchmark):
    result = run_once(benchmark, fig16.reproduce, runs_per_config=10)
    print_rows("Figure 16a: average runtimes", result.average_rows())
    print_rows(
        "Figure 16b: variability boxes",
        [
            {"app": app, **{k: round(v, 1) for k, v in box.as_dict().items()}}
            for app, box in result.variability_boxes().items()
        ],
    )

    assert result.network_apps_most_affected()
    assert result.budget_impact("TS") > 0.25
    assert result.budget_impact("KM") < 0.10
