"""Figure 9: TCP retransmission analysis across the three clouds.

Paper values: negligible retransmissions on EC2 and HPCCloud; ~2 % of
segments on GCE — hundreds of thousands per 10-second window.
"""

from conftest import print_rows, run_once

from repro.paper import fig09


def test_fig09_retransmissions(benchmark):
    result = run_once(benchmark, fig09.reproduce)
    print_rows("Figure 9: per-cloud retransmission boxes", result.rows())
    print_rows("Figure 9 (right): GCE violin", result.violin_rows())

    boxes = result.cloud_boxes
    assert boxes["amazon"].p99 < 1_000
    assert boxes["hpccloud"].p99 < 1_000
    assert 50_000 < boxes["google"].p50 < 500_000
