"""Figure 2: bandwidth distributions for eight real-world clouds.

Paper shape: eight boxes spanning roughly 0-1000 Mb/s, clouds F and G
the widest relative spread.
"""

from conftest import print_rows, run_once

from repro.paper import fig02


def test_fig02_ballani_distributions(benchmark):
    result = run_once(benchmark, fig02.reproduce)
    print_rows("Figure 2: cloud bandwidth boxes (Mb/s)", result.rows())
    assert len(result.boxes) == 8
