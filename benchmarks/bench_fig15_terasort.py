"""Figure 15: Terasort traffic vs initial token budget.

Five consecutive runs per budget in {5000, 1000, 100, 10} Gbit.

Paper shape: large budgets keep the 10 Gbps capacity; small budgets
pin most of the shuffle at 1 Gbps and make runtimes vary run to run.
"""

from conftest import print_rows, run_once

from repro.paper import fig15


def test_fig15_terasort_budgets(benchmark):
    result = run_once(benchmark, fig15.reproduce)
    print_rows("Figure 15: Terasort per-budget panels", result.rows())

    assert result.small_budgets_more_variable()
    large = result.panels[5_000.0].summary()
    small = result.panels[10.0].summary()
    assert small["mean_runtime_s"] > 1.25 * large["mean_runtime_s"]
    assert small["transmit_at_low_rate_pct"] > large["transmit_at_low_rate_pct"]
