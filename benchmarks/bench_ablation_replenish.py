"""Ablation: does token replenishment explain EC2's pattern inversion?

Figure 6 shows intermittent patterns *beating* full-speed on EC2.  The
paper attributes it to the bucket refilling during rests.  This
ablation removes the replenish rate (and the matching capped rate is
kept) and re-measures: without replenishment the advantage of resting
must disappear — all patterns end up draining the same fixed budget.
"""

import numpy as np
from conftest import print_rows, run_once

from repro.emulator import FIVE_THIRTY, FULL_SPEED, TEN_THIRTY
from repro.measurement import BandwidthProbe
from repro.netmodel import TokenBucketModel, TokenBucketParams

DURATION_S = 259_200.0  # three days: steady state for all patterns

WITH_REPLENISH = TokenBucketParams(
    peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95, capacity_gbit=5_400.0
)
WITHOUT_REPLENISH = TokenBucketParams(
    peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.0, capacity_gbit=5_400.0
)


def measure(params: TokenBucketParams) -> dict[str, float]:
    means = {}
    for pattern in (FULL_SPEED, TEN_THIRTY, FIVE_THIRTY):
        probe = BandwidthProbe(TokenBucketModel(params), pattern)
        trace = probe.run(DURATION_S, rng=np.random.default_rng(0))
        means[pattern.name] = float(trace.values.mean())
    return means


def run_ablation() -> dict[str, dict[str, float]]:
    return {
        "with-replenish": measure(WITH_REPLENISH),
        "without-replenish": measure(WITHOUT_REPLENISH),
    }


def test_ablation_replenishment(benchmark):
    result = run_once(benchmark, run_ablation)
    print_rows(
        "Ablation: replenishment",
        [
            {"variant": variant, **{k: round(v, 2) for k, v in means.items()}}
            for variant, means in result.items()
        ],
    )

    with_r = result["with-replenish"]
    without_r = result["without-replenish"]
    # With replenishment: resting pays off (the Figure 6 inversion).
    assert with_r["5-30"] > 5 * with_r["full-speed"]
    # Without: every pattern converges to the capped rate; the resting
    # advantage collapses to (nearly) nothing.
    assert without_r["5-30"] < 1.5 * without_r["full-speed"]
