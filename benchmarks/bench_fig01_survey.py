"""Figure 1 + Table 2: the literature survey.

Regenerates the reporting-practice percentages, the repetition
histogram, the Table 2 funnel, and the reviewer-agreement kappas.

Paper values to compare against: >60 % under-specified; 37 % of
center-reporting articles report variability; 76 % of well-specified
articles use <= 15 repetitions; kappas 0.95 / 0.81 / 0.85; funnel
1867 -> 138 -> 44 articles cited 11,203 times.
"""

from conftest import print_rows, run_once

from repro.paper import fig01


def test_fig01_survey(benchmark):
    result = run_once(benchmark, fig01.reproduce)

    print_rows("Figure 1a: experiment reporting", result.rows())
    print_rows("Figure 1b: repetitions histogram", result.histogram_rows())
    print_rows("Table 2: survey funnel", [result.funnel.as_row()])
    print_rows(
        "Reviewer agreement (Cohen's Kappa)",
        [{k: round(v, 2) for k, v in result.summary.kappa.items()}],
    )

    assert result.funnel.cloud_experiments == 44
    assert result.summary.pct_underspecified > 60.0
