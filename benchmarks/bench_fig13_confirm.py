"""Figure 13: CONFIRM analysis for K-Means (GCE) and Q65 (HPCCloud).

Paper values: 95 % CIs tighten with repetitions (stochastic
variability); reaching 1 %-of-median bounds takes 70+ repetitions.
"""

from conftest import print_rows, run_once

from repro.paper import fig13


def test_fig13_confirm_analysis(benchmark):
    result = run_once(benchmark, fig13.reproduce, repetitions=100)
    print_rows("Figure 13: CONFIRM panels", result.rows())

    for panel in (result.kmeans_gce, result.q65_hpccloud):
        needed = panel.repetitions_needed
        # 70+ in the paper; anything under ~25 would contradict it.
        assert needed is None or needed > 25
        assert not panel.curve.widening_detected()
