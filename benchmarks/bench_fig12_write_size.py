"""Figure 12: latency and bandwidth vs application write() size.

Paper values: EC2 packets top out at the 9 KB MTU (flat, low latency);
GCE TSO packets reach 64 KB — RTTs climb toward 10 ms and
retransmissions from near-zero (9 KB writes) to ~2 % (128 KB default).
"""

from conftest import print_rows, run_once

from repro.paper import fig12


def test_fig12_write_size_effects(benchmark):
    result = run_once(benchmark, fig12.reproduce)
    print_rows("Figure 12: write-size sweep", result.rows())

    gce = {e.write_size_bytes: e for e in result.gce}
    ec2 = {e.write_size_bytes: e for e in result.ec2}
    assert gce[9_000].retransmission_rate < 1e-3
    assert gce[131_072].retransmission_rate > 0.005
    assert gce[131_072].mean_rtt_ms > 2.5 * gce[9_000].mean_rtt_ms
    assert abs(ec2[131_072].mean_rtt_ms - ec2[9_000].mean_rtt_ms) < 0.1
