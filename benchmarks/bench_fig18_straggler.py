"""Figure 18: token-bucket-induced straggler at budget 2500 Gbit.

Paper shape: one node (and only one) depletes its budget during a
TPC-DS stream, drops to the 1 Gbps QoS, and oscillates between high
and low rates.
"""

from conftest import print_rows, run_once

from repro.paper import fig18


def test_fig18_straggler(benchmark):
    result = run_once(benchmark, fig18.reproduce)
    print_rows("Figure 18: per-node summary", result.rows())

    assert result.straggler_nodes == [result.skewed_node]
    assert result.straggler_oscillates()
