"""Figure 14: validation of the token-bucket emulation.

Paper conclusion: the emulated curves match the AWS behaviour — each
burst starts at 10 Gbps and drops to 1 Gbps once the replenished
budget is spent.
"""

from conftest import print_rows, run_once

from repro.paper import fig14


def test_fig14_emulator_validation(benchmark):
    result = run_once(benchmark, fig14.reproduce)
    print_rows("Figure 14: emulation vs reference", result.rows())

    assert result.emulation_is_high_quality(nrmse_bound=0.10)
