"""Figure 8: GCE RTTs for a 10-second stream on a 4-core instance.

Paper values: millisecond-scale RTTs capped around 10 ms, no
throttling collapse.
"""

from conftest import print_rows, run_once

from repro.paper import fig08


def test_fig08_gce_latency(benchmark):
    result = run_once(benchmark, fig08.reproduce)
    print_rows("Figure 8: GCE latency", result.rows())

    row = result.rows()[0]
    assert 1.0 < row["rtt_median_ms"] < 4.0
    assert row["rtt_max_ms"] <= 10.0
