"""Simulator hot-path benchmarks: the perf trajectory anchor.

Times the 16-node/200-job multi-tenant stream and the 10k-flow
water-filling microbench defined in :mod:`repro.bench.hotpath`, and —
when run as a script — records the numbers in ``BENCH_engine.json``
next to the pinned pre-refactor baseline:

    python benchmarks/bench_engine_hotpath.py            # update "current"
    python benchmarks/bench_engine_hotpath.py --save-baseline
    python benchmarks/bench_engine_hotpath.py --smoke    # CI-sized, no ledger
    python benchmarks/bench_engine_hotpath.py --check    # regression gate

Under pytest the benchmarks run once each (like every bench_* module)
and print their rows without touching the ledger.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.hotpath import (
    DEFAULT_RESULTS_PATH,
    bench_shaper_fleet_vs_scalar,
    bench_stream,
    bench_waterfill,
    run_and_record,
    run_check,
)
from repro.cli import add_bench_check_arguments


def test_stream_hotpath(benchmark):
    from conftest import print_rows, run_once

    result = run_once(benchmark, bench_stream)
    print_rows("stream 16x200 hot path", [result])
    assert result["checksum"] > 0


def test_waterfill_microbench(benchmark):
    from conftest import print_rows, run_once

    result = run_once(benchmark, bench_waterfill)
    print_rows("water-filling 10k flows", [result])
    assert result["checksum"] > 0


def test_shaper_fleet_vs_scalar(benchmark):
    from conftest import print_rows, run_once

    result = run_once(
        benchmark, lambda: bench_shaper_fleet_vs_scalar(duration_s=300.0)
    )
    print_rows("64-node shaper fleet vs scalar adapter", [result])
    assert result["checksum"] > 0
    assert result["fleet_speedup"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--save-baseline",
        action="store_true",
        help="pin this run as the reference implementation",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run; prints results without writing the ledger",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_RESULTS_PATH,
        help=f"results ledger path (default: {DEFAULT_RESULTS_PATH})",
    )
    parser.add_argument(
        "--label", default="", help="free-form label stored with the run"
    )
    add_bench_check_arguments(parser)
    args = parser.parse_args(argv)
    if args.check:
        return run_check(
            smoke=args.smoke,
            path=args.json,
            wall_tolerance=args.wall_tolerance,
        )
    return run_and_record(
        smoke=args.smoke,
        save_baseline=args.save_baseline,
        path=args.json,
        label=args.label,
        save_smoke=args.save_smoke,
    )


if __name__ == "__main__":
    raise SystemExit(main())
