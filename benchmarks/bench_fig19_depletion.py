"""Figure 19: CI analysis under budget depletion.

The budget ladder {5000, 2500, 1000, 100, 10}, ten repetitions each
for the headline queries and a catalog-wide scan.

Paper values: Q82's CI tightens (budget-agnostic); Q65's estimates
drift and its CI widens (non-iid); ~80 % of queries end with median
estimates more than 10 % wrong about depleted-budget performance.
"""

from conftest import print_rows, run_once

from repro.paper import fig19


def test_fig19_budget_depletion(benchmark):
    result = run_once(benchmark, fig19.reproduce)
    print_rows("Figure 19: headline panels", result.rows())
    print_rows(
        "Figure 19 (bottom): poor-median share",
        [{"poor_median_fraction": round(result.poor_median_fraction, 2)}],
    )

    assert not result.q82.median_estimate_poor
    assert result.q65.median_estimate_poor
    assert result.q65.ci_widened
    assert result.poor_median_fraction >= 0.6
