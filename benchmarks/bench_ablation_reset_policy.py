"""Ablation: what does each reset policy buy (F5.4)?

The same TPC-DS Q65 experiment under the three infrastructure-reset
policies the methodology supports: fresh VMs per repetition, a rest
long enough to refill the budget, and nothing.  Reported: median
drift and the analysis pipeline's iid verdict per policy.
"""

import numpy as np
from conftest import print_rows, run_once

from repro.core import (
    ExperimentDesign,
    ExperimentRunner,
    ResetPolicy,
    analyze_sample,
)
from repro.core.runner import SimulatorExperiment
from repro.paper._common import token_bucket_cluster
from repro.workloads import tpcds_job

REPETITIONS = 24
BUDGET = 700.0
REST_S = 2_400.0  # refills ~2280 Gbit: plenty for Q65's per-run drain


def run_policy(policy: ResetPolicy, rest_s: float = 0.0) -> dict:
    experiment = SimulatorExperiment(
        token_bucket_cluster(BUDGET),
        tpcds_job(65, n_nodes=12, slots=4),
        rng=np.random.default_rng(11),
        budget_gbit=BUDGET,
        run_noise_cov=0.02,
    )
    design = ExperimentDesign(
        repetitions=REPETITIONS, reset_policy=policy, rest_s=rest_s
    )
    samples = ExperimentRunner(design).collect(experiment)
    report = analyze_sample(samples)
    first = float(np.median(samples[: REPETITIONS // 3]))
    last = float(np.median(samples[-REPETITIONS // 3 :]))
    return {
        "policy": policy.value,
        "median_s": round(report.dispersion.median, 1),
        "drift_pct": round(100 * (last / first - 1.0), 1),
        "iid_violated": report.iid_violated,
    }


def run_ablation() -> list[dict]:
    return [
        run_policy(ResetPolicy.FRESH),
        run_policy(ResetPolicy.REST, rest_s=REST_S),
        run_policy(ResetPolicy.NONE),
    ]


def test_ablation_reset_policy(benchmark):
    rows = run_once(benchmark, run_ablation)
    print_rows("Ablation: reset policies", rows)

    by_policy = {row["policy"]: row for row in rows}
    # Fresh VMs: no drift, no violation (the gold standard).
    assert abs(by_policy["fresh"]["drift_pct"]) < 10.0
    assert not by_policy["fresh"]["iid_violated"]
    # Rests: the cheap substitute also holds up.
    assert abs(by_policy["rest"]["drift_pct"]) < 10.0
    # No reset: large drift and a flagged iid violation.
    assert by_policy["none"]["drift_pct"] > 25.0
    assert by_policy["none"]["iid_violated"]
