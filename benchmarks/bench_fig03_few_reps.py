"""Figure 3: are 3- and 10-run experiments credible?

Fifty-run gold standards per Ballani cloud; 3- and 10-run medians (and
90th percentiles for TPC-DS Q68) judged against the gold 95 % CIs.

Paper values: 3-run K-Means medians miss for 6/8 clouds, 10-run for
3/8; tail estimates are harder still.
"""

from conftest import print_rows, run_once

from repro.paper import fig03


def test_fig03_few_repetitions(benchmark):
    result = run_once(benchmark, fig03.reproduce, n_gold=50)
    print_rows("Figure 3: per-cloud estimates", result.rows())
    print_rows("Miss counts", [result.miss_counts()])

    counts = result.miss_counts()
    # The qualitative claim: low-repetition estimates are unreliable,
    # and 3-run estimates are worse than 10-run estimates.
    assert counts["kmeans_3run_misses"] >= 2
    assert counts["kmeans_3run_misses"] >= counts["kmeans_10run_misses"]
    assert counts["q68_3run_misses"] >= counts["q68_10run_misses"]
