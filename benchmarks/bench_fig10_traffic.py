"""Figure 10: total traffic per access pattern (EC2 vs GCE, one week).

Paper shape: GCE full-speed moves vastly more data than the
intermittent patterns; on EC2 all three totals are roughly equal (the
token-bucket fingerprint).
"""

from conftest import print_rows, run_once

from repro.paper import fig10


def test_fig10_total_traffic(benchmark):
    result = run_once(benchmark, fig10.reproduce)
    print_rows("Figure 10: total traffic (TB)", result.rows())

    assert result.ec2_totals_roughly_equal()
    assert result.gce_full_speed_dominates()
