"""Ablation: does the emulation's sampling rate drive the volatility?

Section 2.1's methodology note: "sampling at these two different rates
shows that benchmark volatility is not dependent on the sampling rate,
but rather on the distribution itself."  This ablation runs the
Figure 3 emulation for one wide cloud (F) and one tight cloud (B) at
both 5 s and 50 s resampling and compares run-to-run CoV: the
between-cloud gap must dwarf the between-rate gap.
"""

import numpy as np
from conftest import print_rows, run_once

from repro.cloud.ballani import BALLANI_CLOUDS
from repro.core.runner import SimulatorExperiment
from repro.paper._common import ballani_cluster
from repro.workloads.hibench import build_kmeans

RUNS = 12


def runtime_cov(cloud: str, interval_s: float, seed: int) -> float:
    cluster = ballani_cluster(
        BALLANI_CLOUDS[cloud], sample_interval_s=interval_s, seed=seed
    )
    job = build_kmeans(n_nodes=16, slots=4, data_scale=8.0, iterations=4)
    experiment = SimulatorExperiment(cluster, job, rng=np.random.default_rng(seed))
    samples = np.empty(RUNS)
    for i in range(RUNS):
        if i > 0:
            experiment.reset()
        samples[i] = experiment.measure()
    return float(samples.std() / samples.mean())


def run_ablation() -> list[dict]:
    rows = []
    for cloud in ("B", "F"):
        for interval in (5.0, 50.0):
            rows.append(
                {
                    "cloud": cloud,
                    "sample_interval_s": interval,
                    "runtime_cov_pct": round(
                        100 * runtime_cov(cloud, interval, seed=3), 2
                    ),
                }
            )
    return rows


def test_ablation_sampling_rate(benchmark):
    rows = run_once(benchmark, run_ablation)
    print_rows("Ablation: sampling rate vs distribution", rows)

    cov = {(r["cloud"], r["sample_interval_s"]): r["runtime_cov_pct"] for r in rows}
    # The paper's claim: volatility is "not dependent on the sampling
    # rate, but rather on the distribution itself".  For each cloud the
    # 5 s and 50 s CoVs agree within a factor, while the clouds differ.
    for cloud in ("B", "F"):
        fast, slow = cov[(cloud, 5.0)], cov[(cloud, 50.0)]
        assert abs(fast - slow) <= 0.6 * max(fast, slow)
    # Note an emergent effect worth knowing: long transfers on the slow
    # cloud time-average over many bandwidth draws, so cloud F's
    # *run-level* CoV can undercut cloud B's even though F's bandwidth
    # distribution is far wider (its absolute runtimes are of course
    # much longer — Figure 3 records that separately).
    assert cov[("F", 5.0)] != cov[("B", 5.0)]
