"""Figure 11: token-bucket parameters of the EC2 c5.* family.

Fifteen identification runs per type, as in the paper.

Paper values: time-to-empty and capped rate grow with instance size
(c5.xlarge ~10 minutes, 10 -> 1 Gbps); constants are inconsistent
across incarnations of the same type.
"""

from conftest import print_rows, run_once

from repro.paper import fig11


def test_fig11_token_bucket_parameters(benchmark):
    result = run_once(benchmark, fig11.reproduce, tests_per_type=15)
    print_rows("Figure 11: identified token-bucket parameters", result.rows())

    assert result.monotone_in_size()
    assert result.incarnations_inconsistent()
    xlarge = result.identifications["c5.xlarge"].summary()
    assert 300 < xlarge["empty_time_median_s"] < 1_200
