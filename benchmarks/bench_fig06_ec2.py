"""Figure 6: Amazon EC2 bandwidth by access pattern (week per pattern).

Paper values: heavier streams achieve *less* (the token bucket);
approximately 3x and 7x mean-bandwidth advantages of 10-30 and 5-30
over full-speed; achieved bandwidth spans ~1-10 Gbps.
"""

from conftest import print_rows, run_once

from repro.paper import fig06


def test_fig06_ec2_bandwidth(benchmark):
    result = run_once(benchmark, fig06.reproduce)
    print_rows("Figure 6: EC2 per-pattern summary", result.rows())
    print_rows(
        "Slowdowns vs full-speed",
        [{k: round(v, 2) for k, v in result.slowdowns().items()}],
    )

    slow = result.slowdowns()
    assert 2.0 < slow["ten_thirty_vs_full_speed"] < 4.5
    assert 5.0 < slow["five_thirty_vs_full_speed"] < 9.0
