"""Tables 1-4: survey parameters, funnel, campaign summary, setup.

Table 3 runs a time-scaled version of every campaign (hours instead of
weeks); every configuration must still exhibit variability, exactly as
the paper's table records.
"""

from conftest import print_rows, run_once

from repro.paper import tables


def test_table1_survey_parameters(benchmark):
    result = run_once(benchmark, tables.table1)
    print_rows("Table 1: survey parameters", [result])
    assert "NSDI" in result["venues"]


def test_table2_survey_funnel(benchmark):
    result = run_once(benchmark, tables.table2)
    print_rows("Table 2: survey process", [result])
    assert result["filtered_for_cloud"] == 44
    assert result["citations"] == 11_203


def test_table3_campaign_summary(benchmark):
    rows = run_once(benchmark, tables.table3)
    print_rows("Table 3: campaign summary", rows)
    assert len(rows) == 11
    assert all(row["exhibits_variability"] for row in rows)


def test_table4_experiment_setup(benchmark):
    rows = run_once(benchmark, tables.table4)
    print_rows("Table 4: big-data experiment setup", rows)
    assert len(rows) == 2
