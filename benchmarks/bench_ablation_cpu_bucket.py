"""Extension: CPU token buckets affect experiments the same way.

The paper's closing warning ("cloud providers use token buckets for
other resources such as CPU scheduling") — demonstrated with the
burstable-CPU model: a compute-bound job repeated back-to-back on a
credit-based instance slows once credits exhaust, while a network
token budget would have left it untouched.
"""

from conftest import print_rows, run_once

from repro.netmodel import CpuTokenBucket
from repro.netmodel.cpu_bucket import T2_MEDIUM_LIKE

WORK_CORE_S = 120.0  # per-repetition compute work
REPETITIONS = 8


def run_study() -> list[dict]:
    rows = []
    bucket = CpuTokenBucket(T2_MEDIUM_LIKE)
    for repetition in range(REPETITIONS):
        elapsed = bucket.run_at_full_speed(WORK_CORE_S)
        rows.append(
            {
                "repetition": repetition + 1,
                "elapsed_s": round(elapsed, 1),
                "credits_left": round(bucket.credits, 1),
                "throttled": bucket.throttled,
            }
        )
    return rows


def test_cpu_bucket_carryover(benchmark):
    rows = run_once(benchmark, run_study)
    print_rows("CPU-credit carry-over across repetitions", rows)

    # Early repetitions run at full speed; later ones crawl at the
    # baseline — the CPU flavour of Figure 19's non-iid repetitions.
    assert rows[0]["elapsed_s"] < WORK_CORE_S * 1.05
    assert rows[-1]["elapsed_s"] > WORK_CORE_S * 3.0
    assert rows[-1]["throttled"]
