"""Observability overhead benchmark: what a full recorder costs.

Runs the canonical 16-node multi-tenant stream twice — recorder off,
then under a full :class:`~repro.obs.recorder.ObsRecorder` (metrics
scraping, latency/queueing quantiles, job/stage/task-group/flow
spans) — and reports both wall times plus the relative cost.  The two
runs must agree on checksum and step count: the recorder only reads
simulation state, and :func:`repro.bench.hotpath.bench_obs_overhead`
raises if observability perturbed the trajectory.

    python benchmarks/bench_obs_overhead.py            # full-sized run
    python benchmarks/bench_obs_overhead.py --smoke    # CI-sized run
    python benchmarks/bench_obs_overhead.py --check    # gate vs ledger

``--check`` gates only the ``obs_overhead`` case against the shared
``BENCH_engine.json`` ledger (the recorder-off wall time and the
checksum); recording the ledger remains the suite-wide job of
``benchmarks/bench_engine_hotpath.py``.

Under pytest the benchmark runs once (smoke-sized) and prints its row
without touching the ledger.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.hotpath import (
    DEFAULT_RESULTS_PATH,
    bench_obs_overhead,
    check_results,
    load_results,
)
from repro.cli import add_bench_check_arguments


def test_obs_overhead(benchmark):
    from conftest import print_rows, run_once

    result = run_once(benchmark, lambda: bench_obs_overhead(n_jobs=20))
    print_rows("observability overhead (smoke-sized stream)", [result])
    assert result["checksum"] > 0
    assert result["spans"] > 0
    assert result["scrapes"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run (20 jobs instead of 200)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_RESULTS_PATH,
        help=f"results ledger path (default: {DEFAULT_RESULTS_PATH})",
    )
    add_bench_check_arguments(parser)
    args = parser.parse_args(argv)
    if args.save_smoke:
        print(
            "error: the ledger is recorded suite-wide; use "
            "benchmarks/bench_engine_hotpath.py --save-smoke",
            file=sys.stderr,
        )
        return 2
    smoke = args.smoke
    row = bench_obs_overhead(n_jobs=20) if smoke else bench_obs_overhead()
    print("obs_overhead: " + "  ".join(f"{k}={v}" for k, v in row.items()))
    if not args.check:
        return 0
    section = "smoke" if smoke else "current"
    reference = load_results(args.json).get(section)
    if not reference:
        print(
            f"error: no {section!r} reference in {args.json}; record one "
            "with benchmarks/bench_engine_hotpath.py first",
            file=sys.stderr,
        )
        return 2
    failures = check_results(
        {"obs_overhead": row}, reference, wall_tolerance=args.wall_tolerance
    )
    if failures:
        for failure in failures:
            print(f"BENCH CHECK FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"bench check ok: obs_overhead within {args.wall_tolerance:.2f}x "
        f"of the {section!r} reference, checksum unchanged "
        f"(overhead {row['overhead_pct']}%)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
