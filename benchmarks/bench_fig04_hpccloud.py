"""Figure 4: HPCCloud bandwidth variability (one-week full-speed trace).

Paper values: 7.7-10.4 Gbps range; up to ~33 % change between
consecutive 10-second samples.
"""

from conftest import print_rows, run_once

from repro.paper import fig04


def test_fig04_hpccloud_bandwidth(benchmark):
    result = run_once(benchmark, fig04.reproduce)
    print_rows("Figure 4: HPCCloud full-speed week", result.rows())

    row = result.rows()[0]
    assert row["min_gbps"] >= 7.5
    assert row["max_gbps"] <= 10.6
    assert row["max_consecutive_change_pct"] > 15.0
