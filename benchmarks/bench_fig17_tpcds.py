"""Figure 17: TPC-DS budget sensitivity across 21 queries.

Ten runs per (query, budget) as in the paper.

Paper shape: all queries benefit from larger budgets; network-heavy
queries show the largest slowdowns and the widest variability.
"""

from conftest import print_rows, run_once

from repro.paper import fig17


def test_fig17_tpcds_budgets(benchmark):
    result = run_once(benchmark, fig17.reproduce, runs_per_config=10)
    print_rows("Figure 17a: slowdowns per query", result.slowdown_rows())
    print_rows(
        "Figure 17b: variability boxes",
        [
            {"query": q, **{k: round(v, 1) for k, v in box.as_dict().items()}}
            for q, box in result.variability_boxes().items()
        ],
    )

    assert result.all_queries_monotone_in_budget()
    assert result.heavy_queries_lead()
    assert result.slowdown(65, 10.0) > 1.8
    assert abs(result.slowdown(82, 10.0) - 1.0) < 0.05
