"""Figure 7: EC2 RTTs for 10-second streams, normal vs throttled.

Paper values: sub-millisecond RTTs at ~10 Gbps; once the shaper
engages (~10 minutes of full-speed transfer) bandwidth drops to
~1 Gbps and latency rises by roughly two orders of magnitude.
"""

from conftest import print_rows, run_once

from repro.paper import fig07


def test_fig07_ec2_latency(benchmark):
    result = run_once(benchmark, fig07.reproduce)
    print_rows("Figure 7: EC2 latency regimes", result.rows())

    assert result.normal.rtt.median() < 0.5
    assert result.latency_inflation > 30.0
    assert result.throttled.bandwidth.mean() < 1.5
