"""Scenario campaigns: randomized multi-job sweeps at two scales.

The fast benchmark runs the CLI-default matrix (8 cells, small
clusters, 5 % data scale) and checks orchestrator invariants: worker
count must not change the rows, and a warm repository must satisfy the
whole matrix from cache.  The slow benchmark runs the full-scale
matrix — 12-node clusters, full data volumes, enough jobs per cell for
CONFIRM verdicts — and is marked ``slow`` so tier-1 runs skip it.
"""

import tempfile

import pytest
from conftest import print_rows, run_once

from repro.measurement import TraceRepository
from repro.scenarios import ScenarioCampaign, scenario_matrix


def _run_matrix(configs, workers, repository=None):
    return ScenarioCampaign(
        configs, repository=repository, workers=workers
    ).run()


def test_scenario_sweep_fast(benchmark):
    configs = scenario_matrix(
        providers=("amazon", "google"),
        arrival_rates=(1.0, 4.0),
        n_jobs=3,
        n_nodes=4,
        data_scale=0.05,
        seed=7,
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        repository = TraceRepository(cache_dir)
        outcome = run_once(benchmark, _run_matrix, configs, 4, repository)
        print_rows("scenario sweep (fast matrix)", outcome.aggregate_rows())

        serial = _run_matrix(configs, workers=1)
        assert serial.aggregate_rows() == outcome.aggregate_rows()

        cached = _run_matrix(configs, workers=4, repository=repository)
        assert cached.cache_hit_fraction == 1.0
        assert cached.aggregate_rows() == outcome.aggregate_rows()


@pytest.mark.slow
def test_scenario_sweep_full(benchmark):
    configs = scenario_matrix(
        providers=("amazon", "google", "hpccloud"),
        arrival_rates=(0.5, 2.0, 8.0),
        workloads=("mixed", "random", "tpch"),
        n_jobs=16,
        n_nodes=12,
        data_scale=1.0,
        seed=7,
    )
    outcome = run_once(benchmark, _run_matrix, configs, 8)
    rows = outcome.aggregate_rows()
    print_rows("scenario sweep (full matrix)", rows)
    assert len(rows) == len(configs)
    # At full scale every cell has enough jobs for a CONFIRM verdict.
    assert all(row["ci_widened"] is not None for row in rows)
