"""Smoke tests: the example scripts must stay runnable.

Only the fast examples run here (the full set is exercised manually /
in CI with longer budgets); each must complete and print its headline
sections.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "network fingerprint" in out
    assert "Terasort" in out
    assert "token bucket" in out


def test_survey_report(capsys):
    out = run_example("survey_report.py", capsys)
    assert "Table 2" in out
    assert "Figure 1a" in out
    assert "Cohen's Kappa" in out


def test_straggler_postmortem(capsys):
    out = run_example("straggler_postmortem.py", capsys)
    assert "straggler" in out
    assert "verdict" in out


def test_scenario_sweep(capsys):
    out = run_example("scenario_sweep.py", capsys)
    assert "scenario sweep: 8 cells" in out
    assert "computed 8 cells" in out
    assert "re-run cache hits: 8/8" in out


def test_deadline_campaign(capsys):
    out = run_example("deadline_campaign.py", capsys)
    assert "deadline campaign: 10 cells (5 fresh + 5 chained)" in out
    assert "miss_rate" in out
    assert "re-run cache hits: 10/10" in out
    assert "mean slowdown: srpt" in out
    assert "warm-fabric slowdown" in out


def test_observability_tour(capsys):
    out = run_example("observability_tour.py", capsys)
    assert "observed stream" in out
    assert "task-latency quantiles" in out
    assert "chrome trace:" in out
    assert "campaign status" in out
    assert "STRAGGLER" in out


def test_sharded_campaign(capsys):
    out = run_example("sharded_campaign.py", capsys)
    assert "2 shards" in out
    assert "shard 1 resumed" in out
    assert "content hash matches a serial run" in out
    assert "8/8 cache hits" in out


def test_distributed_campaign(capsys):
    out = run_example("distributed_campaign.py", capsys)
    assert "remote workers done" in out
    assert "merged hash equals the serial run: convergence held" in out
    assert "refetches=1" in out
    assert "CORRUPT" not in out


def test_serving_slo(capsys):
    out = run_example("serving_slo.py", capsys)
    assert "serving SLO gate" in out
    assert "slo verdict: FAIL (1 violation window(s))" in out
    assert "slo verdict: PASS (0 violation window(s))" in out
    assert "only the variable fabric breaks the SLO" in out


def test_fault_tolerant_campaign(capsys):
    out = run_example("fault_tolerant_campaign.py", capsys)
    assert "convergence held" in out
    assert "quarantined: ['cell-" in out
    assert "partial merge kept 6/8" in out
    assert "store verify" in out and "CORRUPT" not in out
