"""Tests for probes, capture, campaigns, and fingerprinting."""

import math

import numpy as np
import pytest

from repro.cloud import Ec2Provider, GceProvider, HpcCloudProvider
from repro.emulator import FIVE_THIRTY, FULL_SPEED
from repro.measurement import (
    BandwidthProbe,
    CampaignConfig,
    LatencyProbe,
    RetransmissionModel,
    fingerprint_link,
    identify_token_bucket,
    run_campaign,
    segments_for_gbit,
    table3_campaigns,
)
from repro.netmodel import (
    ConstantRateModel,
    Ec2LatencyModel,
    TokenBucketModel,
    TokenBucketParams,
)

PARAMS = TokenBucketParams(
    peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95, capacity_gbit=5_400.0
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestCapture:
    def test_segment_count(self):
        # 1 Gbit = 125 MB -> ~86k segments of 1448 bytes.
        assert segments_for_gbit(1.0) == pytest.approx(86_326, rel=0.01)

    def test_zero_volume(self):
        assert segments_for_gbit(0.0) == 0

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            segments_for_gbit(-1.0)

    def test_expected_count_scales_with_rate(self):
        low = RetransmissionModel(rate=1e-6).expected_count(100.0)
        high = RetransmissionModel(rate=0.02).expected_count(100.0)
        assert high > 1_000 * low

    def test_gce_magnitude_matches_figure9(self, rng):
        # 10 s at ~15 Gbps with ~2% loss -> hundreds of thousands of
        # retransmissions per window (Figure 9's violin).
        model = RetransmissionModel(rate=0.02)
        count = model.sample_count(150.0, rng)
        assert 150_000 < count < 350_000

    def test_dispersion_widens_distribution(self, rng):
        tight = RetransmissionModel(rate=0.02)
        wide = RetransmissionModel(rate=0.02, dispersion=5.0)
        tight_counts = [tight.sample_count(150.0, rng) for _ in range(200)]
        wide_counts = [wide.sample_count(150.0, rng) for _ in range(200)]
        assert np.std(wide_counts) > 3 * np.std(tight_counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetransmissionModel(rate=1.5)
        with pytest.raises(ValueError):
            RetransmissionModel(rate=0.5, dispersion=0.5)


class TestBandwidthProbe:
    def test_trace_shape(self, rng):
        probe = BandwidthProbe(ConstantRateModel(5.0), FULL_SPEED)
        trace = probe.run(100.0, rng=rng)
        assert len(trace) == 10
        assert trace.values == pytest.approx(np.full(10, 5.0))

    def test_retransmissions_attached(self, rng):
        probe = BandwidthProbe(
            ConstantRateModel(10.0),
            FULL_SPEED,
            retransmissions=RetransmissionModel(rate=0.02),
        )
        trace = probe.run(100.0, rng=rng)
        assert trace.total_retransmissions() > 0

    def test_label(self, rng):
        probe = BandwidthProbe(ConstantRateModel(1.0), FIVE_THIRTY)
        trace = probe.run(70.0, rng=rng, label="custom")
        assert trace.label == "custom"


class TestLatencyProbe:
    def test_packet_count_scales_with_bandwidth(self):
        probe = LatencyProbe(Ec2LatencyModel(), packet_bytes=9_000)
        low = probe.packets_for_stream(1.0)
        high = probe.packets_for_stream(10.0)
        assert high == pytest.approx(10 * low, rel=0.01)

    def test_max_samples_cap(self, rng):
        probe = LatencyProbe(Ec2LatencyModel(), max_samples=1_000)
        trace = probe.run(10.0, rng=rng)
        assert len(trace) == 1_000

    def test_zero_bandwidth_empty_trace(self, rng):
        probe = LatencyProbe(Ec2LatencyModel())
        trace = probe.run(0.0, rng=rng)
        assert len(trace) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyProbe(Ec2LatencyModel(), packet_bytes=0)
        with pytest.raises(ValueError):
            LatencyProbe(Ec2LatencyModel(), max_samples=0)


class TestCampaigns:
    def test_table3_has_eleven_rows(self):
        assert len(table3_campaigns()) == 11

    def test_scaled_durations_floor_at_one_hour(self):
        configs = table3_campaigns(duration_scale=1e-6)
        assert all(c.duration_s == 3_600.0 for c in configs)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            table3_campaigns(duration_scale=0.0)

    def test_run_campaign_produces_all_patterns(self):
        config = CampaignConfig(
            provider_name="hpccloud",
            instance_name="hpccloud-8core",
            duration_s=3_600.0,
        )
        result = run_campaign(config)
        assert set(result.traces) == {"full-speed", "10-30", "5-30"}
        assert result.exhibits_variability

    def test_summary_row_fields(self):
        config = CampaignConfig(
            provider_name="google", instance_name="gce-8core", duration_s=3_600.0
        )
        row = run_campaign(config).summary_row()
        assert row["cloud"] == "google"
        assert row["qos_gbps"] == "16"
        assert row["exhibits_variability"] is True

    def test_amazon_campaign_shows_throttling(self):
        config = CampaignConfig(
            provider_name="amazon", instance_name="c5.xlarge", duration_s=3_600.0
        )
        result = run_campaign(config)
        full = result.trace("full-speed")
        assert full.values.max() > 9.0
        assert full.values.min() < 1.5


class TestFingerprinting:
    def test_identify_token_bucket_on_ec2_model(self):
        model = TokenBucketModel(PARAMS)
        estimate = identify_token_bucket(model)
        assert estimate.detected
        assert estimate.time_to_empty_s == pytest.approx(600.0, rel=0.1)
        assert estimate.high_gbps == pytest.approx(10.0, rel=0.05)
        assert estimate.low_gbps == pytest.approx(1.0, rel=0.1)
        assert estimate.replenish_gbps == pytest.approx(0.95, rel=0.3)

    def test_budget_estimate(self):
        model = TokenBucketModel(PARAMS)
        estimate = identify_token_bucket(model)
        assert estimate.budget_gbit == pytest.approx(5_400.0, rel=0.2)

    def test_no_bucket_detected_on_constant_link(self):
        estimate = identify_token_bucket(
            ConstantRateModel(8.0), max_duration_s=300.0
        )
        assert not estimate.detected
        assert math.isinf(estimate.time_to_empty_s)

    def test_no_bucket_on_gce_model(self, rng):
        model = GceProvider().link_model("gce-4core", rng)
        estimate = identify_token_bucket(model, max_duration_s=900.0)
        assert not estimate.detected

    def test_fingerprint_bundle(self, rng):
        provider = Ec2Provider()
        model = provider.link_model("c5.xlarge", rng)
        fp = fingerprint_link(model, provider.latency_model(), rng=rng)
        assert fp.base_bandwidth_gbps == pytest.approx(10.0, rel=0.05)
        assert fp.base_latency_ms < 1.0
        assert fp.token_bucket.detected

    def test_fingerprint_matching(self, rng):
        provider = Ec2Provider()
        fp1 = fingerprint_link(
            provider.link_model("c5.xlarge", rng), provider.latency_model(), rng=rng
        )
        fp2 = fingerprint_link(
            provider.link_model("c5.xlarge", rng), provider.latency_model(), rng=rng
        )
        assert fp1.matches(fp2, tolerance=0.5)

    def test_fingerprint_mismatch_across_eras(self, rng):
        # The August 2019 policy change: 5 Gbps NICs break baselines.
        pre = Ec2Provider(era="pre-2019-08")
        post = Ec2Provider(era="post-2019-08", five_gbps_fraction=1.0)
        fp_pre = fingerprint_link(
            pre.link_model("c5.xlarge", rng), pre.latency_model(), rng=rng
        )
        fp_post = fingerprint_link(
            post.link_model("c5.xlarge", rng), post.latency_model(), rng=rng
        )
        assert not fp_pre.matches(fp_post, tolerance=0.10)

    def test_hpccloud_no_bucket_fingerprint(self, rng):
        provider = HpcCloudProvider()
        model = provider.link_model("hpccloud-8core", rng)
        fp = fingerprint_link(model, provider.latency_model(), rng=rng)
        assert not fp.token_bucket.detected
        assert 7.0 < fp.base_bandwidth_gbps < 11.0
