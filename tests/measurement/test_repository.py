"""Tests for the trace repository."""

import numpy as np
import pytest

from repro.measurement import CampaignConfig, TraceRepository, run_campaign


@pytest.fixture
def campaign_result():
    config = CampaignConfig(
        provider_name="hpccloud",
        instance_name="hpccloud-8core",
        duration_s=3_600.0,
        seed=5,
    )
    return run_campaign(config)


@pytest.fixture
def repo(tmp_path):
    return TraceRepository(tmp_path / "traces")


class TestStoreLoad:
    def test_roundtrip_preserves_traces(self, repo, campaign_result):
        repo.store("hpc-week1", campaign_result)
        loaded = repo.load("hpc-week1")
        assert set(loaded.traces) == set(campaign_result.traces)
        for name in campaign_result.traces:
            original = campaign_result.traces[name]
            clone = loaded.traces[name]
            assert clone.values == pytest.approx(original.values)
            assert clone.retransmissions == pytest.approx(
                original.retransmissions
            )
            assert clone.durations == pytest.approx(original.durations)

    def test_roundtrip_preserves_config(self, repo, campaign_result):
        repo.store("hpc-week1", campaign_result)
        loaded = repo.load("hpc-week1")
        assert loaded.config.provider_name == "hpccloud"
        assert loaded.config.seed == 5
        assert loaded.config.duration_s == 3_600.0

    def test_summary_row_survives_roundtrip(self, repo, campaign_result):
        repo.store("hpc-week1", campaign_result)
        assert (
            repo.load("hpc-week1").summary_row()
            == campaign_result.summary_row()
        )

    def test_duplicate_id_rejected(self, repo, campaign_result):
        repo.store("x", campaign_result)
        with pytest.raises(ValueError):
            repo.store("x", campaign_result)

    def test_unsafe_id_rejected(self, repo, campaign_result):
        with pytest.raises(ValueError):
            repo.store("../escape", campaign_result)

    def test_missing_id_raises(self, repo):
        with pytest.raises(KeyError):
            repo.load("nope")


class TestManifest:
    def test_contains_and_ids(self, repo, campaign_result):
        assert "a" not in repo
        repo.store("a", campaign_result)
        repo.store("b", campaign_result)
        assert "a" in repo
        assert repo.campaign_ids() == ["a", "b"]

    def test_summary_rows(self, repo, campaign_result):
        repo.store("a", campaign_result)
        rows = repo.summary_rows()
        assert len(rows) == 1
        assert rows[0]["provider"] == "hpccloud"
        assert "full-speed" in rows[0]["patterns"]

    def test_delete(self, repo, campaign_result):
        repo.store("a", campaign_result)
        repo.delete("a")
        assert "a" not in repo
        with pytest.raises(KeyError):
            repo.delete("a")

    def test_persistent_across_instances(self, tmp_path, campaign_result):
        root = tmp_path / "traces"
        TraceRepository(root).store("a", campaign_result)
        fresh = TraceRepository(root)
        assert "a" in fresh
        assert len(fresh.load("a").traces) == 3
