"""Tests for the trace repository."""

import json

import numpy as np
import pytest

from repro.measurement import (
    CampaignConfig,
    RepositoryCorruptionError,
    TraceRepository,
    run_campaign,
)


@pytest.fixture
def campaign_result():
    config = CampaignConfig(
        provider_name="hpccloud",
        instance_name="hpccloud-8core",
        duration_s=3_600.0,
        seed=5,
    )
    return run_campaign(config)


@pytest.fixture
def repo(tmp_path):
    return TraceRepository(tmp_path / "traces")


class TestStoreLoad:
    def test_roundtrip_preserves_traces(self, repo, campaign_result):
        repo.store("hpc-week1", campaign_result)
        loaded = repo.load("hpc-week1")
        assert set(loaded.traces) == set(campaign_result.traces)
        for name in campaign_result.traces:
            original = campaign_result.traces[name]
            clone = loaded.traces[name]
            assert clone.values == pytest.approx(original.values)
            assert clone.retransmissions == pytest.approx(
                original.retransmissions
            )
            assert clone.durations == pytest.approx(original.durations)

    def test_roundtrip_preserves_config(self, repo, campaign_result):
        repo.store("hpc-week1", campaign_result)
        loaded = repo.load("hpc-week1")
        assert loaded.config.provider_name == "hpccloud"
        assert loaded.config.seed == 5
        assert loaded.config.duration_s == 3_600.0

    def test_summary_row_survives_roundtrip(self, repo, campaign_result):
        repo.store("hpc-week1", campaign_result)
        assert (
            repo.load("hpc-week1").summary_row()
            == campaign_result.summary_row()
        )

    def test_duplicate_id_rejected(self, repo, campaign_result):
        repo.store("x", campaign_result)
        with pytest.raises(ValueError):
            repo.store("x", campaign_result)

    def test_unsafe_id_rejected(self, repo, campaign_result):
        with pytest.raises(ValueError):
            repo.store("../escape", campaign_result)

    def test_missing_id_raises(self, repo):
        with pytest.raises(KeyError):
            repo.load("nope")

    def test_unsafe_id_rejected_on_load(self, repo):
        # A crafted id in a shared manifest must never escape the root.
        for crafted in ("../escape", "..", ".", "a\n", "ok/../.."):
            with pytest.raises(ValueError):
                repo.load(crafted)
            with pytest.raises(ValueError):
                repo.delete(crafted)

    def test_dot_ids_rejected_on_store(self, repo, campaign_result):
        # repo.store("..") would write config.json into the parent and
        # repo.delete("..") would unlink every json beside the root.
        for crafted in ("..", ".", "a\n"):
            with pytest.raises(ValueError):
                repo.store(crafted, campaign_result)

    def test_missing_trace_file_is_clear_error(self, repo, campaign_result):
        repo.store("hpc-week1", campaign_result)
        pattern = sorted(campaign_result.traces)[0]
        (repo.root / "hpc-week1" / f"{pattern}.json").unlink()
        with pytest.raises(RepositoryCorruptionError, match="hpc-week1"):
            repo.load("hpc-week1")

    def test_missing_config_file_is_clear_error(self, repo, campaign_result):
        repo.store("hpc-week1", campaign_result)
        (repo.root / "hpc-week1" / "config.json").unlink()
        with pytest.raises(RepositoryCorruptionError, match="config"):
            repo.load("hpc-week1")

    def test_manifest_only_entry_is_clear_error(self, tmp_path):
        # A manifest pointing at a directory that never materialized
        # (interrupted copy) must not surface as a bare KeyError.
        repo = TraceRepository(tmp_path / "traces")
        manifest = {"ghost": {"provider": "amazon", "instance": "c5.xlarge",
                              "duration_s": 1.0, "patterns": ["full-speed"]}}
        (repo.root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(RepositoryCorruptionError):
            repo.load("ghost")
        # The recovery path the error message recommends must work:
        # a manifest-only entry can still be deleted.
        repo.delete("ghost")
        assert "ghost" not in repo


class TestManifest:
    def test_contains_and_ids(self, repo, campaign_result):
        assert "a" not in repo
        repo.store("a", campaign_result)
        repo.store("b", campaign_result)
        assert "a" in repo
        assert repo.campaign_ids() == ["a", "b"]

    def test_summary_rows(self, repo, campaign_result):
        repo.store("a", campaign_result)
        rows = repo.summary_rows()
        assert len(rows) == 1
        assert rows[0]["provider"] == "hpccloud"
        assert "full-speed" in rows[0]["patterns"]

    def test_delete(self, repo, campaign_result):
        repo.store("a", campaign_result)
        repo.delete("a")
        assert "a" not in repo
        with pytest.raises(KeyError):
            repo.delete("a")

    def test_persistent_across_instances(self, tmp_path, campaign_result):
        root = tmp_path / "traces"
        TraceRepository(root).store("a", campaign_result)
        fresh = TraceRepository(root)
        assert "a" in fresh
        assert len(fresh.load("a").traces) == 3


class TestDurability:
    def test_store_leaves_no_staging_litter(self, repo, campaign_result):
        repo.store("a", campaign_result)
        names = sorted(p.name for p in repo.root.rglob("*"))
        assert not any(name.endswith(".tmp") for name in names)

    def test_crashed_store_cannot_strand_the_manifest(
        self, repo, campaign_result, monkeypatch
    ):
        # The satellite contract: an interrupted store (killed between
        # writing trace files and the manifest) leaves the manifest
        # consistent — RepositoryCorruptionError is unreachable from a
        # crashed writer.
        from repro.runtime.store import ArtifactStore

        real = ArtifactStore._write_manifest

        def boom(self, manifest):
            raise OSError("killed before manifest update")

        repo.store("survivor", campaign_result)
        monkeypatch.setattr(ArtifactStore, "_write_manifest", boom)
        with pytest.raises(OSError):
            repo.store("victim", campaign_result)
        monkeypatch.setattr(ArtifactStore, "_write_manifest", real)
        # The victim never reached the manifest; every listed campaign
        # still loads in full.
        assert "victim" not in repo
        assert repo.campaign_ids() == ["survivor"]
        repo.load("survivor")
        # Retrying the interrupted store succeeds (orphan dir adopted).
        repo.store("victim", campaign_result)
        assert len(repo.load("victim").traces) == 3
