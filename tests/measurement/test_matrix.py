"""Tests for measurement-campaign matrix execution."""

import numpy as np
import pytest

from repro.measurement import (
    CampaignConfig,
    TraceRepository,
    campaign_cell_id,
    run_campaign,
    run_campaign_matrix,
    table3_campaigns,
)
from repro.measurement.matrix import (
    campaign_payload,
    config_from_payload,
)

#: One-hour campaigns (the duration floor) keep cells test-sized.
SCALE = 1e-6


def small_catalog(n=3, seed=0):
    return table3_campaigns(duration_scale=SCALE, seed=seed)[:n]


class TestPayloadRoundtrip:
    def test_config_survives_payload_roundtrip(self):
        for config in small_catalog():
            clone = config_from_payload(campaign_payload(config))
            assert clone == config

    def test_cell_id_is_content_hash(self):
        a, b = small_catalog(2)
        assert campaign_cell_id(a) == campaign_cell_id(a)
        assert campaign_cell_id(a) != campaign_cell_id(b)
        assert campaign_cell_id(a).startswith("cmp-")

    def test_non_catalog_pattern_rejected(self):
        from repro.emulator.patterns import TrafficPattern

        config = CampaignConfig(
            provider_name="amazon",
            instance_name="c5.xlarge",
            duration_s=3_600.0,
            patterns=(TrafficPattern("bespoke", 1.0, 1.0),),
        )
        with pytest.raises(KeyError):
            campaign_payload(config)


class TestRunCampaignMatrix:
    def test_matches_single_campaign_path(self):
        configs = small_catalog(2)
        outcome = run_campaign_matrix(configs)
        assert len(outcome.computed_keys) == 2
        direct = run_campaign(configs[0])
        via_matrix = outcome.results[campaign_cell_id(configs[0])]
        assert direct.summary_row() == via_matrix.summary_row()
        for name, trace in direct.traces.items():
            assert np.array_equal(trace.values, via_matrix.traces[name].values)

    def test_caching_roundtrip(self, tmp_path):
        configs = small_catalog(2)
        repo = TraceRepository(tmp_path / "store")
        first = run_campaign_matrix(configs, repository=repo)
        assert first.cache_hit_fraction == 0.0
        second = run_campaign_matrix(configs, repository=repo)
        assert second.cache_hit_fraction == 1.0
        assert second.summary_rows() == first.summary_rows()
        # Extending the catalog recomputes only the new cell.
        extended = small_catalog(3)
        third = run_campaign_matrix(extended, repository=repo)
        assert len(third.cached_keys) == 2
        assert len(third.computed_keys) == 1

    def test_worker_count_does_not_change_rows(self):
        configs = small_catalog(3)
        serial = run_campaign_matrix(configs)
        pooled = run_campaign_matrix(configs, workers=3)
        assert serial.summary_rows() == pooled.summary_rows()

    def test_validation(self):
        with pytest.raises(ValueError):
            run_campaign_matrix(small_catalog(1), workers=0)
        with pytest.raises(ValueError):
            run_campaign_matrix([])
