"""Tests for scenario-campaign orchestration."""

import numpy as np
import pytest

from repro.measurement import TraceRepository
from repro.scenarios import (
    ScenarioCampaign,
    ScenarioConfig,
    ScenarioResult,
    run_scenario,
    scenario_matrix,
)

#: Small, fast cell used throughout: 4 nodes, 3 jobs, 5 % data scale.
FAST = dict(n_nodes=4, n_jobs=3, data_scale=0.05)


def fast_matrix(seed=7, **kwargs):
    defaults = dict(
        providers=("amazon",),
        arrival_rates=(2.0,),
        schedulers=("fifo", "fair"),
        seed=seed,
        **FAST,
    )
    defaults.update(kwargs)
    return scenario_matrix(**defaults)


class TestScenarioConfig:
    def test_id_is_content_hash(self):
        a = ScenarioConfig(seed=1)
        b = ScenarioConfig(seed=1)
        c = ScenarioConfig(seed=2)
        assert a.scenario_id == b.scenario_id
        assert a.scenario_id != c.scenario_id
        assert a.scenario_id.startswith("scn-")

    def test_int_and_float_fields_hash_equally(self):
        # json.dumps renders 1 and 1.0 differently; equal configs must
        # share one id or numerically identical sweeps miss the cache.
        a = ScenarioConfig(arrival_rate_per_min=1, data_scale=1)
        b = ScenarioConfig(arrival_rate_per_min=1.0, data_scale=1.0)
        assert a == b
        assert a.scenario_id == b.scenario_id
        ids_int = [c.scenario_id for c in fast_matrix(arrival_rates=(1,))]
        ids_float = [c.scenario_id for c in fast_matrix(arrival_rates=(1.0,))]
        assert ids_int == ids_float

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(scheduler="lottery")
        with pytest.raises(ValueError):
            ScenarioConfig(arrival="clockwork")
        with pytest.raises(ValueError):
            ScenarioConfig(workload="webserving")
        with pytest.raises(ValueError):
            ScenarioConfig(n_jobs=0)
        with pytest.raises(ValueError):
            ScenarioConfig(arrival_rate_per_min=0.0)


class TestRunScenario:
    def test_deterministic(self):
        config = ScenarioConfig(seed=7, **FAST)
        r1, r2 = run_scenario(config), run_scenario(config)
        assert np.array_equal(r1.runtimes, r2.runtimes)
        assert r1.makespan_s == r2.makespan_s
        assert r1.aggregate_row() == r2.aggregate_row()

    def test_burst_arrival_and_providers(self):
        for provider, instance in (
            ("google", "gce-4core"),
            ("hpccloud", "hpccloud-8core"),
        ):
            config = ScenarioConfig(
                provider_name=provider,
                instance_name=instance,
                arrival="burst",
                seed=3,
                **FAST,
            )
            result = run_scenario(config)
            assert result.runtimes.size == config.n_jobs
            assert (result.runtimes > 0).all()

    def test_aggregate_row_shape(self):
        row = run_scenario(ScenarioConfig(seed=7, **FAST)).aggregate_row()
        assert row["provider"] == "amazon"
        assert row["n_jobs"] == 3
        assert row["cov"] >= 0.0
        assert row["ci_widened"] is None  # too few jobs for CONFIRM

    def test_repository_roundtrip_preserves_row(self, tmp_path):
        result = run_scenario(ScenarioConfig(seed=7, **FAST))
        repo = TraceRepository(tmp_path)
        repo.store(result.config.scenario_id, result.to_campaign_result())
        reloaded = ScenarioResult.from_campaign_result(
            result.config, repo.load(result.config.scenario_id)
        )
        assert reloaded.cached
        assert reloaded.aggregate_row() == result.aggregate_row()


class TestScenarioMatrix:
    def test_cross_product_and_distinct_seeds(self):
        configs = fast_matrix(
            providers=("amazon", "google"), arrival_rates=(1.0, 4.0)
        )
        assert len(configs) == 8
        assert len({c.seed for c in configs}) == 8
        assert len({c.scenario_id for c in configs}) == 8

    def test_matrix_is_stable(self):
        ids1 = [c.scenario_id for c in fast_matrix()]
        ids2 = [c.scenario_id for c in fast_matrix()]
        assert ids1 == ids2

    def test_extending_an_axis_preserves_existing_cells(self):
        # The incremental-caching promise: adding one arrival rate must
        # not change the seeds/ids of cells that already existed, or a
        # warm repository would silently recompute most of the sweep.
        base = fast_matrix(
            providers=("amazon", "google"), arrival_rates=(1.0, 4.0)
        )
        extended = fast_matrix(
            providers=("amazon", "google"), arrival_rates=(1.0, 4.0, 8.0)
        )
        base_ids = {c.scenario_id for c in base}
        extended_ids = {c.scenario_id for c in extended}
        assert base_ids <= extended_ids
        assert len(extended_ids - base_ids) == len(extended) - len(base)


class TestScenarioCampaign:
    def test_worker_count_does_not_change_rows(self):
        configs = fast_matrix()
        serial = ScenarioCampaign(configs, workers=1).run()
        parallel = ScenarioCampaign(configs, workers=4).run()
        assert serial.aggregate_rows() == parallel.aggregate_rows()

    def test_rerun_hits_cache(self, tmp_path):
        configs = fast_matrix()
        repo = TraceRepository(tmp_path)
        first = ScenarioCampaign(configs, repository=repo, workers=1).run()
        assert len(first.computed_ids) == len(configs)
        assert first.cache_hit_fraction == 0.0
        second = ScenarioCampaign(configs, repository=repo, workers=1).run()
        assert len(second.cached_ids) == len(configs)
        assert second.computed_ids == ()
        assert second.cache_hit_fraction == 1.0
        assert second.aggregate_rows() == first.aggregate_rows()

    def test_partial_cache_only_runs_new_cells(self, tmp_path):
        repo = TraceRepository(tmp_path)
        base = fast_matrix()
        ScenarioCampaign(base, repository=repo, workers=1).run()
        extended = base + fast_matrix(schedulers=("fifo",), seed=99)
        outcome = ScenarioCampaign(extended, repository=repo, workers=1).run()
        assert len(outcome.cached_ids) == len(base)
        assert len(outcome.computed_ids) == 1

    def test_completed_cells_survive_a_failing_cell(self, tmp_path, monkeypatch):
        # One diverging cell must not discard the cells computed before
        # it — they are stored as they arrive, so the re-run after a
        # fix only recomputes the broken cell.
        from repro.scenarios import orchestrate

        configs = fast_matrix()
        poison = configs[-1].scenario_id
        real = orchestrate.run_scenario

        def failing(config):
            if config.scenario_id == poison:
                raise RuntimeError("stream did not converge")
            return real(config)

        monkeypatch.setattr(orchestrate, "run_scenario", failing)
        repo = TraceRepository(tmp_path)
        with pytest.raises(RuntimeError):
            ScenarioCampaign(configs, repository=repo, workers=1).run()
        for config in configs[:-1]:
            assert config.scenario_id in repo
        assert poison not in repo

    def _runner(self, configs, repo):
        from repro.runtime import CampaignRunner
        from repro.scenarios import SCENARIO_CODEC, scenario_cells

        return CampaignRunner(
            scenario_cells(configs), store=repo.artifacts, codec=SCENARIO_CODEC
        )

    def test_persist_skips_already_stored_cell(self, tmp_path):
        # A cell stored after the run's manifest snapshot (e.g. by an
        # interrupted earlier sweep) must not crash the current one.
        configs = fast_matrix()
        repo = TraceRepository(tmp_path)
        runner = self._runner(configs, repo)
        result = run_scenario(configs[0])
        repo.store(result.config.scenario_id, result.to_campaign_result())
        # Must be a silent no-op, not a ValueError.
        runner._persist(runner.cells[0], result)
        assert result.config.scenario_id in repo

    def test_persist_reraises_genuine_persistence_failure(self, tmp_path):
        repo = TraceRepository(tmp_path)
        configs = fast_matrix()
        runner = self._runner(configs, repo)
        result = run_scenario(configs[0])
        broken = ScenarioResult(
            config=result.config,
            submits=result.submits,
            runtimes=result.runtimes[:-1],  # misaligned with submits
            makespan_s=result.makespan_s,
        )
        with pytest.raises(ValueError):
            runner._persist(runner.cells[0], broken)

    def test_corrupted_cache_raises_repository_error(self, tmp_path):
        # Deleting a cached cell's trace file behind the manifest must
        # surface as the repository's corruption error (as it did
        # before the runtime refactor), not a raw store exception.
        from repro.measurement import RepositoryCorruptionError

        configs = fast_matrix()
        repo = TraceRepository(tmp_path)
        ScenarioCampaign(configs, repository=repo, workers=1).run()
        victim = configs[0].scenario_id
        (repo.root / victim / "runtimes.json").unlink()
        with pytest.raises(RepositoryCorruptionError, match=victim):
            ScenarioCampaign(configs, repository=repo, workers=1).run()

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioCampaign([])
        config = ScenarioConfig(seed=7, **FAST)
        with pytest.raises(ValueError):
            ScenarioCampaign([config, config])
        with pytest.raises(ValueError):
            ScenarioCampaign([config], workers=0)
