"""Scenario-layer tests for deadline synthesis and warm-fabric chains."""

import numpy as np
import pytest

from repro.measurement import TraceRepository
from repro.scenarios import (
    ScenarioCampaign,
    ScenarioConfig,
    chain_scenarios,
    run_scenario,
    scenario_matrix,
    synthesize_deadlines,
)
from repro.scenarios.generate import job_stream, poisson_arrivals

FAST = dict(n_nodes=4, n_jobs=3, data_scale=0.05)


class TestDeadlineSynthesis:
    def test_deadlines_are_feasible_and_seeded(self):
        rng = np.random.default_rng(3)
        times = poisson_arrivals(rng, rate_per_min=2.0, n_jobs=5)
        stream = job_stream(rng, times, n_nodes=4, data_scale=0.05)
        d1 = synthesize_deadlines(
            np.random.default_rng(9), stream, n_nodes=4, slots=4
        )
        d2 = synthesize_deadlines(
            np.random.default_rng(9), stream, n_nodes=4, slots=4
        )
        assert [entry[2] for entry in d1] == [entry[2] for entry in d2]
        for t, job, deadline in d1:
            assert deadline > t  # always after submission
        # A different seed draws different slack.
        d3 = synthesize_deadlines(
            np.random.default_rng(10), stream, n_nodes=4, slots=4
        )
        assert [e[2] for e in d3] != [e[2] for e in d1]

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_deadlines(np.random.default_rng(0), [], 0, 4)
        with pytest.raises(ValueError):
            synthesize_deadlines(
                np.random.default_rng(0), [], 4, 4, mean_slack=0.0
            )

    def test_deadline_slack_does_not_perturb_the_workload(self):
        # Deadlines draw from a derived generator: under a scheduler
        # that ignores them, runtimes must match the no-deadline cell
        # exactly (the whole point of the separate RNG).
        plain = run_scenario(ScenarioConfig(seed=7, scheduler="fair", **FAST))
        deadlined = run_scenario(
            ScenarioConfig(seed=7, scheduler="fair", deadline_slack=1.0, **FAST)
        )
        assert np.array_equal(plain.runtimes, deadlined.runtimes)
        assert plain.deadlines is None
        assert deadlined.deadlines is not None
        assert deadlined.deadline_miss_rate() is not None

    def test_row_reports_miss_rate_and_slowdown(self):
        result = run_scenario(
            ScenarioConfig(seed=7, scheduler="edf", deadline_slack=0.5, **FAST)
        )
        row = result.aggregate_row()
        assert 0.0 <= row["miss_rate"] <= 1.0
        assert row["mean_slowdown"] >= 1.0
        plain_row = run_scenario(
            ScenarioConfig(seed=7, scheduler="fair", **FAST)
        ).aggregate_row()
        assert plain_row["miss_rate"] is None
        assert plain_row["mean_slowdown"] >= 1.0

    def test_cached_row_matches_computed_row(self, tmp_path):
        config = ScenarioConfig(
            seed=7, scheduler="edf", deadline_slack=0.5, **FAST
        )
        repo = TraceRepository(tmp_path)
        first = ScenarioCampaign([config], repository=repo).run()
        second = ScenarioCampaign([config], repository=repo).run()
        assert second.cached_ids == (config.scenario_id,)
        assert second.aggregate_rows() == first.aggregate_rows()


class TestScenarioConfigCompat:
    def test_new_default_fields_preserve_old_ids(self):
        # deadline_slack=0 / predecessor=None must hash exactly like a
        # config from before the fields existed, or every warm
        # repository would go cold.  The id is pinned from the PR 4 era.
        config = ScenarioConfig(seed=1)
        assert config.scenario_id == ScenarioConfig(seed=1, deadline_slack=0.0).scenario_id
        import hashlib, json
        legacy_payload = {
            "provider_name": "amazon",
            "instance_name": "c5.xlarge",
            "n_nodes": 8,
            "slots": 4,
            "n_jobs": 4,
            "arrival_rate_per_min": 2.0,
            "arrival": "poisson",
            "scheduler": "fifo",
            "workload": "mixed",
            "data_scale": 1.0,
            "seed": 1,
        }
        legacy = "scn-" + hashlib.sha256(
            json.dumps(legacy_payload, sort_keys=True).encode()
        ).hexdigest()[:16]
        assert config.scenario_id == legacy

    def test_non_default_fields_change_the_id(self):
        base = ScenarioConfig(seed=1)
        assert ScenarioConfig(seed=1, deadline_slack=0.5).scenario_id != base.scenario_id
        chained = ScenarioConfig(seed=1, predecessor=base.scenario_id)
        assert chained.scenario_id != base.scenario_id

    def test_new_schedulers_accepted(self):
        for scheduler in ("preempt", "srpt", "edf"):
            config = ScenarioConfig(seed=1, scheduler=scheduler, **FAST)
            assert config.scenario_id.startswith("scn-")

    def test_predecessor_validation(self):
        with pytest.raises(ValueError, match="predecessor"):
            ScenarioConfig(seed=1, predecessor="not-a-scenario")


class TestWarmFabricChains:
    def test_chain_ids_stable_and_prefix_preserving(self):
        base = ScenarioConfig(seed=5, **FAST)
        chain3 = chain_scenarios(base, 3)
        chain5 = chain_scenarios(base, 5)
        assert [c.scenario_id for c in chain5[:3]] == [
            c.scenario_id for c in chain3
        ]
        assert len({c.scenario_id for c in chain5}) == 5

    def test_matrix_chain_length_expands_cells(self):
        configs = scenario_matrix(
            providers=("amazon",),
            arrival_rates=(2.0,),
            schedulers=("fifo",),
            seed=3,
            chain_length=3,
            **FAST,
        )
        assert len(configs) == 3
        assert configs[0].predecessor is None
        assert configs[1].predecessor == configs[0].scenario_id
        assert configs[2].predecessor == configs[1].scenario_id

    def test_warm_chain_differs_from_fresh_fabric(self):
        # The carry-over must be observable: the same workload run on
        # the predecessor's depleted buckets cannot be byte-identical
        # to a fresh-VM run of the same config minus the predecessor.
        base = ScenarioConfig(
            seed=5, n_nodes=4, n_jobs=2, data_scale=4.0, scheduler="fifo"
        )
        head, tail = chain_scenarios(base, 2)
        upstream = run_scenario(head)
        # The head left real carry-over behind: budgets below capacity.
        assert any(
            s["budget_gbit"] < s["params"]["capacity_gbit"] - 1.0
            for s in upstream.fabric_state
        )
        warm = run_scenario(tail, upstream=upstream)
        fresh = run_scenario(
            ScenarioConfig(
                seed=tail.seed,
                n_nodes=4,
                n_jobs=2,
                data_scale=4.0,
                scheduler="fifo",
            )
        )
        assert not np.array_equal(warm.runtimes, fresh.runtimes)
        # And the successor inherits the depleted incarnations, not
        # fresh draws: its final state descends from the head's params.
        assert [s["params"] for s in warm.fabric_state] == [
            s["params"] for s in upstream.fabric_state
        ]

    def test_chained_cell_requires_upstream(self):
        head, tail = chain_scenarios(ScenarioConfig(seed=5, **FAST), 2)
        with pytest.raises(ValueError, match="upstream"):
            run_scenario(tail)
        bad = run_scenario(head)
        bad.fabric_state = None
        with pytest.raises(ValueError, match="fabric"):
            run_scenario(tail, upstream=bad)

    def test_node_count_mismatch_rejected(self):
        head = ScenarioConfig(seed=5, **FAST)
        upstream = run_scenario(head)
        from dataclasses import replace

        tail = replace(
            head, n_nodes=6, seed=6, predecessor=head.scenario_id
        )
        with pytest.raises(ValueError, match="nodes"):
            run_scenario(tail, upstream=upstream)

    def test_provider_mismatch_rejected(self):
        # A chained cell labeled for another provider must not silently
        # run on the predecessor's incarnations (mislabeled rows would
        # also poison the cache under the wrong scenario_id).
        head = ScenarioConfig(seed=5, **FAST)
        upstream = run_scenario(head)
        from dataclasses import replace

        tail = replace(
            head,
            provider_name="google",
            instance_name="gce-4core",
            seed=6,
            predecessor=head.scenario_id,
        )
        with pytest.raises(ValueError, match="provider incarnation"):
            run_scenario(tail, upstream=upstream)

    def test_chain_is_deterministic(self):
        head, tail = chain_scenarios(
            ScenarioConfig(seed=5, scheduler="srpt", **FAST), 2
        )
        r1 = run_scenario(tail, upstream=run_scenario(head))
        r2 = run_scenario(tail, upstream=run_scenario(head))
        assert np.array_equal(r1.runtimes, r2.runtimes)
        assert r1.fabric_state == r2.fabric_state
