"""Tests for randomized workload generation."""

import numpy as np
import pytest

from repro.scenarios import (
    TPCH_LIKE_QUERIES,
    RandomDagConfig,
    WorkloadMix,
    burst_arrivals,
    burst_arrivals_iter,
    job_stream,
    poisson_arrivals,
    poisson_arrivals_iter,
    random_job,
    tpch_like_job,
)


class TestRandomJob:
    def test_valid_dag(self):
        # JobSpec.__post_init__ enforces topological parent order, so
        # constructing 50 random jobs exercises DAG validity directly.
        rng = np.random.default_rng(0)
        for i in range(50):
            job = random_job(rng, name=f"j{i}")
            assert len(job.stages) >= 3
            assert job.stages[0].parents == ()
            assert job.stages[0].input_gbit > 0

    def test_every_nonroot_stage_has_parents(self):
        rng = np.random.default_rng(1)
        job = random_job(rng)
        for stage in job.stages[1:]:
            assert stage.parents
            assert stage.shuffle_gbit > 0

    def test_same_seed_same_job(self):
        j1 = random_job(np.random.default_rng(42))
        j2 = random_job(np.random.default_rng(42))
        assert j1 == j2

    def test_different_seed_different_job(self):
        j1 = random_job(np.random.default_rng(1))
        j2 = random_job(np.random.default_rng(2))
        assert j1 != j2

    def test_shuffle_volumes_are_skewed(self):
        # Lognormal skew: the population must span network-bound to
        # compute-bound, i.e. max/min shuffle ratio well over 10x.
        rng = np.random.default_rng(3)
        volumes = [
            s.shuffle_gbit
            for _ in range(40)
            for s in random_job(rng).stages
            if s.shuffle_gbit > 0
        ]
        assert max(volumes) / min(volumes) > 10.0

    def test_data_scale_scales_volumes(self):
        small = random_job(np.random.default_rng(5), data_scale=0.1)
        large = random_job(np.random.default_rng(5), data_scale=1.0)
        assert large.total_network_gbit == pytest.approx(
            10.0 * small.total_network_gbit
        )

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            RandomDagConfig(min_stages=5, max_stages=3)
        with pytest.raises(ValueError):
            RandomDagConfig(p_side_input=1.5)
        with pytest.raises(ValueError):
            random_job(np.random.default_rng(0), data_scale=0.0)


class TestTpchLike:
    def test_all_templates_build(self):
        rng = np.random.default_rng(0)
        for query in TPCH_LIKE_QUERIES:
            job = tpch_like_job(query, rng)
            assert job.name == f"tpch-q{query}"
            # Star-join templates must actually fan in somewhere.
            if query in (3, 5, 18, 21):
                assert any(len(s.parents) >= 2 for s in job.stages)

    def test_incarnations_jitter(self):
        rng = np.random.default_rng(0)
        a = tpch_like_job(5, rng)
        b = tpch_like_job(5, rng)
        assert a.total_network_gbit != b.total_network_gbit

    def test_unknown_query(self):
        with pytest.raises(KeyError):
            tpch_like_job(99, np.random.default_rng(0))


class TestArrivals:
    def test_poisson_starts_at_zero_and_is_sorted(self):
        times = poisson_arrivals(np.random.default_rng(0), 2.0, n_jobs=20)
        assert times[0] == 0.0
        assert np.all(np.diff(times) >= 0)
        assert times.size == 20

    def test_poisson_mean_gap_matches_rate(self):
        times = poisson_arrivals(np.random.default_rng(1), 6.0, n_jobs=2_000)
        assert np.diff(times).mean() == pytest.approx(10.0, rel=0.1)

    def test_burst_shape(self):
        times = burst_arrivals(
            np.random.default_rng(0), n_bursts=3, jobs_per_burst=4,
            burst_spacing_s=300.0, jitter_s=2.0,
        )
        assert times.size == 12
        assert times[0] == 0.0
        # Jobs within a burst land close together; bursts are far apart.
        gaps = np.diff(times)
        assert np.sum(gaps > 100.0) == 2

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, 0.0, n_jobs=3)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, 1.0, n_jobs=0)
        with pytest.raises(ValueError):
            burst_arrivals(rng, 0, 1, 60.0)


class TestArrivalIterators:
    def test_poisson_iter_matches_eager_prefix(self):
        # Same seed, same RNG consumption order: the lazy form must
        # reproduce the eager array bit for bit up to the duration cut.
        eager = poisson_arrivals(
            np.random.default_rng(11), 2.0, n_jobs=200
        )
        lazy = list(
            poisson_arrivals_iter(
                np.random.default_rng(11), 2.0, duration_s=1e9
            )
        )[:50]
        assert lazy == list(eager[:50])

    def test_burst_iter_matches_eager(self):
        eager = burst_arrivals(
            np.random.default_rng(13), n_bursts=4, jobs_per_burst=3,
            burst_spacing_s=120.0,
        )
        lazy = list(
            burst_arrivals_iter(
                np.random.default_rng(13), jobs_per_burst=3,
                burst_spacing_s=120.0, duration_s=1e9,
            )
        )[: eager.size]
        assert lazy == list(eager)

    def test_duration_bounds_and_start_at_zero(self):
        for times in (
            list(poisson_arrivals_iter(np.random.default_rng(0), 6.0, 300.0)),
            list(
                burst_arrivals_iter(
                    np.random.default_rng(0), 5, 60.0, 300.0
                )
            ),
        ):
            assert times[0] == 0.0
            assert all(t < 300.0 for t in times)
            assert times == sorted(times)

    def test_lazy_consumption(self):
        # Building the generator draws nothing; consuming k arrivals
        # advances the RNG by exactly k - 1 exponential draws.
        rng = np.random.default_rng(7)
        before = rng.bit_generator.state
        gen = poisson_arrivals_iter(rng, 2.0, duration_s=1e9)
        assert rng.bit_generator.state == before
        assert next(gen) == 0.0
        assert rng.bit_generator.state == before
        next(gen)
        assert rng.bit_generator.state != before

    def test_iter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            next(poisson_arrivals_iter(rng, 0.0, 10.0))
        with pytest.raises(ValueError):
            next(poisson_arrivals_iter(rng, 1.0, 0.0))
        with pytest.raises(ValueError):
            next(burst_arrivals_iter(rng, 0, 60.0, 10.0))
        with pytest.raises(ValueError):
            next(burst_arrivals_iter(rng, 1, 60.0, 10.0, jitter_s=-1.0))


class TestJobStream:
    def test_stream_is_deterministic(self):
        def build():
            rng = np.random.default_rng(9)
            return job_stream(rng, poisson_arrivals(rng, 2.0, n_jobs=6))

        assert build() == build()

    def test_pure_mixes(self):
        rng = np.random.default_rng(0)
        times = poisson_arrivals(rng, 2.0, n_jobs=8)
        tpch_only = job_stream(
            rng, times, mix=WorkloadMix(0.0, 1.0, 0.0)
        )
        assert all(job.name.startswith("tpch-") for _, job in tpch_only)
        rand_only = job_stream(
            rng, times, mix=WorkloadMix(1.0, 0.0, 0.0)
        )
        assert all(job.name.startswith("rand-") for _, job in rand_only)

    def test_bad_mix(self):
        with pytest.raises(ValueError):
            WorkloadMix(0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            WorkloadMix(-1.0, 1.0, 1.0)
