"""Tests for the HiBench and TPC-DS workload models."""

import numpy as np
import pytest

from repro.netmodel import TokenBucketModel, TokenBucketParams
from repro.simulator import Cluster, SparkEngine
from repro.workloads import (
    HIBENCH_APPS,
    HIBENCH_CODES,
    TPCDS_QUERIES,
    hibench_job,
    tpcds_catalog,
    tpcds_job,
)

TB = TokenBucketParams(
    peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95, capacity_gbit=5_400.0
)


def bucket_cluster(budget):
    return Cluster.paper_testbed(lambda n: TokenBucketModel(TB.with_budget(budget)))


def run(job, budget, seed=0):
    engine = SparkEngine(bucket_cluster(budget), rng=np.random.default_rng(seed))
    return engine.run(job).runtime_s


class TestHiBenchCatalog:
    def test_five_applications(self):
        assert set(HIBENCH_APPS) == {"terasort", "wordcount", "sort", "kmeans", "bayes"}
        assert set(HIBENCH_CODES) == {"TS", "WC", "S", "KM", "BS"}

    def test_lookup_by_code_and_name(self):
        assert hibench_job("TS").name == "terasort"
        assert hibench_job("kmeans").name == "kmeans"

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            hibench_job("mystery")

    def test_kmeans_iterations(self):
        from repro.workloads import build_kmeans

        job = build_kmeans(iterations=6)
        assert sum(1 for s in job.stages if s.name.startswith("iteration")) == 6
        with pytest.raises(ValueError):
            build_kmeans(iterations=0)

    def test_network_intensity_ordering(self):
        # Figure 16's premise: TS and WC are the network-hungry apps.
        intensity = {
            code: hibench_job(code).network_intensity()
            for code in ("TS", "WC", "S", "KM", "BS")
        }
        assert intensity["TS"] > intensity["S"] > intensity["KM"]
        assert intensity["WC"] > intensity["BS"]

    def test_data_scale_scales_volumes(self):
        small = hibench_job("TS", data_scale=0.1)
        full = hibench_job("TS", data_scale=1.0)
        assert small.total_network_gbit == pytest.approx(
            full.total_network_gbit * 0.1, rel=0.05
        )

    def test_geometry_controls_task_counts(self):
        job = hibench_job("TS", n_nodes=16, slots=2)
        assert job.stages[0].num_tasks == 16 * 2 * 2


class TestHiBenchBehaviour:
    def test_terasort_budget_sensitivity(self):
        # F4.2: 25-50%+ impact for network-intensive applications.
        job = hibench_job("TS")
        fast = run(job, 5_000.0)
        slow = run(job, 10.0)
        assert slow > 1.25 * fast

    def test_kmeans_budget_agnostic(self):
        job = hibench_job("KM")
        fast = run(job, 5_000.0)
        slow = run(job, 10.0)
        assert slow < 1.1 * fast

    def test_runtimes_in_figure16_range(self):
        # Figure 16's vertical axis spans 0-1000 s.
        for code in ("TS", "WC", "S", "KM", "BS"):
            for budget in (5_000.0, 10.0):
                runtime = run(hibench_job(code), budget)
                assert 30.0 < runtime < 1_000.0


class TestTpcdsCatalog:
    def test_twenty_one_queries(self):
        assert len(TPCDS_QUERIES) == 21
        assert TPCDS_QUERIES == tuple(sorted(TPCDS_QUERIES))

    def test_figure17_query_list(self):
        expected = (3, 7, 19, 27, 34, 42, 43, 46, 52, 53, 55, 59, 63, 65,
                    68, 70, 73, 79, 82, 89, 98)
        assert TPCDS_QUERIES == expected

    def test_unknown_query_rejected(self):
        with pytest.raises(KeyError):
            tpcds_job(1)

    def test_scale_factor_scales_volumes(self):
        full = tpcds_job(65, scale_factor=2_000.0)
        half = tpcds_job(65, scale_factor=1_000.0)
        assert half.total_network_gbit == pytest.approx(
            full.total_network_gbit / 2.0, rel=0.05
        )
        with pytest.raises(ValueError):
            tpcds_job(65, scale_factor=0.0)

    def test_classes_cover_expected_queries(self):
        catalog = tpcds_catalog()
        assert catalog[65].network_class == "heavy"
        assert catalog[68].network_class == "heavy"
        assert catalog[82].network_class == "compute-only"
        assert catalog[42].network_class == "light"


class TestTpcdsBehaviour:
    def test_q65_budget_dependent_q82_agnostic(self):
        # The two extremes of Figure 19.
        q65_fast = run(tpcds_job(65), 5_000.0)
        q65_slow = run(tpcds_job(65), 10.0)
        q82_fast = run(tpcds_job(82), 5_000.0)
        q82_slow = run(tpcds_job(82), 10.0)
        assert q65_slow > 1.8 * q65_fast
        assert q82_slow < 1.05 * q82_fast

    def test_heavy_queries_slower_than_light_at_low_budget(self):
        heavy = run(tpcds_job(65), 10.0)
        light = run(tpcds_job(42), 10.0)
        assert heavy > 2 * light

    def test_most_queries_budget_sensitive(self):
        # Figure 19 (bottom): ~80% of queries have budget-dependent
        # performance.  Spot-check a sample for test speed.
        sensitive = 0
        sample = (3, 7, 19, 42, 53, 65, 68, 82, 89, 98)
        for query in sample:
            fast = run(tpcds_job(query), 5_000.0)
            slow = run(tpcds_job(query), 10.0)
            if slow > 1.1 * fast:
                sensitive += 1
        assert sensitive >= 0.7 * (len(sample) - 1)

    def test_runtimes_in_figure17_range(self):
        # Figure 17b's axis: 0-200 s.
        for query in (3, 65, 82):
            for budget in (5_000.0, 10.0):
                runtime = run(tpcds_job(query), budget)
                assert 10.0 < runtime < 220.0
