"""Tests for link-model state snapshots (warm-fabric chain substrate)."""

import json

import numpy as np
import pytest

from repro.netmodel import (
    Ar1QuantileModel,
    ConstantRateModel,
    PerCoreQosModel,
    QuantileDistribution,
    TokenBucketModel,
    TokenBucketParams,
    UniformQuantileSamplingModel,
    model_from_state,
    model_state_dict,
)

DIST = QuantileDistribution(
    probs=(0.01, 0.25, 0.50, 0.75, 0.99),
    values=(7.7, 8.9, 9.4, 9.8, 10.4),
)

TB = TokenBucketParams(
    peak_gbps=10.0,
    capped_gbps=1.0,
    replenish_gbps=0.95,
    capacity_gbit=300.0,
    resume_threshold_gbit=20.0,
)


def all_models():
    return [
        TokenBucketModel(TB),
        ConstantRateModel(10.0),
        PerCoreQosModel(cores=4, seed=3),
        UniformQuantileSamplingModel(DIST, interval_s=5.0, seed=2),
        Ar1QuantileModel(DIST, interval_s=10.0, phi=0.6, seed=4),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("index", range(5))
    def test_restored_model_continues_bit_exactly(self, index):
        # Drive the model into a mid-trajectory state, snapshot through
        # an actual JSON round-trip (the store boundary), and verify
        # the clone replays the identical future — limits and RNG draws.
        model = all_models()[index]
        for _ in range(9):
            model.advance(3.3, min(model.limit(), 6.0))
        snapshot = json.loads(json.dumps(model_state_dict(model)))
        clone = model_from_state(snapshot)
        for _ in range(40):
            assert clone.limit() == model.limit()
            rate = min(model.limit(), 4.0)
            model.advance(2.1, rate)
            clone.advance(2.1, rate)
        assert clone.limit() == model.limit()

    def test_token_bucket_tier_flag_restored(self):
        model = TokenBucketModel(TB.with_budget(0.0))
        assert model.throttled
        clone = model_from_state(model_state_dict(model))
        assert clone.throttled
        assert clone.budget_gbit == model.budget_gbit
        # Hysteresis carries over: below the resume threshold the clone
        # must stay capped, exactly like the original.
        model.rest(5.0)
        clone.rest(5.0)
        assert clone.throttled == model.throttled
        assert clone.limit() == model.limit()

    def test_percore_cold_state_restored(self):
        model = PerCoreQosModel(cores=4, seed=11)
        model.advance(10.0, 8.0)
        model.advance(30.0, 0.0)  # long idle: next send resumes cold
        clone = model_from_state(model_state_dict(model))
        model.advance(0.5, 8.0)
        clone.advance(0.5, 8.0)
        assert clone.limit() == model.limit()
        assert clone.is_warm == model.is_warm

    def test_fleet_adopted_models_snapshot_through(self):
        # A fleet moves the hot state into flat arrays; the snapshot
        # must read through the handle and capture the live values.
        from repro.simulator.fabric import Fabric

        models = [TokenBucketModel(TB) for _ in range(4)]
        fabric = Fabric(models, [10.0] * 4)
        fabric.add_flow(0, 1, 50.0)
        fabric.compute_rates()
        fabric.advance(min(fabric.horizon(), 3.0))
        states = [model_state_dict(m) for m in fabric.egress_models]
        assert states[0]["budget_gbit"] == models[0].budget_gbit
        clones = [model_from_state(s) for s in states]
        for clone, original in zip(clones, fabric.egress_models):
            assert clone.limit() == original.limit()
            assert clone.budget_gbit == original.budget_gbit

    def test_unsupported_model_raises(self):
        class Exotic(ConstantRateModel):
            pass

        with pytest.raises(TypeError, match="Exotic"):
            model_state_dict(Exotic(5.0))
        with pytest.raises(ValueError, match="unknown"):
            model_from_state({"kind": "martian"})
