"""Tests for idle resting: analytic token-bucket refill + bounded fallback."""

import math

import pytest

from repro.netmodel import (
    ConstantRateModel,
    TokenBucketModel,
    TokenBucketParams,
)
from repro.netmodel.base import LinkModel
from repro.simulator import Fabric
from repro.simulator.engine import rest_fabric


def depleted_bucket(replenish=1.0, capacity=600.0, threshold=50.0):
    model = TokenBucketModel(
        TokenBucketParams(
            peak_gbps=10.0,
            capped_gbps=1.0,
            replenish_gbps=replenish,
            capacity_gbit=capacity,
            initial_budget_gbit=0.0,
            resume_threshold_gbit=threshold,
        )
    )
    assert model.throttled
    return model


class TestTokenBucketRest:
    def test_analytic_refill_is_exact(self):
        model = depleted_bucket(replenish=1.0, capacity=600.0)
        model.rest(120.0)
        assert model.budget_gbit == pytest.approx(120.0, abs=1e-9)

    def test_rest_crosses_resume_threshold(self):
        model = depleted_bucket(replenish=1.0, threshold=50.0)
        model.rest(49.0)
        assert model.throttled
        model.rest(2.0)
        assert not model.throttled
        assert model.limit() == 10.0

    def test_rest_saturates_at_capacity(self):
        model = depleted_bucket(replenish=2.0, capacity=100.0)
        model.rest(1_000_000.0)
        assert model.budget_gbit == 100.0

    def test_rest_is_single_step_even_at_tiny_horizon(self):
        # Sitting just under the resume threshold the reported idle
        # horizon is microscopic; the analytic path must not sub-step.
        model = depleted_bucket(replenish=1.0, threshold=50.0)
        model.set_budget(50.0 - 1e-7)
        calls = 0
        original = model.advance

        def counting_advance(dt, rate):
            nonlocal calls
            calls += 1
            original(dt, rate)

        model.advance = counting_advance
        model.rest(3_600.0)
        assert calls == 1
        assert not model.throttled

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            depleted_bucket().rest(-1.0)


class _TinyHorizonModel(LinkModel):
    """Pathological shaper whose idle horizon is always microscopic."""

    def __init__(self):
        self.advance_calls = 0
        self.advanced_s = 0.0

    def limit(self):
        return 1.0

    def horizon(self, send_rate_gbps):
        return 1e-9

    def advance(self, dt, send_rate_gbps):
        self.advance_calls += 1
        self.advanced_s += dt

    def reset(self):
        self.advance_calls = 0
        self.advanced_s = 0.0


class TestGenericRestFallback:
    def test_bounded_step_count(self):
        model = _TinyHorizonModel()
        model.rest(3_600.0)
        assert model.advanced_s == pytest.approx(3_600.0, rel=1e-9)
        # The pre-fix behaviour was 3.6e9 microsecond steps; the floor
        # bounds the walk to ~10k.
        assert model.advance_calls <= 10_001

    def test_constant_rate_rest_is_noop(self):
        model = ConstantRateModel(10.0)
        model.rest(100.0)  # must simply terminate
        assert model.limit() == 10.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            _TinyHorizonModel().rest(-0.5)


class TestRestFabric:
    def test_rest_fabric_refills_and_invalidates(self):
        model = depleted_bucket(replenish=1.0, threshold=50.0)
        fabric = Fabric(
            egress_models=[model, ConstantRateModel(10.0)],
            ingress_caps_gbps=[10.0, 10.0],
        )
        flow = fabric.add_flow(0, 1, 1_000.0)
        fabric.compute_rates()
        assert flow.rate_gbps == pytest.approx(1.0)  # throttled ceiling
        rest_fabric(fabric, 120.0)
        assert model.budget_gbit == pytest.approx(120.0, abs=1e-9)
        # The ceiling changed while resting; the next horizon query must
        # recompute rates rather than reuse the stale assignment.
        fabric.horizon()
        assert flow.rate_gbps == pytest.approx(10.0)
