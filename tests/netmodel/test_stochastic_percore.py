"""Tests for the stochastic (HPCCloud) and per-core-QoS (GCE) models."""

import numpy as np
import pytest

from repro.netmodel import (
    Ar1QuantileModel,
    PerCoreQosModel,
    QuantileDistribution,
    UniformQuantileSamplingModel,
)

DIST = QuantileDistribution(
    probs=(0.01, 0.25, 0.50, 0.75, 0.99),
    values=(7.7, 8.9, 9.4, 9.8, 10.4),
)


def collect_limits(model, n, dt):
    values = []
    for _ in range(n):
        rate = model.limit()
        values.append(rate)
        model.advance(dt, rate)
    return np.asarray(values)


class TestUniformSampling:
    def test_limits_within_distribution_support(self):
        model = UniformQuantileSamplingModel(DIST, interval_s=5.0, seed=0)
        values = collect_limits(model, 500, 5.0)
        assert values.min() >= 7.7 - 1e-9
        assert values.max() <= 10.4 + 1e-9

    def test_resamples_at_interval(self):
        model = UniformQuantileSamplingModel(DIST, interval_s=5.0, seed=0)
        first = model.limit()
        model.advance(2.0, first)
        assert model.limit() == first  # same interval, same draw
        model.advance(3.0, first)
        # New interval: value redrawn (almost surely different).
        assert model.limit() != first

    def test_horizon_counts_down(self):
        model = UniformQuantileSamplingModel(DIST, interval_s=5.0, seed=0)
        assert model.horizon(1.0) == pytest.approx(5.0)
        model.advance(2.0, 1.0)
        assert model.horizon(1.0) == pytest.approx(3.0)

    def test_reset_reproduces_sequence(self):
        model = UniformQuantileSamplingModel(DIST, interval_s=5.0, seed=3)
        first = collect_limits(model, 20, 5.0)
        model.reset()
        second = collect_limits(model, 20, 5.0)
        assert first == pytest.approx(second)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            UniformQuantileSamplingModel(DIST, interval_s=0.0)


class TestAr1Model:
    def test_marginal_within_support(self):
        model = Ar1QuantileModel(DIST, interval_s=10.0, phi=0.6, seed=1)
        values = collect_limits(model, 2_000, 10.0)
        assert values.min() >= 7.7 - 1e-9
        assert values.max() <= 10.4 + 1e-9

    def test_autocorrelation_increases_with_phi(self):
        def lag1_autocorr(phi, seed=2):
            model = Ar1QuantileModel(DIST, interval_s=10.0, phi=phi, seed=seed)
            v = collect_limits(model, 3_000, 10.0)
            centered = v - v.mean()
            return float(
                np.dot(centered[:-1], centered[1:]) / np.dot(centered, centered)
            )

        assert lag1_autocorr(0.9) > lag1_autocorr(0.1) + 0.2

    def test_phi_validation(self):
        with pytest.raises(ValueError):
            Ar1QuantileModel(DIST, phi=1.0)
        with pytest.raises(ValueError):
            Ar1QuantileModel(DIST, phi=-0.1)

    def test_marginal_median_preserved(self):
        model = Ar1QuantileModel(DIST, interval_s=10.0, phi=0.5, seed=4)
        values = collect_limits(model, 5_000, 10.0)
        assert np.median(values) == pytest.approx(9.4, abs=0.2)


class TestPerCoreQos:
    def test_qos_scales_with_cores(self):
        for cores, qos in [(1, 2.0), (2, 4.0), (4, 8.0), (8, 16.0)]:
            model = PerCoreQosModel(cores=cores, seed=0)
            assert model.qos_gbps == qos

    def test_limit_never_exceeds_qos(self):
        model = PerCoreQosModel(cores=8, seed=1)
        values = collect_limits(model, 1_000, 2.5)
        assert values.max() <= 16.0

    def test_warm_stream_stable_cold_stream_variable(self):
        # Continuous sending -> warm efficiencies; bursty 5-30 access ->
        # cold efficiencies with a long lower tail (Figure 5).
        warm_model = PerCoreQosModel(cores=8, seed=2)
        warm = collect_limits(warm_model, 2_000, 2.5)
        # Drop the initial ramp before comparing.
        warm = warm[10:]

        cold_model = PerCoreQosModel(cores=8, seed=2)
        cold_samples = []
        for _ in range(500):
            # 5 s burst, 30 s rest.
            rates = []
            for _ in range(2):
                rate = cold_model.limit()
                rates.append(rate)
                cold_model.advance(2.5, rate)
            cold_samples.append(np.mean(rates))
            cold_model.advance(30.0, 0.0)
        cold = np.asarray(cold_samples)

        assert np.std(cold) > np.std(warm)
        assert np.percentile(cold, 1) < np.percentile(warm, 1)

    def test_idle_resets_stream_age(self):
        model = PerCoreQosModel(cores=4, ramp_s=4.0, idle_reset_s=15.0, seed=3)
        model.advance(10.0, 8.0)
        assert model.is_warm
        model.advance(20.0, 0.0)  # long idle: flow goes cold
        model.advance(0.5, 8.0)
        assert not model.is_warm

    def test_short_idle_keeps_stream_warm(self):
        model = PerCoreQosModel(cores=4, ramp_s=4.0, idle_reset_s=15.0, seed=4)
        model.advance(10.0, 8.0)
        model.advance(5.0, 0.0)  # idle shorter than the reset threshold
        model.advance(0.5, 8.0)
        assert model.is_warm

    def test_cold_resume_redraws_efficiency_immediately(self):
        # Regression: a burst resumed after an idle gap >= idle_reset_s
        # must sample the *cold* distribution at resume, not keep the
        # stale warm draw until the next interval boundary — otherwise
        # bursts shorter than interval_s never see the Figure 5 cold
        # tail.  Disjoint degenerate distributions make the draws
        # unambiguous: warm always 1.0, cold always 0.1.
        from repro.netmodel.percore import PerCoreQosModel as Model

        warm = QuantileDistribution(probs=(0.01, 0.99), values=(1.0, 1.0))
        cold = QuantileDistribution(probs=(0.01, 0.99), values=(0.1, 0.1))
        model = Model(
            cores=4,
            warm_efficiency=warm,
            cold_efficiency=cold,
            ramp_s=4.0,
            idle_reset_s=15.0,
            interval_s=2.5,
            seed=7,
        )
        # Warm the stream past the ramp and through interval redraws.
        model.advance(10.0, 8.0)
        assert model.is_warm
        assert model.limit() == pytest.approx(8.0 * 1.0)
        # Long idle: the flow is de-programmed.  During the idle the
        # clockwork keeps redrawing (still warm — the age only resets
        # on resume), so the stale value is a warm 1.0.
        model.advance(20.0, 0.0)
        # A short resumed burst (shorter than interval_s!) must see a
        # cold-tail efficiency immediately.
        model.advance(0.5, 8.0)
        assert not model.is_warm
        assert model.limit() == pytest.approx(8.0 * 0.1)

    def test_short_idle_resume_does_not_redraw(self):
        # The cold redraw must not fire for idles below the reset
        # threshold: the efficiency (and the RNG position) stay put.
        model = PerCoreQosModel(cores=4, ramp_s=4.0, idle_reset_s=15.0, seed=9)
        model.advance(10.0, 8.0)
        before = model.limit()
        model.advance(1.0, 0.0)  # brief idle, same resample interval
        model.advance(0.4, 8.0)
        assert model.limit() == before

    def test_validation(self):
        with pytest.raises(ValueError):
            PerCoreQosModel(cores=0)
        with pytest.raises(ValueError):
            PerCoreQosModel(cores=1, per_core_gbps=-1.0)
        with pytest.raises(ValueError):
            PerCoreQosModel(cores=1, interval_s=0.0)
