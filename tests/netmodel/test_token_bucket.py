"""Tests for the fluid token-bucket model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netmodel import TokenBucketModel, TokenBucketParams
from repro.netmodel.base import integrate_transfer


def c5_xlarge_params(**overrides):
    defaults = dict(
        peak_gbps=10.0,
        capped_gbps=1.0,
        replenish_gbps=1.0,
        capacity_gbit=5_400.0,
    )
    defaults.update(overrides)
    return TokenBucketParams(**defaults)


class TestParams:
    def test_time_to_empty_matches_paper(self):
        # c5.xlarge: ~10 minutes of full-speed transfer.
        params = c5_xlarge_params()
        assert params.time_to_empty_s == pytest.approx(600.0)

    def test_time_to_empty_infinite_when_replenish_covers_peak(self):
        params = c5_xlarge_params(replenish_gbps=10.0)
        assert math.isinf(params.time_to_empty_s)

    def test_with_budget(self):
        params = c5_xlarge_params().with_budget(100.0)
        assert params.initial_budget_gbit == 100.0
        assert params.time_to_empty_s == pytest.approx(100.0 / 9.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            c5_xlarge_params(peak_gbps=-1.0)
        with pytest.raises(ValueError):
            c5_xlarge_params(capped_gbps=20.0)
        with pytest.raises(ValueError):
            c5_xlarge_params(capacity_gbit=0.0)
        with pytest.raises(ValueError):
            c5_xlarge_params(replenish_gbps=-0.5)


class TestModel:
    def test_fresh_bucket_starts_at_peak(self):
        model = TokenBucketModel(c5_xlarge_params())
        assert model.limit() == 10.0
        assert not model.throttled

    def test_empties_at_the_analytic_time(self):
        model = TokenBucketModel(c5_xlarge_params())
        horizon = model.horizon(10.0)
        assert horizon == pytest.approx(600.0)
        model.advance(horizon, 10.0)
        assert model.throttled
        assert model.limit() == 1.0

    def test_capped_rate_keeps_bucket_empty(self):
        model = TokenBucketModel(c5_xlarge_params())
        model.advance(600.0, 10.0)
        assert model.throttled
        # replenish == capped rate: sending at the cap never refills.
        model.advance(1_000.0, 1.0)
        assert model.throttled

    def test_rest_refills_and_restores_peak(self):
        model = TokenBucketModel(c5_xlarge_params())
        model.advance(600.0, 10.0)
        assert model.throttled
        rest = model.time_to_full_s()
        assert rest == pytest.approx(5_400.0)
        model.advance(rest, 0.0)
        assert not model.throttled
        assert model.limit() == 10.0
        assert model.budget_gbit == pytest.approx(5_400.0)

    def test_hysteresis_resume_threshold(self):
        params = c5_xlarge_params(resume_threshold_gbit=50.0)
        model = TokenBucketModel(params)
        model.advance(600.0, 10.0)
        assert model.throttled
        # Refill just below the threshold: still throttled.
        model.advance(49.0, 0.0)
        assert model.throttled
        model.advance(2.0, 0.0)
        assert not model.throttled

    def test_set_budget(self):
        model = TokenBucketModel(c5_xlarge_params())
        model.set_budget(100.0)
        assert model.budget_gbit == 100.0
        model.set_budget(0.0)
        assert model.throttled
        with pytest.raises(ValueError):
            model.set_budget(-1.0)

    def test_set_budget_clamps_to_capacity(self):
        model = TokenBucketModel(c5_xlarge_params())
        model.set_budget(1e9)
        assert model.budget_gbit == 5_400.0

    def test_reset_restores_initial_budget(self):
        params = c5_xlarge_params().with_budget(250.0)
        model = TokenBucketModel(params)
        model.advance(60.0, 10.0)
        model.reset()
        assert model.budget_gbit == pytest.approx(250.0)

    def test_negative_dt_rejected(self):
        model = TokenBucketModel(c5_xlarge_params())
        with pytest.raises(ValueError):
            model.advance(-1.0, 1.0)

    def test_integration_full_speed_hour(self):
        # One hour at full speed: 600 s at 10 Gbps + 3000 s at 1 Gbps.
        model = TokenBucketModel(c5_xlarge_params())
        result = integrate_transfer(model, 3_600.0, offered_gbps=100.0)
        assert result.transferred_gbit == pytest.approx(600 * 10 + 3_000 * 1, rel=1e-6)

    def test_oscillation_with_replenish_above_cap(self):
        # Replenish slightly above the capped rate: once drained, the
        # bucket repeatedly crosses the resume threshold, producing the
        # Figure 18 straggler oscillation.
        params = c5_xlarge_params(
            capped_gbps=1.0,
            replenish_gbps=1.2,
            capacity_gbit=100.0,
            resume_threshold_gbit=2.0,
        )
        model = TokenBucketModel(params)
        model.set_budget(0.0)
        states = []
        for _ in range(2_000):
            rate = min(10.0, model.limit())
            step = min(max(model.horizon(rate), 1e-3), 5.0)
            model.advance(step, rate)
            states.append(model.throttled)
        assert any(states) and not all(states)


class TestPropertyBased:
    @given(
        peak=st.floats(min_value=1.0, max_value=100.0),
        capped_frac=st.floats(min_value=0.05, max_value=1.0),
        replenish_frac=st.floats(min_value=0.0, max_value=1.0),
        capacity=st.floats(min_value=1.0, max_value=1e5),
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=200.0),
            ),
            min_size=1,
            max_size=40,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_budget_always_within_bounds(
        self, peak, capped_frac, replenish_frac, capacity, steps
    ):
        params = TokenBucketParams(
            peak_gbps=peak,
            capped_gbps=peak * capped_frac,
            replenish_gbps=peak * replenish_frac,
            capacity_gbit=capacity,
        )
        model = TokenBucketModel(params)
        for dt, rate in steps:
            model.advance(dt, rate)
            assert 0.0 <= model.budget_gbit <= capacity + 1e-9

    @given(
        capacity=st.floats(min_value=10.0, max_value=1e4),
        offered=st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_horizon_is_exact_boundary(self, capacity, offered):
        params = TokenBucketParams(
            peak_gbps=10.0,
            capped_gbps=1.0,
            replenish_gbps=0.5,
            capacity_gbit=capacity,
        )
        model = TokenBucketModel(params)
        rate = min(offered, model.limit())
        h = model.horizon(rate)
        if math.isinf(h):
            return
        # Just before the horizon the limit is unchanged...
        before = TokenBucketModel(params)
        before.advance(h * 0.999, rate)
        assert before.limit() == model.limit()
        # ...and at/after it the state has flipped.
        after = TokenBucketModel(params)
        after.advance(h * 1.001 + 1e-9, rate)
        assert after.throttled

    @given(duration=st.floats(min_value=1.0, max_value=5_000.0))
    @settings(max_examples=50, deadline=None)
    def test_transfer_never_exceeds_budget_plus_replenish(self, duration):
        params = TokenBucketParams(
            peak_gbps=10.0,
            capped_gbps=1.0,
            replenish_gbps=1.0,
            capacity_gbit=1_000.0,
        )
        model = TokenBucketModel(params)
        result = integrate_transfer(model, duration, offered_gbps=1e6)
        # Conservation: cannot move more than initial budget plus
        # replenished tokens plus capped-rate allowance... the tight
        # bound is initial + replenish*duration when capped==replenish.
        upper = params.capacity_gbit + params.replenish_gbps * duration + 1e-6
        assert result.transferred_gbit <= upper
