"""Tests for quantile-parameterized distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netmodel import QuantileDistribution
from repro.trace import BoxSummary


@pytest.fixture
def dist():
    return QuantileDistribution(
        probs=(0.01, 0.25, 0.50, 0.75, 0.99),
        values=(1.0, 3.0, 5.0, 7.0, 9.0),
    )


class TestConstruction:
    def test_from_box(self):
        box = BoxSummary(p01=1, p25=3, p50=5, p75=7, p99=9, p999=9.5)
        dist = QuantileDistribution.from_box(box)
        assert dist.median == 5.0
        # from_box anchors the paper's five probabilities only (the
        # sampling inversion must not change underneath golden pins);
        # box_summary round-trips with the tail clipped to p99.
        assert dist.probs == (0.01, 0.25, 0.5, 0.75, 0.99)
        assert dist.box_summary().p999 == 9.0

    def test_from_mapping_sorts(self):
        dist = QuantileDistribution.from_mapping({0.75: 7.0, 0.25: 3.0, 0.5: 5.0})
        assert dist.probs == (0.25, 0.5, 0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileDistribution(probs=(0.5,), values=(1.0,))
        with pytest.raises(ValueError):
            QuantileDistribution(probs=(0.5, 0.4), values=(1.0, 2.0))
        with pytest.raises(ValueError):
            QuantileDistribution(probs=(0.4, 0.5), values=(2.0, 1.0))
        with pytest.raises(ValueError):
            QuantileDistribution(probs=(0.0, 0.5), values=(1.0, 2.0))
        with pytest.raises(ValueError):
            QuantileDistribution(probs=(0.4,), values=(1.0, 2.0))


class TestQuantiles:
    def test_interpolation(self, dist):
        assert dist.quantile(0.5) == 5.0
        assert dist.quantile(0.375) == pytest.approx(4.0)

    def test_clipping_outside_range(self, dist):
        assert dist.quantile(0.001) == 1.0
        assert dist.quantile(0.9999) == 9.0

    def test_vector_input(self, dist):
        out = dist.quantile([0.25, 0.75])
        assert out == pytest.approx([3.0, 7.0])

    def test_box_roundtrip(self, dist):
        box = dist.box_summary()
        assert box.p50 == 5.0
        assert box.p01 == 1.0
        assert box.p99 == 9.0


class TestSampling:
    def test_samples_within_support(self, dist):
        rng = np.random.default_rng(0)
        samples = dist.sample(rng, size=10_000)
        assert samples.min() >= 1.0
        assert samples.max() <= 9.0

    def test_scalar_sample(self, dist):
        rng = np.random.default_rng(0)
        value = dist.sample(rng)
        assert isinstance(value, float)

    def test_sample_median_near_declared_median(self, dist):
        rng = np.random.default_rng(1)
        samples = dist.sample(rng, size=50_000)
        assert np.median(samples) == pytest.approx(5.0, abs=0.15)

    def test_deterministic_with_seed(self, dist):
        a = dist.sample(np.random.default_rng(7), size=10)
        b = dist.sample(np.random.default_rng(7), size=10)
        assert a == pytest.approx(b)


class TestTransforms:
    def test_mean_estimate(self, dist):
        # Symmetric quantiles -> mean approx median.
        assert dist.mean_estimate() == pytest.approx(5.0, abs=0.05)

    def test_scale(self, dist):
        doubled = dist.scale(2.0)
        assert doubled.median == 10.0
        with pytest.raises(ValueError):
            dist.scale(0.0)

    @given(factor=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_scale_commutes_with_quantile(self, factor):
        base = QuantileDistribution(
            probs=(0.01, 0.25, 0.50, 0.75, 0.99),
            values=(1.0, 3.0, 5.0, 7.0, 9.0),
        )
        scaled = base.scale(factor)
        for p in (0.1, 0.5, 0.9):
            assert scaled.quantile(p) == pytest.approx(base.quantile(p) * factor)
