"""Tests for the virtual NIC and latency models (Figures 7, 8, 12)."""

import numpy as np
import pytest

from repro.netmodel import Ec2LatencyModel, GceLatencyModel, VirtualNic
from repro.netmodel.nic import EC2_NIC, GCE_NIC


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestNicBehavior:
    def test_ec2_packets_cap_at_mtu(self):
        assert EC2_NIC.packet_bytes(4_096) == 4_096
        assert EC2_NIC.packet_bytes(131_072) == 9_000

    def test_gce_packets_cap_at_tso_max(self):
        assert GCE_NIC.packet_bytes(4_096) == 4_096
        assert GCE_NIC.packet_bytes(131_072) == 65_536

    def test_invalid_write_size(self):
        with pytest.raises(ValueError):
            EC2_NIC.packet_bytes(0)


class TestVirtualNicLatency:
    def test_gce_9k_writes_match_paper_rtt(self):
        # "when we limited our benchmarks to writes of 9K ... an
        # average RTT of about 2.3ms"
        nic = VirtualNic(GCE_NIC)
        assert nic.perceived_rtt_ms(9_000) == pytest.approx(2.3, abs=0.5)

    def test_gce_large_writes_reach_10ms(self):
        # "When the benchmark used its default write() size of 128K ...
        # latencies as high as 10ms"
        nic = VirtualNic(GCE_NIC)
        assert nic.perceived_rtt_ms(131_072) == pytest.approx(8.0, abs=2.5)

    def test_ec2_latency_flat_beyond_mtu(self):
        nic = VirtualNic(EC2_NIC)
        assert nic.perceived_rtt_ms(9_000) == nic.perceived_rtt_ms(131_072)

    def test_ec2_latency_far_below_gce_for_large_writes(self):
        ec2 = VirtualNic(EC2_NIC).perceived_rtt_ms(131_072)
        gce = VirtualNic(GCE_NIC).perceived_rtt_ms(131_072)
        assert gce > 5 * ec2

    def test_latency_monotone_in_write_size(self):
        nic = VirtualNic(GCE_NIC)
        sizes = [1_024, 4_096, 16_384, 65_536]
        rtts = [nic.perceived_rtt_ms(s) for s in sizes]
        assert rtts == sorted(rtts)


class TestVirtualNicRetransmissions:
    def test_gce_9k_near_zero_retrans(self):
        nic = VirtualNic(GCE_NIC)
        assert nic.retransmission_rate(9_000) < 1e-3

    def test_gce_128k_near_two_percent(self):
        # Figure 9: ~2% retransmissions per experiment on GCE.
        nic = VirtualNic(GCE_NIC)
        assert nic.retransmission_rate(131_072) == pytest.approx(0.03, abs=0.015)

    def test_ec2_always_negligible(self):
        nic = VirtualNic(EC2_NIC)
        for size in (1_024, 9_000, 131_072, 262_144):
            assert nic.retransmission_rate(size) < 1e-4

    def test_rate_monotone_in_write_size(self):
        nic = VirtualNic(GCE_NIC)
        sizes = [9_000, 16_384, 32_768, 65_536, 131_072]
        rates = [nic.retransmission_rate(s) for s in sizes]
        assert rates == sorted(rates)


class TestVirtualNicBandwidth:
    def test_tiny_writes_are_overhead_bound(self):
        nic = VirtualNic(EC2_NIC)
        assert nic.achieved_gbps(1_024) < nic.achieved_gbps(65_536)

    def test_large_writes_approach_line_rate(self):
        nic = VirtualNic(EC2_NIC)
        assert nic.achieved_gbps(262_144) > 0.8 * EC2_NIC.line_rate_gbps

    def test_sweep_covers_requested_sizes(self, rng):
        nic = VirtualNic(GCE_NIC)
        effects = nic.sweep([4_096, 65_536], rng=rng)
        assert [e.write_size_bytes for e in effects] == [4_096, 65_536]
        assert effects[0].packet_bytes == 4_096
        assert effects[1].retransmission_rate > effects[0].retransmission_rate

    def test_write_size_effect_p99_above_mean(self, rng):
        nic = VirtualNic(GCE_NIC)
        effect = nic.write_size_effect(65_536, rng=rng)
        assert effect.p99_rtt_ms > effect.mean_rtt_ms


class TestLatencyModels:
    def test_ec2_normal_regime_submillisecond(self, rng):
        model = Ec2LatencyModel(throttled=False)
        rtts = model.sample_rtts_ms(50_000, rng)
        assert np.median(rtts) < 0.5
        assert rtts.max() <= 2.5

    def test_ec2_throttled_two_orders_of_magnitude(self, rng):
        normal = Ec2LatencyModel(throttled=False)
        throttled = Ec2LatencyModel(throttled=True)
        m_normal = np.median(normal.sample_rtts_ms(20_000, rng))
        m_throttled = np.median(throttled.sample_rtts_ms(20_000, rng))
        assert m_throttled > 30 * m_normal

    def test_gce_millisecond_scale_capped(self, rng):
        model = GceLatencyModel()
        rtts = model.sample_rtts_ms(50_000, rng)
        assert 1.0 < np.median(rtts) < 4.0
        assert rtts.max() <= 10.0

    def test_sample_count_validation(self, rng):
        with pytest.raises(ValueError):
            Ec2LatencyModel().sample_rtts_ms(-1, rng)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GceLatencyModel(median_ms=12.0, cap_ms=10.0)
        with pytest.raises(ValueError):
            Ec2LatencyModel(base_median_ms=0.0)
