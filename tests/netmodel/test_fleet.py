"""Fleet-vs-scalar identity: the contract the fabric rework rests on.

Every :class:`~repro.netmodel.fleet.LinkModelFleet` implementation
must produce *bit-identical* results to driving the same scalar models
through the same operation sequence — limits, horizons, advances,
rests, budgets, and (for resampling models) every subsequent RNG draw.
The hypothesis tests drive random dt/rate sequences through a fleet
and an independent scalar twin set and compare exactly (``==``, no
tolerances).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netmodel import (
    Ar1QuantileModel,
    ConstantRateModel,
    PerCoreQosModel,
    QuantileDistribution,
    TokenBucketModel,
    TokenBucketParams,
    UniformQuantileSamplingModel,
)
from repro.netmodel.fleet import (
    ConstantRateFleet,
    LinkModelFleet,
    PerCoreQosFleet,
    ResamplingFleet,
    ScalarFleetAdapter,
    TokenBucketFleet,
    build_fleet,
)

_DIST = QuantileDistribution(
    probs=(0.01, 0.25, 0.5, 0.75, 0.99),
    values=(0.4, 2.0, 4.5, 7.0, 9.6),
)

#: Heterogeneous token-bucket incarnations (Figure 11: constants vary
#: across instances), including an oscillating one.
_TB_PARAMS = [
    TokenBucketParams(10.0, 1.0, 0.95, 600.0),
    TokenBucketParams(10.0, 1.0, 1.05, 40.0, resume_threshold_gbit=1.0),
    TokenBucketParams(5.0, 0.5, 0.45, 80.0, initial_budget_gbit=2.0),
    TokenBucketParams(10.0, 1.0, 0.95, 600.0, initial_budget_gbit=0.0),
]


def _tb_pair():
    """(fleet over fresh models, independent scalar twins)."""
    fleet_models = [TokenBucketModel(p) for p in _TB_PARAMS]
    scalars = [TokenBucketModel(p) for p in _TB_PARAMS]
    return TokenBucketFleet(fleet_models), scalars


def _resampling_pair():
    """Mixed Uniform/AR(1) fleet with per-node seeds, plus twins."""

    def build():
        return [
            UniformQuantileSamplingModel(_DIST, interval_s=5.0, seed=11),
            UniformQuantileSamplingModel(_DIST, interval_s=3.7, seed=12),
            Ar1QuantileModel(_DIST, interval_s=10.0, phi=0.7, seed=13),
            Ar1QuantileModel(_DIST, interval_s=2.5, phi=0.3, seed=14),
        ]

    return ResamplingFleet(build()), build()


def _assert_state_equal(fleet: LinkModelFleet, scalars) -> None:
    assert fleet.limits().tolist() == [m.limit() for m in scalars]
    budgets = fleet.budgets()
    if budgets is not None:
        assert budgets.tolist() == [m.budget_gbit for m in scalars]


# Operation sequences: (op, value) with op in advance/rest/horizon.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["advance", "rest", "horizon"]),
        st.floats(min_value=0.0, max_value=400.0),
        st.floats(min_value=0.0, max_value=12.0),
    ),
    min_size=1,
    max_size=30,
)


class TestTokenBucketFleetIdentity:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_random_sequences_bit_exact(self, ops):
        fleet, scalars = _tb_pair()
        n = fleet.n
        for op, a, b in ops:
            if op == "advance":
                rates = np.array([b * ((i % 3) + 1) / 2 for i in range(n)])
                fleet.advance(a, rates)
                for model, rate in zip(scalars, rates.tolist()):
                    model.advance(a, rate)
            elif op == "rest":
                fleet.rest(a)
                for model in scalars:
                    model.rest(a)
            else:
                rates = np.array([b] * n)
                got = fleet.horizons(rates).tolist()
                want = [m.horizon(b) for m in scalars]
                assert got == want
            _assert_state_equal(fleet, scalars)
            assert fleet._throttled.tolist() == [m.throttled for m in scalars]

    def test_scalar_views_read_and_write_through(self):
        fleet, scalars = _tb_pair()
        rates = np.array([10.0, 10.0, 5.0, 10.0])
        fleet.advance(30.0, rates)
        for model, rate in zip(scalars, rates.tolist()):
            model.advance(30.0, rate)
        # Adopted handles observe fleet state...
        for adopted, twin in zip(fleet.models, scalars):
            assert adopted.budget_gbit == twin.budget_gbit
            assert adopted.throttled == twin.throttled
            assert adopted.limit() == twin.limit()
        # ...and writes through a handle (set_budget / scalar advance)
        # update the fleet arrays coherently.
        fleet.models[0].set_budget(3.25)
        assert fleet.budgets()[0] == 3.25
        fleet.models[1].advance(1.0, 0.0)
        scalars[1].advance(1.0, 0.0)
        assert fleet.budgets()[1] == scalars[1].budget_gbit

    def test_set_budget_keeps_flip_threshold_coherent(self):
        # Deplete node 0, then force its budget above the resume
        # threshold through the scalar view: the next advance must not
        # spuriously re-throttle (regression guard for the cached
        # threshold).
        fleet, scalars = _tb_pair()
        zeros = np.zeros(fleet.n)
        drain = np.array([10.0, 0.0, 0.0, 0.0])
        fleet.advance(100.0, drain)
        for model, rate in zip(scalars, drain.tolist()):
            model.advance(100.0, rate)
        assert fleet.models[0].throttled == scalars[0].throttled
        fleet.models[0].set_budget(500.0)
        scalars[0].set_budget(500.0)
        fleet.advance(0.5, zeros)
        for model in scalars:
            model.advance(0.5, 0.0)
        assert fleet.models[0].throttled == scalars[0].throttled
        _assert_state_equal(fleet, scalars)

    def test_reset_restores_pristine_state(self):
        fleet, scalars = _tb_pair()
        fleet.advance(200.0, np.full(fleet.n, 10.0))
        fleet.reset()
        for model in scalars:
            model.advance(200.0, 10.0)
            model.reset()
        _assert_state_equal(fleet, scalars)
        assert fleet._throttled.tolist() == [m.throttled for m in scalars]


class TestConstantRateFleetIdentity:
    def test_matches_scalar(self):
        rates = [10.0, 25.0, 1.5]
        fleet = ConstantRateFleet([ConstantRateModel(r) for r in rates])
        scalars = [ConstantRateModel(r) for r in rates]
        _assert_state_equal(fleet, scalars)
        send = np.array([3.0, 0.0, 9.0])
        assert fleet.horizons(send).tolist() == [
            m.horizon(s) for m, s in zip(scalars, send.tolist())
        ]
        assert fleet.advance(5.0, send) is False
        fleet.rest(10.0)
        fleet.reset()
        _assert_state_equal(fleet, scalars)
        assert fleet.budgets() is None


class TestResamplingFleetIdentity:
    @settings(max_examples=40, deadline=None)
    @given(
        dts=st.lists(
            st.floats(min_value=0.0, max_value=60.0), min_size=1, max_size=25
        )
    )
    def test_advance_sequences_bit_exact(self, dts):
        fleet, scalars = _resampling_pair()
        zeros = np.zeros(fleet.n)
        for dt in dts:
            fleet.advance(dt, zeros)
            for model in scalars:
                model.advance(dt, 0.0)
            assert fleet.limits().tolist() == [m.limit() for m in scalars]
            assert fleet.horizons(zeros).tolist() == [
                m.horizon(0.0) for m in scalars
            ]
        # The RNG streams stayed aligned: the *next* draws agree too.
        fleet.advance(1000.0, zeros)
        for model in scalars:
            model.advance(1000.0, 0.0)
        assert fleet.limits().tolist() == [m.limit() for m in scalars]

    @settings(max_examples=40, deadline=None)
    @given(
        rests=st.lists(
            st.floats(min_value=0.0, max_value=200.0), min_size=1, max_size=8
        )
    )
    def test_rest_matches_scalar_reference_loop(self, rests):
        # Fleet rest batches every crossed boundary's draw into one RNG
        # call per node; the scalar generic rest steps one draw at a
        # time.  Clockwork residues, ceilings, and RNG states must all
        # come out identical.
        fleet, scalars = _resampling_pair()
        zeros = np.zeros(fleet.n)
        for duration in rests:
            fleet.rest(duration)
            for model in scalars:
                model.rest(duration)
            assert fleet.limits().tolist() == [m.limit() for m in scalars]
            assert fleet._elapsed.tolist() == [
                m._elapsed_in_interval for m in scalars
            ]
        fleet.advance(500.0, zeros)
        for model in scalars:
            model.advance(500.0, 0.0)
        assert fleet.limits().tolist() == [m.limit() for m in scalars]

    def test_draw_batch_matches_scalar_draw_sequence(self):
        for make in (
            lambda seed: UniformQuantileSamplingModel(_DIST, seed=seed),
            lambda seed: Ar1QuantileModel(_DIST, seed=seed),
        ):
            batched, stepped = make(99), make(99)
            for k in (1, 3, 7):
                got = batched._draw_batch(k)
                want = None
                for _ in range(k):
                    want = stepped._draw()
                assert got == want

    def test_reset_restores_seeded_sequence(self):
        fleet, scalars = _resampling_pair()
        fleet.advance(123.0, np.zeros(fleet.n))
        fleet.reset()
        assert fleet.limits().tolist() == [m.limit() for m in scalars]


def _percore_pair():
    """Heterogeneous per-core QoS fleet plus independent scalar twins.

    Covers the clockwork corners: an always-warm link (``ramp_s=0``),
    a short idle-reset, a sub-second resample interval, and distinct
    per-node seeds so RNG-stream divergence is detectable.
    """

    def build():
        return [
            PerCoreQosModel(cores=4, seed=21),
            PerCoreQosModel(cores=8, ramp_s=0.0, seed=22),
            PerCoreQosModel(cores=2, idle_reset_s=3.0, interval_s=0.8, seed=23),
            PerCoreQosModel(cores=1, ramp_s=10.0, interval_s=7.3, seed=24),
        ]

    return PerCoreQosFleet(build()), build()


class TestPerCoreQosFleetIdentity:
    # dt spans idle-reset (15 s default) and interval (2.5 s default)
    # boundaries; the rate slot toggles sending per link, so sequences
    # hit idle-gap resumes, ramp crossings, and multi-interval steps.
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=40.0),
                st.integers(min_value=0, max_value=15),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_random_sequences_bit_exact(self, ops):
        fleet, scalars = _percore_pair()
        n = fleet.n
        for dt, pattern in ops:
            rates = np.array(
                [3.0 if (pattern >> i) & 1 else 0.0 for i in range(n)]
            )
            fleet_changed = fleet.advance(dt, rates)
            scalar_changed = False
            for model, rate in zip(scalars, rates.tolist()):
                before = model.limit()
                model.advance(dt, rate)
                scalar_changed = scalar_changed or model.limit() != before
            assert fleet_changed == scalar_changed
            assert fleet.limits().tolist() == [m.limit() for m in scalars]
            assert fleet.horizons(rates).tolist() == [
                m.horizon(r) for m, r in zip(scalars, rates.tolist())
            ]
            assert fleet._age.tolist() == [m._stream_age for m in scalars]
            assert fleet._idle.tolist() == [m._idle_time for m in scalars]
            assert fleet._elapsed.tolist() == [
                m._elapsed_in_interval for m in scalars
            ]
        # The RNG streams stayed aligned: future draws agree too.
        fleet.advance(100.0, np.full(n, 2.0))
        for model in scalars:
            model.advance(100.0, 2.0)
        assert fleet.limits().tolist() == [m.limit() for m in scalars]

    def test_idle_resume_redraws_cold_tail(self):
        # A resumed-after-idle link must redraw (cold unless ramp is
        # zero) in the same RNG position as the scalar model.
        fleet, scalars = _percore_pair()
        n = fleet.n
        send = np.full(n, 5.0)
        idle = np.zeros(n)
        for dt, rates in ((1.0, send), (20.0, idle), (0.5, send)):
            fleet.advance(dt, rates)
            for model, rate in zip(scalars, rates.tolist()):
                model.advance(dt, rate)
        assert fleet.limits().tolist() == [m.limit() for m in scalars]
        assert [m.is_warm for m in fleet.models] == [
            m.is_warm for m in scalars
        ]

    @settings(max_examples=20, deadline=None)
    @given(
        rests=st.lists(
            st.floats(min_value=0.0, max_value=60.0), min_size=1, max_size=5
        )
    )
    def test_rest_matches_scalar_reference_loop(self, rests):
        fleet, scalars = _percore_pair()
        for duration in rests:
            fleet.rest(duration)
            for model in scalars:
                model.rest(duration)
            assert fleet.limits().tolist() == [m.limit() for m in scalars]
            assert fleet._elapsed.tolist() == [
                m._elapsed_in_interval for m in scalars
            ]

    def test_scalar_views_read_and_write_through(self):
        fleet, scalars = _percore_pair()
        rates = np.full(fleet.n, 4.0)
        fleet.advance(6.0, rates)
        for model in scalars:
            model.advance(6.0, 4.0)
        for adopted, twin in zip(fleet.models, scalars):
            assert adopted.limit() == twin.limit()
            assert adopted._stream_age == twin._stream_age
            assert adopted._elapsed_in_interval == twin._elapsed_in_interval
        # Scalar advance through an adopted handle updates fleet state.
        fleet.models[0].advance(1.0, 0.0)
        scalars[0].advance(1.0, 0.0)
        assert fleet._idle[0] == scalars[0]._idle_time

    def test_reset_restores_seeded_sequence(self):
        fleet, scalars = _percore_pair()
        fleet.advance(37.0, np.full(fleet.n, 1.0))
        fleet.reset()
        assert fleet.limits().tolist() == [m.limit() for m in scalars]
        assert fleet.budgets() is None

    def test_transition_hook_reports_net_changes(self):
        fleet, _ = _percore_pair()
        events = []
        fleet.transition_hook = lambda idx, limits: events.append(
            (idx.tolist(), limits.tolist())
        )
        # Cross several interval boundaries: every link redraws.
        changed = fleet.advance(30.0, np.full(fleet.n, 2.0))
        if changed:
            indices, limits = events[-1]
            assert indices == sorted(indices)
            assert limits == fleet.limits().tolist()
        else:
            assert not events


class TestBuildFleet:
    def test_homogeneous_lists_get_vectorized_fleets(self):
        tb = [TokenBucketModel(p) for p in _TB_PARAMS]
        assert isinstance(build_fleet(tb), TokenBucketFleet)
        cr = [ConstantRateModel(10.0) for _ in range(3)]
        assert isinstance(build_fleet(cr), ConstantRateFleet)
        rs = [
            UniformQuantileSamplingModel(_DIST, seed=1),
            Ar1QuantileModel(_DIST, seed=2),
        ]
        assert isinstance(build_fleet(rs), ResamplingFleet)
        pc = [PerCoreQosModel(cores=4, seed=s) for s in range(3)]
        assert isinstance(build_fleet(pc), PerCoreQosFleet)

    def test_mixed_or_adopted_models_fall_back_to_adapter(self):
        mixed = [TokenBucketModel(_TB_PARAMS[0]), ConstantRateModel(10.0)]
        assert isinstance(build_fleet(mixed), ScalarFleetAdapter)
        adopted = [TokenBucketModel(p) for p in _TB_PARAMS]
        TokenBucketFleet(adopted)
        assert isinstance(build_fleet(adopted), ScalarFleetAdapter)
        assert isinstance(build_fleet([]), ScalarFleetAdapter)
        assert isinstance(
            build_fleet(adopted, prefer_scalar=True), ScalarFleetAdapter
        )

    def test_double_adoption_raises(self):
        models = [TokenBucketModel(p) for p in _TB_PARAMS]
        TokenBucketFleet(models)
        with pytest.raises(ValueError):
            TokenBucketFleet(models)

    def test_adapter_budgets_mirror_hasattr_contract(self):
        adapter = ScalarFleetAdapter(
            [TokenBucketModel(_TB_PARAMS[0]), ConstantRateModel(10.0)]
        )
        assert adapter.budgets() is None
        tb_only = ScalarFleetAdapter([TokenBucketModel(_TB_PARAMS[0])])
        assert tb_only.budgets() is not None

    def test_negative_dt_rejected_everywhere(self):
        for fleet in (
            TokenBucketFleet([TokenBucketModel(_TB_PARAMS[0])]),
            ConstantRateFleet([ConstantRateModel(1.0)]),
            ResamplingFleet([UniformQuantileSamplingModel(_DIST, seed=0)]),
            PerCoreQosFleet([PerCoreQosModel(cores=2, seed=0)]),
            ScalarFleetAdapter([ConstantRateModel(1.0)]),
        ):
            with pytest.raises(ValueError):
                fleet.advance(-1.0, np.zeros(1))
            with pytest.raises(ValueError):
                fleet.rest(-1.0)


class TestAdapterIdentity:
    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS)
    def test_adapter_equals_direct_scalar_calls(self, ops):
        fleet = ScalarFleetAdapter([TokenBucketModel(p) for p in _TB_PARAMS])
        scalars = [TokenBucketModel(p) for p in _TB_PARAMS]
        for op, a, b in ops:
            rates = np.full(fleet.n, b)
            if op == "advance":
                fleet.advance(a, rates)
                for model in scalars:
                    model.advance(a, b)
            elif op == "rest":
                fleet.rest(a)
                for model in scalars:
                    model.rest(a)
            else:
                assert fleet.horizons(rates).tolist() == [
                    m.horizon(b) for m in scalars
                ]
            _assert_state_equal(fleet, scalars)
