"""Tests for the burstable-CPU credit bucket."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netmodel import CpuBucketParams, CpuTokenBucket
from repro.netmodel.cpu_bucket import T2_MEDIUM_LIKE


class TestParams:
    def test_burst_seconds(self):
        params = CpuBucketParams(
            baseline_fraction=0.2, initial_credits=360.0, max_credits=1_728.0
        )
        # Credits burn at 0.8 core while flat out: 360 / 0.8 = 450 s.
        assert params.burst_seconds == pytest.approx(450.0)

    def test_full_baseline_never_exhausts(self):
        params = CpuBucketParams(
            baseline_fraction=1.0, initial_credits=10.0, max_credits=10.0
        )
        assert math.isinf(params.burst_seconds)

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuBucketParams(baseline_fraction=0.0, initial_credits=1.0, max_credits=1.0)
        with pytest.raises(ValueError):
            CpuBucketParams(baseline_fraction=0.2, initial_credits=-1.0, max_credits=1.0)
        with pytest.raises(ValueError):
            CpuBucketParams(baseline_fraction=0.2, initial_credits=5.0, max_credits=1.0)


class TestBucket:
    def test_fresh_instance_runs_full_speed(self):
        bucket = CpuTokenBucket(T2_MEDIUM_LIKE)
        assert bucket.speed_factor() == 1.0

    def test_exhaustion_drops_to_baseline(self):
        bucket = CpuTokenBucket(T2_MEDIUM_LIKE)
        bucket.advance(T2_MEDIUM_LIKE.burst_seconds + 1.0, 1.0)
        assert bucket.throttled
        assert bucket.speed_factor() == pytest.approx(0.2)

    def test_idle_restores_credits(self):
        bucket = CpuTokenBucket(T2_MEDIUM_LIKE)
        bucket.advance(T2_MEDIUM_LIKE.burst_seconds + 1.0, 1.0)
        bucket.advance(100.0, 0.0)  # accrue at baseline 0.2 -> 20 credits
        assert not bucket.throttled
        assert bucket.credits == pytest.approx(20.0, abs=1.0)

    def test_credits_capped_at_maximum(self):
        bucket = CpuTokenBucket(T2_MEDIUM_LIKE)
        bucket.advance(1e6, 0.0)
        assert bucket.credits == T2_MEDIUM_LIKE.max_credits

    def test_run_at_full_speed_closed_form(self):
        # 600 core-seconds of work on a fresh t2-medium-like bucket:
        # 450 s burst covers 450 core-s; remaining 150 core-s at 0.2
        # cores takes 750 s -> 1200 s total.
        bucket = CpuTokenBucket(T2_MEDIUM_LIKE)
        elapsed = bucket.run_at_full_speed(600.0)
        assert elapsed == pytest.approx(1_200.0, rel=0.01)

    def test_small_work_finishes_at_full_speed(self):
        bucket = CpuTokenBucket(T2_MEDIUM_LIKE)
        assert bucket.run_at_full_speed(100.0) == pytest.approx(100.0, rel=0.01)

    def test_reset(self):
        bucket = CpuTokenBucket(T2_MEDIUM_LIKE)
        bucket.advance(1_000.0, 1.0)
        bucket.reset()
        assert bucket.credits == T2_MEDIUM_LIKE.initial_credits
        assert not bucket.throttled

    def test_validation(self):
        bucket = CpuTokenBucket(T2_MEDIUM_LIKE)
        with pytest.raises(ValueError):
            bucket.advance(-1.0, 0.5)
        with pytest.raises(ValueError):
            bucket.advance(1.0, 1.5)
        with pytest.raises(ValueError):
            bucket.horizon(2.0)
        with pytest.raises(ValueError):
            bucket.run_at_full_speed(-1.0)

    @given(
        baseline=st.floats(min_value=0.05, max_value=0.95),
        credits=st.floats(min_value=1.0, max_value=1_000.0),
        work=st.floats(min_value=0.1, max_value=5_000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_elapsed_bounded_by_extremes(self, baseline, credits, work):
        """Wall-clock always sits between all-burst and all-baseline."""
        params = CpuBucketParams(
            baseline_fraction=baseline,
            initial_credits=credits,
            max_credits=credits * 2,
        )
        elapsed = CpuTokenBucket(params).run_at_full_speed(work)
        assert work - 1e-6 <= elapsed <= work / baseline + 1e-6

    @given(
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_credits_always_in_bounds(self, steps):
        bucket = CpuTokenBucket(T2_MEDIUM_LIKE)
        for dt, usage in steps:
            bucket.advance(dt, usage)
            assert 0.0 <= bucket.credits <= T2_MEDIUM_LIKE.max_credits
