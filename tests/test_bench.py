"""Tests for the hot-path benchmark suite and its results ledger."""

import json

import pytest

from repro.bench import (
    bench_shaper_fleet_vs_scalar,
    bench_stream,
    bench_waterfill,
    check_results,
    format_table,
    load_results,
    record_results,
)
from repro.cli import main


class TestBenchmarks:
    def test_waterfill_microbench_reports_checksum(self):
        result = bench_waterfill(n_flows=300, n_nodes=8, rounds=1)
        assert result["n_flows"] == 300
        assert result["wall_s"] >= 0
        assert result["checksum"] > 0

    def test_waterfill_checksum_is_deterministic(self):
        a = bench_waterfill(n_flows=200, n_nodes=8, rounds=1)
        b = bench_waterfill(n_flows=200, n_nodes=8, rounds=1)
        assert a["checksum"] == b["checksum"]

    def test_stream_bench_small(self):
        result = bench_stream(n_nodes=4, n_jobs=2, data_scale=0.05)
        assert result["checksum"] > 0
        assert result["makespan_s"] > 0
        assert result["samples"] > 0

    def test_stream_scalar_fleet_path_is_bit_exact(self):
        fleet = bench_stream(n_nodes=4, n_jobs=2, data_scale=0.05)
        scalar = bench_stream(
            n_nodes=4, n_jobs=2, data_scale=0.05, scalar_fleet=True
        )
        assert scalar["checksum"] == fleet["checksum"]
        assert scalar["n_steps"] == fleet["n_steps"]
        assert scalar["makespan_s"] == fleet["makespan_s"]

    def test_shaper_case_compares_paths_bit_exactly(self):
        result = bench_shaper_fleet_vs_scalar(n_nodes=16, duration_s=60.0)
        assert result["checksum"] > 0
        assert result["n_steps"] > 0
        assert result["fleet_speedup"] > 0
        assert "scalar_wall_s" in result


class TestLedger:
    def test_missing_ledger_is_empty(self, tmp_path):
        ledger = load_results(tmp_path / "nope.json")
        assert ledger["baseline"] is None
        assert "(no benchmark results recorded)" in format_table(ledger)

    def test_record_and_speedup_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        base = {"x": {"wall_s": 2.0, "checksum": 42.0}}
        cur = {"x": {"wall_s": 0.5, "checksum": 42.0}}
        record_results(base, path=path, label="old", as_baseline=True)
        ledger = record_results(cur, path=path, label="new")
        assert ledger["speedup"]["x"] == pytest.approx(4.0)
        reloaded = json.loads(path.read_text())
        assert reloaded["baseline"]["label"] == "old"
        assert reloaded["current"]["label"] == "new"
        table = format_table(reloaded)
        assert "4.00x" in table

    def test_checksum_mismatch_voids_speedup(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        record_results(
            {"x": {"wall_s": 2.0, "checksum": 1.0}}, path=path, as_baseline=True
        )
        ledger = record_results({"x": {"wall_s": 0.5, "checksum": 2.0}}, path=path)
        assert "x" not in ledger["speedup"]

    def test_recording_current_never_touches_baseline(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        record_results(
            {"x": {"wall_s": 2.0, "checksum": 1.0}}, path=path, as_baseline=True
        )
        record_results({"x": {"wall_s": 1.0, "checksum": 1.0}}, path=path)
        assert load_results(path)["baseline"]["results"]["x"]["wall_s"] == 2.0

    def test_workload_param_mismatch_voids_speedup(self, tmp_path):
        # A 10k-flow baseline against a 1k-flow current is a units
        # error, not a speedup — even when the checksum happens to
        # survive the relabelling.
        path = tmp_path / "BENCH_engine.json"
        record_results(
            {"x": {"wall_s": 2.0, "checksum": 1.0, "n_flows": 10_000}},
            path=path,
            as_baseline=True,
        )
        ledger = record_results(
            {"x": {"wall_s": 0.2, "checksum": 1.0, "n_flows": 1_000}},
            path=path,
        )
        assert "x" not in ledger["speedup"]


class TestCheckGate:
    _REF = {"label": "ref", "results": {"x": {"wall_s": 1.0, "checksum": 42.0}}}

    def test_clean_run_passes(self):
        results = {"x": {"wall_s": 1.1, "checksum": 42.0}}
        assert check_results(results, self._REF) == []

    def test_checksum_drift_fails(self):
        results = {"x": {"wall_s": 1.0, "checksum": 43.0}}
        failures = check_results(results, self._REF)
        assert len(failures) == 1
        assert "checksum drifted" in failures[0]

    def test_wall_regression_fails_beyond_tolerance(self):
        results = {"x": {"wall_s": 1.3, "checksum": 42.0}}
        failures = check_results(results, self._REF, wall_tolerance=1.25)
        assert len(failures) == 1
        assert "regressed" in failures[0]
        assert check_results(results, self._REF, wall_tolerance=1.5) == []

    def test_unrecorded_case_is_skipped(self):
        results = {"new_case": {"wall_s": 9.0, "checksum": 1.0}}
        assert check_results(results, self._REF) == []

    def test_workload_param_mismatch_is_refused(self):
        ref = {
            "label": "ref",
            "results": {
                "x": {"wall_s": 1.0, "checksum": 42.0, "n_jobs": 200}
            },
        }
        results = {"x": {"wall_s": 1.0, "checksum": 42.0, "n_jobs": 20}}
        failures = check_results(results, ref)
        assert len(failures) == 1
        assert "workload params differ" in failures[0]
        # The refusal replaces (not compounds) the checksum/wall gates:
        # a drifted checksum on mismatched params reports only the
        # param failure, since the comparison itself is meaningless.
        results = {"x": {"wall_s": 9.0, "checksum": 7.0, "n_jobs": 20}}
        failures = check_results(results, ref)
        assert len(failures) == 1
        assert "workload params differ" in failures[0]

    def test_workload_params_strips_only_measured_keys(self):
        from repro.bench import workload_params

        row = {
            "wall_s": 1.0,
            "checksum": 42.0,
            "overhead_pct": 3.0,
            "batch_speedup": 2.0,
            "n_jobs": 200,
            "scheduler": "fair",
        }
        assert workload_params(row) == {"n_jobs": 200, "scheduler": "fair"}

    def test_missing_reference_section_skips_everything(self):
        results = {"x": {"wall_s": 9.0, "checksum": 99.0}}
        assert check_results(results, None) == []

    def test_cli_check_fails_without_reference(self, tmp_path, capsys):
        # Reference validation happens before any benchmark runs, so
        # this is instant despite going through the real CLI.
        path = tmp_path / "BENCH_engine.json"
        record_results(
            {"x": {"wall_s": 2.0, "checksum": 1.0}}, path=path, as_baseline=True
        )
        code = main(["bench", "--smoke", "--check", "--json", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "no 'smoke' reference" in err

    def test_cli_smoke_check_round_trip(self, tmp_path, capsys, monkeypatch):
        # Gate plumbing only (exit codes, sections, output); the suite
        # itself is canned — the real smoke suite already runs in CI
        # and in TestBenchmarks.
        import repro.bench.hotpath as hotpath

        canned = {"stream_16x200": {"wall_s": 1.0, "checksum": 42.0}}
        monkeypatch.setattr(hotpath, "run_suite", lambda smoke=False: canned)
        path = tmp_path / "BENCH_engine.json"
        assert main(["bench", "--save-smoke", "--json", str(path)]) == 0
        assert load_results(path)["smoke"] is not None
        code = main(
            [
                "bench", "--smoke", "--check", "--json", str(path),
                "--wall-tolerance", "1000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bench check ok" in out

    def test_cli_check_detects_checksum_drift(self, tmp_path, capsys, monkeypatch):
        import repro.bench.hotpath as hotpath

        canned = {"stream_16x200": {"wall_s": 1.0, "checksum": 42.0}}
        monkeypatch.setattr(hotpath, "run_suite", lambda smoke=False: canned)
        path = tmp_path / "BENCH_engine.json"
        assert main(["bench", "--save-smoke", "--json", str(path)]) == 0
        ledger = load_results(path)
        ledger["smoke"]["results"]["stream_16x200"]["checksum"] += 1.0
        path.write_text(json.dumps(ledger))
        code = main(
            [
                "bench", "--smoke", "--check", "--json", str(path),
                "--wall-tolerance", "1000",
            ]
        )
        assert code == 1
        assert "checksum drifted" in capsys.readouterr().err


class TestCli:
    def test_bench_table_only(self, tmp_path, capsys):
        path = tmp_path / "BENCH_engine.json"
        record_results(
            {"x": {"wall_s": 2.0, "checksum": 1.0}}, path=path, as_baseline=True
        )
        assert main(["bench", "--table-only", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "benchmark" in out
        assert "2.0000" in out


class TestCampaignOverhead:
    def test_overhead_case_is_deterministic_and_cached(self):
        from repro.bench import bench_campaign_overhead

        a = bench_campaign_overhead(n_cells=4, seed=77)
        b = bench_campaign_overhead(n_cells=4, seed=77)
        assert a["cache_hits"] == 4
        assert a["checksum"] == b["checksum"]
        assert a["wall_s"] >= 0.0
        # per_cell_ms derives from the unrounded wall clock; it must
        # sit within a rounding step of the recorded wall_s / n_cells.
        assert a["per_cell_ms"] == pytest.approx(
            a["wall_s"] / 4 * 1_000.0, abs=0.05
        )


class TestProvenance:
    def test_record_provenance_archives_each_case(self, tmp_path):
        from repro.bench import record_provenance
        from repro.runtime import ArtifactStore

        results = {
            "stream_16x200": {"wall_s": 1.0, "checksum": 2.0},
            "waterfill_10k": {"wall_s": 0.1, "checksum": 3.0},
        }
        record_provenance(results, tmp_path / "store", label="pr")
        store = ArtifactStore(tmp_path / "store")
        assert store.keys() == ["bench-stream_16x200", "bench-waterfill_10k"]
        doc = store.get("bench-stream_16x200")
        assert doc["result"] == results["stream_16x200"]
        assert "python" in doc["environment"]
        assert store.meta("bench-stream_16x200")["label"] == "pr"
        # Benchmarks re-run: provenance overwrites instead of refusing.
        record_provenance(results, tmp_path / "store")
        assert store.get("bench-stream_16x200")["result"]["wall_s"] == 1.0


class TestProfiles:
    def test_top_functions_ranks_by_cumtime(self):
        import cProfile

        from repro.bench.hotpath import _top_functions

        def inner():
            return sum(range(2_000))

        def outer():
            return [inner() for _ in range(50)]

        prof = cProfile.Profile()
        prof.runcall(outer)
        rows = _top_functions(prof, limit=5)
        assert 0 < len(rows) <= 5
        for row in rows:
            assert set(row) == {"function", "ncalls", "tottime_s", "cumtime_s"}
        cumtimes = [row["cumtime_s"] for row in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)
        assert any("outer" in row["function"] for row in rows)

    def test_record_profiles_archives_per_case(self, tmp_path):
        import cProfile

        from repro.bench import record_profiles
        from repro.runtime import ArtifactStore

        prof = cProfile.Profile()
        prof.runcall(lambda: sum(range(1_000)))
        from repro.bench.hotpath import _top_functions

        profiles = {"waterfill_10k": _top_functions(prof)}
        record_profiles(profiles, tmp_path / "store", label="pr")
        store = ArtifactStore(tmp_path / "store")
        assert store.keys() == ["bench-profile-waterfill_10k"]
        doc = store.get("bench-profile-waterfill_10k")
        assert doc["top_functions"] == profiles["waterfill_10k"]
        meta = store.meta("bench-profile-waterfill_10k")
        assert meta["kind"] == "bench-profile"
        assert meta["label"] == "pr"
        # Re-profiling overwrites, mirroring provenance recording.
        record_profiles(profiles, tmp_path / "store")
        assert store.get("bench-profile-waterfill_10k") == doc
