"""Tests for the hot-path benchmark suite and its results ledger."""

import json

import pytest

from repro.bench import (
    bench_stream,
    bench_waterfill,
    format_table,
    load_results,
    record_results,
)
from repro.cli import main


class TestBenchmarks:
    def test_waterfill_microbench_reports_checksum(self):
        result = bench_waterfill(n_flows=300, n_nodes=8, rounds=1)
        assert result["n_flows"] == 300
        assert result["wall_s"] >= 0
        assert result["checksum"] > 0

    def test_waterfill_checksum_is_deterministic(self):
        a = bench_waterfill(n_flows=200, n_nodes=8, rounds=1)
        b = bench_waterfill(n_flows=200, n_nodes=8, rounds=1)
        assert a["checksum"] == b["checksum"]

    def test_stream_bench_small(self):
        result = bench_stream(n_nodes=4, n_jobs=2, data_scale=0.05)
        assert result["checksum"] > 0
        assert result["makespan_s"] > 0
        assert result["samples"] > 0


class TestLedger:
    def test_missing_ledger_is_empty(self, tmp_path):
        ledger = load_results(tmp_path / "nope.json")
        assert ledger["baseline"] is None
        assert "(no benchmark results recorded)" in format_table(ledger)

    def test_record_and_speedup_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        base = {"x": {"wall_s": 2.0, "checksum": 42.0}}
        cur = {"x": {"wall_s": 0.5, "checksum": 42.0}}
        record_results(base, path=path, label="old", as_baseline=True)
        ledger = record_results(cur, path=path, label="new")
        assert ledger["speedup"]["x"] == pytest.approx(4.0)
        reloaded = json.loads(path.read_text())
        assert reloaded["baseline"]["label"] == "old"
        assert reloaded["current"]["label"] == "new"
        table = format_table(reloaded)
        assert "4.00x" in table

    def test_checksum_mismatch_voids_speedup(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        record_results(
            {"x": {"wall_s": 2.0, "checksum": 1.0}}, path=path, as_baseline=True
        )
        ledger = record_results({"x": {"wall_s": 0.5, "checksum": 2.0}}, path=path)
        assert "x" not in ledger["speedup"]

    def test_recording_current_never_touches_baseline(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        record_results(
            {"x": {"wall_s": 2.0, "checksum": 1.0}}, path=path, as_baseline=True
        )
        record_results({"x": {"wall_s": 1.0, "checksum": 1.0}}, path=path)
        assert load_results(path)["baseline"]["results"]["x"]["wall_s"] == 2.0


class TestCli:
    def test_bench_table_only(self, tmp_path, capsys):
        path = tmp_path / "BENCH_engine.json"
        record_results(
            {"x": {"wall_s": 2.0, "checksum": 1.0}}, path=path, as_baseline=True
        )
        assert main(["bench", "--table-only", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "benchmark" in out
        assert "2.0000" in out
