"""Tests for the simulation-backed figures (3, 13, 15-19).

These use reduced run counts — the claims are about orderings and
directions, which survive smaller samples; the benchmarks regenerate
the full-size figures.
"""

import numpy as np
import pytest

from repro.paper import fig03, fig13, fig15, fig16, fig17, fig18, fig19


class TestFig03:
    @pytest.fixture(scope="class")
    def result(self):
        return fig03.reproduce(n_gold=16, clouds=("B", "F"))

    def test_gold_ci_brackets_estimates(self, result):
        for estimate in result.kmeans.values():
            assert estimate.gold_ci.low <= estimate.gold_ci.estimate
            assert estimate.gold_ci.estimate <= estimate.gold_ci.high

    def test_wide_cloud_slower_than_tight_cloud(self, result):
        # Cloud F (wide, slow) must have a higher K-Means median than
        # cloud B (tight, fast) — Figure 3a's cross-cloud ordering.
        assert (
            result.kmeans["F"].gold_ci.estimate
            > result.kmeans["B"].gold_ci.estimate
        )

    def test_rows_and_misses_shape(self, result):
        assert len(result.rows()) == 2
        counts = result.miss_counts()
        assert set(counts) == {
            "kmeans_3run_misses", "kmeans_10run_misses",
            "q68_3run_misses", "q68_10run_misses",
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            fig03.reproduce(n_gold=5)


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13.reproduce(repetitions=40)

    def test_many_repetitions_needed_for_one_percent(self, result):
        # 40 runs should NOT satisfy a 1% bound (the paper needs 70+).
        for panel in (result.kmeans_gce, result.q65_hpccloud):
            needed = panel.repetitions_needed
            assert needed is None or needed > 15

    def test_cis_do_not_widen(self, result):
        # Stochastic variability: CI analysis behaves (F4.1).
        assert not result.kmeans_gce.curve.widening_detected()

    def test_validation(self):
        with pytest.raises(ValueError):
            fig13.reproduce(repetitions=5)


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self):
        return fig15.reproduce(budgets=(5_000.0, 10.0), consecutive_runs=3)

    def test_small_budget_slower_and_capped(self, result):
        large = result.panels[5_000.0].summary()
        small = result.panels[10.0].summary()
        assert small["mean_runtime_s"] > large["mean_runtime_s"]
        assert (
            small["transmit_at_low_rate_pct"]
            > large["transmit_at_low_rate_pct"]
        )

    def test_large_budget_never_depletes(self, result):
        assert result.panels[5_000.0].summary()["min_budget_gbit"] > 0.0
        assert result.panels[10.0].summary()["min_budget_gbit"] == 0.0

    def test_series_cover_all_runs(self, result):
        panel = result.panels[5_000.0]
        assert panel.bandwidth.duration > 2 * min(panel.runtimes_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            fig15.reproduce(consecutive_runs=0)


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return fig16.reproduce(
            budgets=(5_000.0, 10.0), runs_per_config=3,
            apps=("TS", "WC", "KM"),
        )

    def test_network_apps_most_affected(self, result):
        assert result.budget_impact("TS") > 0.25
        assert result.budget_impact("WC") > 0.2
        assert result.budget_impact("KM") < 0.1

    def test_variability_boxes_ordering(self, result):
        boxes = result.variability_boxes()
        assert boxes["TS"].whisker_span > boxes["KM"].whisker_span

    def test_average_rows_shape(self, result):
        rows = result.average_rows()
        assert len(rows) == 3
        assert all("budget_5000" in row and "budget_10" in row for row in rows)


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return fig17.reproduce(
            budgets=(5_000.0, 10.0), runs_per_config=3,
            queries=(65, 82, 42, 7),
        )

    def test_q65_sensitive_q82_flat(self, result):
        assert result.slowdown(65, 10.0) > 1.8
        assert result.slowdown(82, 10.0) == pytest.approx(1.0, abs=0.05)

    def test_monotone_in_budget(self, result):
        assert result.all_queries_monotone_in_budget()

    def test_slowdown_rows_shape(self, result):
        rows = result.slowdown_rows()
        assert len(rows) == 4
        assert all("slowdown_b10" in row for row in rows)


class TestFig18:
    @pytest.fixture(scope="class")
    def result(self):
        return fig18.reproduce(stream_repeats=3)

    def test_exactly_the_skewed_node_straggles(self, result):
        assert result.straggler_nodes == [result.skewed_node]

    def test_other_nodes_keep_budget(self, result):
        for node, frac in result.throttled_fraction.items():
            if node != result.skewed_node:
                assert frac < 0.02

    def test_straggler_oscillates(self, result):
        assert result.straggler_oscillates()

    def test_rows_mark_roles(self, result):
        rows = result.rows()
        roles = {row["node"]: row["role"] for row in rows}
        assert roles[result.skewed_node] == "straggler"


class TestFig19:
    @pytest.fixture(scope="class")
    def result(self):
        return fig19.reproduce(
            reps_per_budget=4, scan_reps_per_budget=2,
            queries=(65, 82, 19, 42, 7, 89),
        )

    def test_q82_agnostic_q65_dependent(self, result):
        assert not result.q82.median_estimate_poor
        assert result.q65.median_estimate_poor

    def test_q65_slows_as_budget_depletes(self, result):
        assert result.q65.depleted_median > result.q65.fresh_median * 1.5
        assert result.q82.depleted_median == pytest.approx(
            result.q82.fresh_median, rel=0.10
        )

    def test_q65_ci_widens_q82_does_not(self, result):
        assert result.q65.ci_widened
        assert not result.q82.ci_widened

    def test_majority_of_queries_poor(self, result):
        # Paper: ~80% of queries develop poor median estimates.
        assert result.poor_median_fraction >= 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            fig19.reproduce(reps_per_budget=1)
