"""Tests for the fast figure reproductions (survey, traces, NIC, emulator)."""

import numpy as np
import pytest

from repro.paper import (
    fig01,
    fig02,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig14,
    tables,
)


class TestFig01:
    def test_headline_claims(self):
        result = fig01.reproduce()
        assert result.funnel.total == 1_867
        assert result.funnel.cloud_experiments == 44
        assert result.summary.pct_underspecified > 60.0
        assert all(k > 0.8 for k in result.summary.kappa.values())

    def test_rows_printable(self):
        result = fig01.reproduce()
        assert len(result.rows()) == 3
        # 7 ground-truth bins; reviewer error may drop one edge bin.
        assert 6 <= len(result.histogram_rows()) <= 7


class TestFig02:
    def test_eight_clouds_within_range(self):
        result = fig02.reproduce()
        assert len(result.boxes) == 8
        for box in result.boxes.values():
            assert 0.0 < box.p01
            assert box.p99 <= 1_000.0

    def test_rows_in_axis_order(self):
        rows = fig02.reproduce().rows()
        assert [r["cloud"] for r in rows] == list("ABCDEFGH")


class TestFig04:
    def test_hpccloud_range_and_variability(self):
        result = fig04.reproduce(duration_s=36_000.0)
        row = result.rows()[0]
        assert 7.5 <= row["min_gbps"]
        assert row["max_gbps"] <= 10.6
        # High measurement-to-measurement variability (paper: up to 33%).
        assert row["max_consecutive_change_pct"] > 15.0


class TestFig05:
    def test_gce_pattern_ordering(self):
        result = fig05.reproduce(duration_s=36_000.0)
        boxes = result.boxes
        # Full-speed: highest median, narrowest spread; 5-30: long tail.
        assert boxes["full-speed"].p50 > boxes["5-30"].p50
        assert boxes["full-speed"].whisker_span < boxes["5-30"].whisker_span
        assert boxes["5-30"].p01 < boxes["10-30"].p01

    def test_bandwidth_in_paper_range(self):
        result = fig05.reproduce(duration_s=36_000.0)
        assert 12.0 < result.boxes["full-speed"].p50 < 16.0


class TestFig06:
    def test_ec2_pattern_ordering_reversed(self):
        result = fig06.reproduce(duration_s=172_800.0)
        assert result.mean("5-30") > result.mean("10-30") > result.mean("full-speed")

    def test_three_and_seven_x_slowdowns(self):
        result = fig06.reproduce(duration_s=172_800.0)
        slow = result.slowdowns()
        assert slow["ten_thirty_vs_full_speed"] == pytest.approx(3.0, rel=0.4)
        assert slow["five_thirty_vs_full_speed"] == pytest.approx(7.0, rel=0.4)

    def test_bandwidth_spans_one_to_ten(self):
        result = fig06.reproduce(duration_s=172_800.0)
        full = result.traces["full-speed"]
        assert full.values.min() < 1.5
        assert full.values.max() > 9.0


class TestFig07:
    def test_throttling_inflates_latency(self):
        result = fig07.reproduce(max_samples=30_000)
        assert result.normal.rtt.median() < 0.5
        assert result.latency_inflation > 30.0

    def test_bandwidth_drops_when_throttled(self):
        result = fig07.reproduce(max_samples=10_000)
        assert result.normal.bandwidth.mean() > 9.0
        assert result.throttled.bandwidth.mean() < 1.5


class TestFig08:
    def test_gce_millisecond_scale(self):
        result = fig08.reproduce(max_samples=30_000)
        row = result.rows()[0]
        assert 1.0 < row["rtt_median_ms"] < 4.0
        assert row["rtt_max_ms"] <= 10.0


class TestFig09:
    def test_gce_dominates_retransmissions(self):
        result = fig09.reproduce(duration_s=7_200.0)
        boxes = result.cloud_boxes
        assert boxes["google"].p50 > 1_000 * max(
            boxes["amazon"].p50, boxes["hpccloud"].p50, 1.0
        )

    def test_gce_counts_in_figure_range(self):
        # Figure 9's violin: bursts in the hundreds of thousands.
        result = fig09.reproduce(duration_s=7_200.0)
        assert 50_000 < result.cloud_boxes["google"].p50 < 500_000

    def test_violin_rows_cover_patterns(self):
        result = fig09.reproduce(duration_s=7_200.0)
        assert {r["pattern"] for r in result.violin_rows()} == {
            "full-speed", "10-30", "5-30"
        }


class TestFig10:
    def test_claims_hold_on_shortened_campaign(self):
        result = fig10.reproduce(duration_s=302_400.0)  # half week
        assert result.ec2_totals_roughly_equal()
        assert result.gce_full_speed_dominates()


class TestFig11:
    def test_identification_with_few_tests(self):
        result = fig11.reproduce(tests_per_type=4)
        assert result.monotone_in_size()
        assert result.incarnations_inconsistent()

    def test_c5_xlarge_empties_near_ten_minutes(self):
        result = fig11.reproduce(tests_per_type=4)
        summary = result.identifications["c5.xlarge"].summary()
        assert 300 < summary["empty_time_median_s"] < 1_200

    def test_validation(self):
        with pytest.raises(ValueError):
            fig11.reproduce(tests_per_type=1)


class TestFig12:
    def test_gce_latency_grows_ec2_flat(self):
        result = fig12.reproduce()
        gce = {e.write_size_bytes: e for e in result.gce}
        ec2 = {e.write_size_bytes: e for e in result.ec2}
        assert gce[131_072].mean_rtt_ms > 2.5 * gce[9_000].mean_rtt_ms
        assert ec2[131_072].mean_rtt_ms == pytest.approx(
            ec2[9_000].mean_rtt_ms, rel=0.2
        )

    def test_gce_retransmissions_explode_beyond_9k(self):
        result = fig12.reproduce()
        gce = {e.write_size_bytes: e for e in result.gce}
        assert gce[9_000].retransmission_rate < 1e-3
        assert gce[131_072].retransmission_rate > 0.005

    def test_rows_cover_both_clouds(self):
        rows = fig12.reproduce().rows()
        assert {r["cloud"] for r in rows} == {"ec2", "gce"}


class TestFig14:
    def test_emulation_matches_reference(self):
        result = fig14.reproduce()
        assert result.emulation_is_high_quality(nrmse_bound=0.10)

    def test_burst_two_phase_shape(self):
        result = fig14.reproduce()
        panel = result.panels["10-30"]
        # Second burst: starts high (replenished budget), ends capped.
        burst = panel.reference.slice_time(40.0, 50.0)
        assert burst.values[0] > 5.0
        assert burst.values[-1] == pytest.approx(1.0, abs=0.1)


class TestTables:
    def test_table1_static(self):
        t = tables.table1()
        assert "NSDI" in t["venues"]
        assert "spark" in t["keywords"]

    def test_table2_funnel(self):
        t = tables.table2()
        assert t["articles_total"] == 1_867
        assert t["filtered_for_cloud"] == 44

    def test_table3_all_exhibit_variability(self):
        rows = tables.table3(duration_scale=1.0 / 336.0)
        assert len(rows) == 11
        assert all(row["exhibits_variability"] for row in rows)

    def test_table4_static(self):
        rows = tables.table4()
        assert len(rows) == 2
        assert all(row["nodes"] == 12 for row in rows)
