"""Shared fixtures for runtime tests: chaos arming and demo matrices."""

import pytest

from repro.runtime import chaos as chaos_module
from repro.runtime.chaos import demo_matrix


@pytest.fixture
def chaos_env(monkeypatch):
    """Arm chaos via ``REPRO_CHAOS`` for the test, disarm afterwards.

    Yields a setter taking the config path; teardown removes the
    variable and disarms the in-process injector so the store's put
    hook never leaks into later tests.
    """

    def arm(config_path):
        monkeypatch.setenv(chaos_module.CHAOS_ENV, str(config_path))

    yield arm
    monkeypatch.delenv(chaos_module.CHAOS_ENV, raising=False)
    chaos_module.deactivate()


@pytest.fixture
def demo_cells():
    """A 2-chain × 2-link chained demo matrix (4 cells, 2 components)."""
    return demo_matrix(n_chains=2, chain_len=2, seed=3)
