"""Tests for the content-addressed artifact store."""

import json
import os

import pytest

import hashlib

from repro.runtime.store import (
    DIGESTS_KEY,
    ArtifactStore,
    StoreCorruptionError,
    atomic_write_text,
    validate_key,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


DOCS = {"config": {"seed": 1, "patterns": ["a"]}, "a": {"values": [1.0, 2.0]}}


class TestPutGet:
    def test_roundtrip(self, store):
        store.put("k1", DOCS, meta={"kind": "test"})
        assert "k1" in store
        assert store.get("k1") == DOCS
        assert store.meta("k1")["kind"] == "test"
        assert store.meta("k1")["documents"] == ["a", "config"]

    def test_duplicate_rejected_unless_overwrite(self, store):
        store.put("k1", DOCS)
        with pytest.raises(ValueError):
            store.put("k1", DOCS)
        store.put("k1", {"config": {"seed": 2}}, overwrite=True)
        assert store.get("k1") == {"config": {"seed": 2}}

    def test_overwrite_drops_stale_documents(self, store):
        # The directory must mirror the manifest entry: a shrunken
        # overwrite may not leave the old version's files behind.
        store.put("k1", DOCS)
        store.put("k1", {"config": {"seed": 2}}, overwrite=True)
        assert sorted(p.name for p in (store.root / "k1").iterdir()) == [
            "config.json"
        ]

    def test_empty_documents_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("k1", {})

    def test_unsafe_keys_rejected(self, store):
        for crafted in ("../escape", "..", ".", "a\n", "ok/../.."):
            with pytest.raises(ValueError):
                store.put(crafted, DOCS)
            with pytest.raises(ValueError):
                store.read_document(crafted, "config")
            with pytest.raises(ValueError):
                store.delete(crafted)
        with pytest.raises(ValueError):
            store.put("ok", {"../escape": {}})

    def test_missing_key_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.get("nope")
        with pytest.raises(KeyError):
            store.meta("nope")
        with pytest.raises(KeyError):
            store.delete("nope")

    def test_missing_document_is_corruption(self, store):
        store.put("k1", DOCS)
        (store.root / "k1" / "a.json").unlink()
        with pytest.raises(StoreCorruptionError, match="k1"):
            store.read_document("k1", "a")

    def test_delete_tolerates_manifest_only_entry(self, store):
        manifest = {"ghost": {"documents": ["config"]}}
        (store.root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruptionError):
            store.read_document("ghost", "config")
        store.delete("ghost")
        assert "ghost" not in store

    def test_persistent_across_instances(self, tmp_path):
        root = tmp_path / "store"
        ArtifactStore(root).put("k1", DOCS)
        fresh = ArtifactStore(root)
        assert fresh.keys() == ["k1"]
        assert fresh.get("k1") == DOCS


class TestDurability:
    def test_atomic_write_leaves_no_temp_litter(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, "{}")
        atomic_write_text(path, '{"a": 1}')
        assert path.read_text() == '{"a": 1}'
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_interrupted_write_preserves_old_content(self, tmp_path, monkeypatch):
        # A crash before the rename (simulated by making os.replace
        # fail) must leave the destination untouched and clean up the
        # staging file.
        path = tmp_path / "out.json"
        atomic_write_text(path, "old")

        def boom(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(path, "new")
        monkeypatch.undo()
        assert path.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_crashed_delete_never_strands_the_manifest(self, store, monkeypatch):
        # The manifest entry goes before the files: a delete killed
        # mid-unlink leaves an orphaned directory, never a manifest
        # entry pointing at missing files.
        from pathlib import Path

        store.put("k1", DOCS)

        def boom(self):
            raise OSError("killed mid-delete")

        monkeypatch.setattr(Path, "unlink", boom)
        with pytest.raises(OSError):
            store.delete("k1")
        monkeypatch.undo()
        assert "k1" not in store  # entry already gone
        for key in store.keys():
            store.get(key)  # nothing listed is unreadable
        store.put("k1", DOCS)  # the orphan directory is adopted
        assert store.get("k1") == DOCS

    def test_crashed_put_never_strands_the_manifest(self, store, monkeypatch):
        # Documents land before the manifest entry: if the writer dies
        # between them, the manifest still describes only complete
        # artifacts — the corruption error is unreachable from a crash.
        real = ArtifactStore._write_manifest

        def boom(self, manifest):
            raise OSError("killed before manifest update")

        monkeypatch.setattr(ArtifactStore, "_write_manifest", boom)
        with pytest.raises(OSError):
            store.put("k1", DOCS)
        monkeypatch.setattr(ArtifactStore, "_write_manifest", real)
        assert "k1" not in store  # manifest never saw the artifact
        for key in store.keys():  # every listed key is fully readable
            store.get(key)
        # The orphaned directory is adopted by the next put of the key.
        store.put("k1", DOCS)
        assert store.get("k1") == DOCS


class TestConcurrentWriters:
    def test_parallel_puts_lose_no_manifest_entries(self, tmp_path):
        # Two writers racing on one store (e.g. a resumed worker beside
        # the original it was presumed to have replaced): the manifest
        # lock must keep every writer's index entry.
        import threading

        store = ArtifactStore(tmp_path / "store")
        errors = []

        def writer(offset):
            try:
                mine = ArtifactStore(tmp_path / "store")
                for i in range(10):
                    mine.put(f"k{offset}-{i}", {"config": {"i": i}})
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(store.keys()) == 40
        for key in store.keys():
            store.get(key)


class TestMergeAndHash:
    def test_merge_adopts_only_missing_keys(self, tmp_path):
        a = ArtifactStore(tmp_path / "a")
        b = ArtifactStore(tmp_path / "b")
        a.put("k1", DOCS, meta={"kind": "x"})
        b.put("k1", {"config": {"seed": 9}})  # ignored: a already has k1
        b.put("k2", DOCS, meta={"kind": "y"})
        adopted = a.merge_from(b)
        assert adopted == ["k2"]
        assert a.get("k1") == DOCS
        assert a.meta("k2")["kind"] == "y"

    def test_merge_keys_filter_excludes_stale_artifacts(self, tmp_path):
        a = ArtifactStore(tmp_path / "a")
        b = ArtifactStore(tmp_path / "b")
        b.put("wanted", DOCS)
        b.put("stale", DOCS)
        adopted = a.merge_from(b, keys=["wanted", "never-computed"])
        assert adopted == ["wanted"]
        assert a.keys() == ["wanted"]

    def test_merge_preserves_document_bytes(self, tmp_path):
        # Byte-for-byte copies keep content hashes comparable across a
        # merge — the property the shard-equivalence gate relies on.
        a = ArtifactStore(tmp_path / "a")
        b = ArtifactStore(tmp_path / "b")
        b.put("k1", DOCS, meta={"kind": "x"})
        a.merge_from(b)
        assert a.content_hash() == b.content_hash()

    def test_merge_refuses_corrupt_source(self, tmp_path):
        a = ArtifactStore(tmp_path / "a")
        b = ArtifactStore(tmp_path / "b")
        b.put("k1", DOCS)
        (b.root / "k1" / "a.json").unlink()
        with pytest.raises(StoreCorruptionError, match="k1"):
            a.merge_from(b)

    def test_content_hash_is_order_independent(self, tmp_path):
        a = ArtifactStore(tmp_path / "a")
        b = ArtifactStore(tmp_path / "b")
        a.put("k1", DOCS)
        a.put("k2", {"config": {"seed": 2}})
        b.put("k2", {"config": {"seed": 2}})
        b.put("k1", DOCS)
        assert a.content_hash() == b.content_hash()
        b.delete("k1")
        assert a.content_hash() != b.content_hash()


class TestVerify:
    def test_clean_store_verifies_ok(self, store):
        store.put("k1", DOCS)
        store.put("k2", {"config": {"seed": 2}})
        report = store.verify()
        assert report.ok
        assert report.checked == 2
        assert report.problems == [] and report.orphans == []

    def test_digest_mismatch_detected(self, store):
        store.put("k1", DOCS)
        path = store.root / "k1" / "a.json"
        path.write_text(json.dumps({"values": [9.0]}))
        report = store.verify()
        assert not report.ok
        assert report.bad_keys() == ["k1"]
        (problem,) = report.problems
        assert problem.kind == "digest-mismatch"
        assert "k1/a: digest-mismatch" in str(problem)

    def test_missing_file_and_missing_dir_detected(self, store):
        import shutil

        store.put("k1", DOCS)
        store.put("k2", DOCS)
        (store.root / "k1" / "a.json").unlink()
        shutil.rmtree(store.root / "k2")
        report = store.verify()
        kinds = {(p.key, p.kind) for p in report.problems}
        assert kinds == {("k1", "missing-file"), ("k2", "missing-dir")}

    def test_torn_write_reported_unreadable(self, store):
        store.put("k1", DOCS)
        (store.root / "k1" / "a.json").write_text('{"values": [1.0')
        report = store.verify()
        (problem,) = report.problems
        assert problem.kind == "unreadable"

    def test_stray_file_detected(self, store):
        store.put("k1", DOCS)
        (store.root / "k1" / "extra.json").write_text("{}")
        report = store.verify()
        (problem,) = report.problems
        assert (problem.kind, problem.document) == ("stray-file", "extra")

    def test_orphan_directory_is_benign(self, store):
        # The residue of a writer SIGKILLed between document writes and
        # its manifest entry: reported, but never corruption.
        store.put("k1", DOCS)
        orphan = store.root / "k-orphan"
        orphan.mkdir()
        (orphan / "a.json").write_text("{}")
        report = store.verify()
        assert report.ok
        assert report.orphans == ["k-orphan"]

    def test_keys_subset_checks_only_those(self, store):
        store.put("good", DOCS)
        store.put("bad", DOCS)
        (store.root / "bad" / "a.json").unlink()
        assert store.verify(keys=["good"]).ok
        assert not store.verify(keys=["bad"]).ok
        with pytest.raises(KeyError, match="unknown"):
            store.verify(keys=["unknown"])

    def test_legacy_entry_without_digests_still_checked(self, store):
        # Entries written before digests/document lists existed: the
        # files on disk are the truth — presence and JSON validity are
        # still audited, byte digests and strays are not.
        store.put("k1", DOCS)
        manifest_path = store.root / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["k1"].pop("sha256", None)
        manifest["k1"].pop("documents", None)
        manifest_path.write_text(json.dumps(manifest))
        assert store.verify().ok
        (store.root / "k1" / "a.json").write_text("not json")
        report = store.verify()
        (problem,) = report.problems
        assert problem.kind == "unreadable"


def _strip_digests(store, key):
    """Rewrite ``key``'s entry as a pre-PR7 manifest would have it."""
    manifest_path = store.root / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest[key].pop(DIGESTS_KEY, None)
    manifest[key].pop("documents", None)
    manifest_path.write_text(json.dumps(manifest))


class TestUndigested:
    def test_verify_reports_undigested_without_failing(self, store):
        store.put("legacy", DOCS)
        store.put("modern", DOCS)
        _strip_digests(store, "legacy")
        report = store.verify()
        assert report.ok  # unauditable is not corrupt
        assert report.undigested == ["legacy"]

    def test_record_digests_backfills_and_closes_the_gap(self, store):
        store.put("legacy", DOCS)
        _strip_digests(store, "legacy")
        assert store.record_digests() == ["legacy"]
        report = store.verify()
        assert report.ok and report.undigested == []
        entry = store.meta("legacy")
        assert sorted(entry["documents"]) == ["a", "config"]
        # Backfill recorded the true bytes: tampering is now detectable.
        (store.root / "legacy" / "a.json").write_text('{"values": [9]}')
        assert store.verify().bad_keys() == ["legacy"]

    def test_record_digests_never_rewrites_existing_entries(self, store):
        store.put("modern", DOCS)
        before = (store.root / "manifest.json").read_bytes()
        assert store.record_digests() == []
        assert (store.root / "manifest.json").read_bytes() == before

    def test_record_digests_refuses_corrupt_bytes(self, store):
        store.put("legacy", DOCS)
        _strip_digests(store, "legacy")
        (store.root / "legacy" / "a.json").write_text('{"torn')
        with pytest.raises(StoreCorruptionError, match="refusing"):
            store.record_digests()

    def test_record_digests_refuses_missing_file(self, store):
        # Entry still lists its documents (only the digests are gone):
        # a listed-but-absent file is corruption, not backfillable.
        store.put("legacy", DOCS)
        manifest_path = store.root / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["legacy"].pop(DIGESTS_KEY, None)
        manifest_path.write_text(json.dumps(manifest))
        (store.root / "legacy" / "a.json").unlink()
        with pytest.raises(StoreCorruptionError, match="missing"):
            store.record_digests()

    def test_unknown_key_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.record_digests(keys=["nope"])


class TestRepair:
    def test_repair_drops_corrupt_keys_and_their_files(self, store):
        store.put("good", DOCS)
        store.put("bad", DOCS)
        (store.root / "bad" / "a.json").write_text('{"values": [9.0]}')
        repaired = store.repair()
        assert repaired.dropped == ["bad"]
        assert "bad" not in store
        assert not (store.root / "bad").exists()
        assert store.get("good") == DOCS
        assert store.verify().ok

    def test_repair_handles_every_corruption_kind(self, store):
        import shutil

        store.put("gone-dir", DOCS)
        store.put("gone-file", DOCS)
        store.put("torn", DOCS)
        store.put("flipped", DOCS)
        shutil.rmtree(store.root / "gone-dir")
        (store.root / "gone-file" / "a.json").unlink()
        (store.root / "torn" / "a.json").write_text('{"values": [1.0')
        (store.root / "flipped" / "a.json").write_text('{"values": [9.0]}')
        repaired = store.repair()
        assert repaired.dropped == ["flipped", "gone-dir", "gone-file", "torn"]
        assert store.keys() == []
        assert store.verify().ok

    def test_repair_removes_strays_but_keeps_the_entry(self, store):
        store.put("k1", DOCS)
        (store.root / "k1" / "extra.json").write_text("{}")
        repaired = store.repair()
        assert repaired.dropped == []
        assert repaired.removed_files == ["k1/extra.json"]
        assert store.get("k1") == DOCS
        assert store.verify().ok

    def test_repair_never_touches_benign_orphans(self, store):
        store.put("k1", DOCS)
        orphan = store.root / "k-orphan"
        orphan.mkdir()
        (orphan / "a.json").write_text("{}")
        repaired = store.repair()
        assert repaired.dropped == [] and repaired.removed_files == []
        assert (orphan / "a.json").exists()

    def test_repaired_key_can_be_recomputed(self, store):
        store.put("k1", DOCS)
        (store.root / "k1" / "a.json").write_text("not json")
        store.repair()
        store.put("k1", DOCS)  # no overwrite needed: the entry is gone
        assert store.verify().ok


class TestAdopt:
    def _entry_for(self, files, **meta):
        digests = {
            name: hashlib.sha256(data).hexdigest()
            for name, data in files.items()
        }
        return {**meta, "documents": sorted(files), DIGESTS_KEY: digests}

    def _files(self):
        return {
            name: json.dumps(doc, indent=2, sort_keys=True).encode() + b"\n"
            for name, doc in DOCS.items()
        }

    def test_adopt_lands_verified_bytes(self, store):
        files = self._files()
        store.adopt("k1", files, self._entry_for(files, kind="x"))
        assert store.get("k1") == DOCS
        assert store.meta("k1")["kind"] == "x"
        assert store.verify().ok

    def test_adopt_refuses_digest_mismatch_entirely(self, store):
        files = self._files()
        entry = self._entry_for(files)
        files["a"] = files["a"][:-2] + b"]\n"  # corrupt after digesting
        with pytest.raises(StoreCorruptionError, match="digest mismatch"):
            store.adopt("k1", files, entry)
        # Nothing landed: no entry, no partial directory.
        assert "k1" not in store
        assert not (store.root / "k1").exists()

    def test_adopt_refuses_undigested_entries(self, store):
        files = self._files()
        with pytest.raises(StoreCorruptionError, match="digests"):
            store.adopt("k1", files, {"documents": sorted(files)})

    def test_adopt_refuses_invalid_json(self, store):
        data = b"not json"
        entry = {
            "documents": ["config"],
            DIGESTS_KEY: {"config": hashlib.sha256(data).hexdigest()},
        }
        with pytest.raises(StoreCorruptionError, match="not valid JSON"):
            store.adopt("k1", {"config": data}, entry)

    def test_adopt_keeps_existing_entry(self, store):
        store.put("k1", DOCS, meta={"kind": "original"})
        files = self._files()
        store.adopt("k1", files, self._entry_for(files, kind="adopted"))
        assert store.meta("k1")["kind"] == "original"


class TestMergeDigestVerification:
    def test_merge_verifies_source_bytes_against_digests(self, tmp_path):
        a = ArtifactStore(tmp_path / "a")
        b = ArtifactStore(tmp_path / "b")
        b.put("k1", DOCS)
        # Same length, valid JSON, wrong bytes: only the digest check
        # can catch this shard-side corruption.
        path = b.root / "k1" / "a.json"
        path.write_text(path.read_text().replace("1.0", "9.0"))
        with pytest.raises(StoreCorruptionError, match="k1"):
            a.merge_from(b)
        assert "k1" not in a

    def test_corrupt_shard_error_names_repair(self, tmp_path):
        a = ArtifactStore(tmp_path / "a")
        b = ArtifactStore(tmp_path / "b")
        b.put("k1", DOCS)
        (b.root / "k1" / "a.json").write_text('{"values": [9.0]}')
        with pytest.raises(StoreCorruptionError, match="repair"):
            a.merge_from(b)


class TestValidateKey:
    def test_kind_appears_in_message(self):
        with pytest.raises(ValueError, match="campaign id"):
            validate_key("..", kind="campaign id")
