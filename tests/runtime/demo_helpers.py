"""Helpers shared by the chaos/coordinator test modules."""

from repro.runtime import ArtifactStore, run_manifest, write_shard_manifests
from repro.runtime.chaos import demo_codec


def write_demo_shards(directory, cells, n_shards):
    """Shard ``cells`` into demo-codec manifests under ``directory``."""
    codec = demo_codec()
    return write_shard_manifests(
        cells,
        n_shards,
        directory,
        codec.encode_ref,
        decode_ref=codec.decode_ref,
    )


def serial_reference_hash(tmp_path, cells):
    """Content hash of an unperturbed serial run of ``cells``."""
    ref_dir = tmp_path / "serial-ref"
    write_demo_shards(ref_dir, cells, 1)
    run_manifest(ref_dir / "shard-0.json", ref_dir / "store", echo=None)
    return ArtifactStore(ref_dir / "store").content_hash()
