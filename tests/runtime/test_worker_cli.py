"""The shipped ``repro worker`` CLI, driven as a real subprocess."""

from repro.measurement import TraceRepository
from repro.runtime import ShardExecutor
from repro.scenarios import ScenarioCampaign, scenario_matrix


def test_subprocess_shard_roundtrip_matches_serial(tmp_path):
    configs = scenario_matrix(
        providers=("amazon",),
        arrival_rates=(2.0,),
        schedulers=("fifo", "fair"),
        seed=5,
        n_nodes=4,
        n_jobs=3,
        data_scale=0.05,
    )
    serial_repo = TraceRepository(tmp_path / "serial")
    serial = ScenarioCampaign(configs, repository=serial_repo).run()

    shard_repo = TraceRepository(tmp_path / "shard")
    sharded = ScenarioCampaign(
        configs,
        repository=shard_repo,
        executor=ShardExecutor(
            2, work_dir=tmp_path / "work", via_subprocess=True
        ),
    ).run()

    assert sharded.aggregate_rows() == serial.aggregate_rows()
    assert (
        shard_repo.artifacts.content_hash()
        == serial_repo.artifacts.content_hash()
    )


def test_merge_refuses_nonexistent_shard_store(tmp_path, capsys):
    from repro.cli import main

    code = main([
        "merge", str(tmp_path / "no-such-store"),
        "--store", str(tmp_path / "merged"),
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "manifest.json" in err
