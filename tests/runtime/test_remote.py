"""Tests for integrity-verified cross-machine store sync.

The contract under test, end to end: seeded transport faults make
transfers retry and converge, every corruption is detected before it
can land, and a healthy link produces zero failure-named metrics.
"""

import hashlib
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.runtime.remote import (
    SYNC_STATE_NAME,
    FaultyTransport,
    LocalDirTransport,
    RemoteStore,
    RetryPolicy,
    TransportError,
    TransportNotFoundError,
    TransportTimeoutError,
    read_sync_state,
)
from repro.runtime.store import DIGESTS_KEY, MANIFEST_NAME, ArtifactStore

DOCS = {"config": {"seed": 1, "patterns": ["a"]}, "a": {"values": [1.0, 2.0]}}


def make_syncer(tmp_path, transport=None, **kwargs):
    """A RemoteStore over fresh local/remote roots, sleeps recorded."""
    local = ArtifactStore(tmp_path / "local")
    if transport is None:
        transport = LocalDirTransport(tmp_path / "remote")
    kwargs.setdefault("registry", MetricsRegistry())
    syncer = RemoteStore(local, transport, echo=None, **kwargs)
    slept = []
    syncer._sleep = slept.append
    return syncer, slept


def failure_values(registry):
    """Current totals of every failure-named transport counter."""
    names = (
        "repro_transport_retries_total",
        "repro_transport_timeouts_total",
        "repro_transport_refetches_total",
        "repro_transport_reuploads_total",
        "repro_transport_failed_keys_total",
    )
    totals = {}
    for name in names:
        metric = registry._metrics.get(name)
        totals[name] = (
            sum(metric.samples().values()) if metric is not None else 0.0
        )
    return totals


class TestLocalDirTransport:
    def test_roundtrip_and_atomic_landing(self, tmp_path):
        t = LocalDirTransport(tmp_path / "r")
        t.write_bytes("k1/a.json", b'{"x": 1}')
        assert t.read_bytes("k1/a.json") == b'{"x": 1}'
        t.write_bytes("k1/a.json", b'{"x": 2}')
        assert t.read_bytes("k1/a.json") == b'{"x": 2}'
        # temp-then-rename leaves no staging litter behind
        assert [p.name for p in (tmp_path / "r" / "k1").iterdir()] == [
            "a.json"
        ]

    def test_missing_path_is_not_found(self, tmp_path):
        t = LocalDirTransport(tmp_path / "r")
        with pytest.raises(TransportNotFoundError):
            t.read_bytes("nope/a.json")

    def test_unsafe_paths_rejected(self, tmp_path):
        t = LocalDirTransport(tmp_path / "r")
        for crafted in ("../escape", "a/../../b", "", ".", "a//b", "a/\x00b"):
            with pytest.raises(ValueError, match="unsafe"):
                t.read_bytes(crafted)
            with pytest.raises(ValueError, match="unsafe"):
                t.write_bytes(crafted, b"x")


class TestRetryPolicy:
    def test_delay_sequence_is_pinned(self):
        # The exact schedule for the default policy (base 0.25s, cap
        # 10s, seed 0, tag 0).  These literals are the contract: any
        # change to the backoff or jitter math must show up here.
        policy = RetryPolicy()
        delays = [policy.delay_s(0, attempt) for attempt in range(1, 7)]
        assert delays == pytest.approx(
            [0.339585, 0.844381, 1.790665, 2.565849, 7.935350, 15.296180],
            abs=1e-6,
        )

    def test_coordinator_draws_the_same_schedule(self):
        # Worker relaunches and transport retries share one jitter
        # function; a drift between them would silently decorrelate
        # chaos reproductions from their recorded timings.
        from repro.runtime.coordinator import _jitter_frac

        for seed in (0, 7):
            for shard in (0, 3):
                for attempt in (1, 2, 5):
                    assert _jitter_frac(seed, shard, attempt) == RetryPolicy(
                        seed=seed
                    ).jitter_frac(shard, attempt)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(seed=42)
        again = RetryPolicy(seed=42)
        for attempt in range(1, 10):
            frac = policy.jitter_frac("tag", attempt)
            assert frac == again.jitter_frac("tag", attempt)
            assert 0.0 <= frac < 1.0

    def test_cap_bounds_the_uncapped_tail(self):
        policy = RetryPolicy(base_s=0.25, cap_s=1.0, seed=0)
        for attempt in range(1, 20):
            assert policy.delay_s("t", attempt) < 2.0  # cap * (1 + jitter)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay_s("t", 0)


class TestFaultyTransport:
    def test_truncate_upload_halves_the_landing(self, tmp_path):
        inner = LocalDirTransport(tmp_path / "r")
        faulty = FaultyTransport(inner, truncate_upload=1)
        payload = b'{"values": [1.0, 2.0]}'
        faulty.write_bytes("k1/a.json", payload)
        assert inner.read_bytes("k1/a.json") == payload[: len(payload) // 2]
        faulty.write_bytes("k1/a.json", payload)  # budget spent
        assert inner.read_bytes("k1/a.json") == payload

    def test_bit_flip_corrupts_one_read(self, tmp_path):
        inner = LocalDirTransport(tmp_path / "r")
        inner.write_bytes("k1/a.json", b'{"x": 1}')
        faulty = FaultyTransport(inner, bit_flip=1)
        first = faulty.read_bytes("k1/a.json")
        assert first != b'{"x": 1}' and len(first) == len(b'{"x": 1}')
        assert faulty.read_bytes("k1/a.json") == b'{"x": 1}'

    def test_drop_fires_at_the_nth_document(self, tmp_path):
        inner = LocalDirTransport(tmp_path / "r")
        faulty = FaultyTransport(inner, drop_at_document=2)
        faulty.write_bytes("k1/a.json", b"{}")
        with pytest.raises(TransportError, match="document #2"):
            faulty.write_bytes("k1/b.json", b"{}")
        faulty.write_bytes("k1/b.json", b"{}")  # drop budget spent

    def test_stall_beyond_timeout_raises(self, tmp_path):
        inner = LocalDirTransport(tmp_path / "r")
        inner.write_bytes("k1/a.json", b"{}")
        faulty = FaultyTransport(inner, stall_s=5.0)
        with pytest.raises(TransportTimeoutError, match="stalled"):
            faulty.read_bytes("k1/a.json", timeout_s=1.0)
        assert faulty.read_bytes("k1/a.json", timeout_s=1.0) == b"{}"

    def test_manifest_traffic_is_exempt_from_document_faults(self, tmp_path):
        inner = LocalDirTransport(tmp_path / "r")
        inner.write_bytes(MANIFEST_NAME, b"{}")
        faulty = FaultyTransport(inner, bit_flip=5, drop_at_document=1)
        for _ in range(3):  # faults target documents, never the index
            assert faulty.read_bytes(MANIFEST_NAME) == b"{}"


class TestPushPullSync:
    def test_push_then_pull_roundtrips_byte_identically(self, tmp_path):
        syncer, _ = make_syncer(tmp_path)
        syncer.local.put("k1", DOCS, meta={"kind": "x"})
        syncer.local.put("k2", {"config": {"seed": 2}})
        report = syncer.push()
        assert report.ok and sorted(report.pushed) == ["k1", "k2"]
        assert report.documents == 3

        other = ArtifactStore(tmp_path / "other")
        mirror = RemoteStore(
            other, LocalDirTransport(tmp_path / "remote"), echo=None
        )
        pulled = mirror.pull()
        assert pulled.ok and sorted(pulled.pulled) == ["k1", "k2"]
        assert other.content_hash() == syncer.local.content_hash()
        assert other.verify().ok
        assert other.meta("k1")["kind"] == "x"

    def test_second_push_is_a_delta_noop(self, tmp_path):
        syncer, _ = make_syncer(tmp_path)
        syncer.local.put("k1", DOCS)
        assert syncer.push().pushed == ["k1"]
        again = syncer.push()
        assert again.pushed == [] and again.skipped == ["k1"]
        assert again.documents == 0

    def test_pull_skips_keys_already_held(self, tmp_path):
        syncer, _ = make_syncer(tmp_path)
        syncer.local.put("k1", DOCS)
        syncer.push()
        report = syncer.pull()
        assert report.pulled == [] and report.skipped == ["k1"]

    def test_sync_converges_both_sides_to_the_union(self, tmp_path):
        a_store = ArtifactStore(tmp_path / "a")
        b_store = ArtifactStore(tmp_path / "b")
        transport = LocalDirTransport(tmp_path / "remote")
        a_store.put("only-a", DOCS)
        b_store.put("only-b", {"config": {"seed": 2}})
        RemoteStore(a_store, transport, echo=None).sync()
        report = RemoteStore(b_store, transport, echo=None).sync()
        assert report.ok
        assert report.pulled == ["only-a"] and report.pushed == ["only-b"]
        RemoteStore(a_store, transport, echo=None).sync()
        assert a_store.content_hash() == b_store.content_hash()

    def test_push_unknown_key_raises(self, tmp_path):
        syncer, _ = make_syncer(tmp_path)
        with pytest.raises(KeyError, match="nope"):
            syncer.push(keys=["nope"])

    def test_healthy_sync_emits_zero_failure_metrics(self, tmp_path):
        # The operational contract behind the CI chaos job's control
        # arm: on a clean link, every failure-named counter stays 0.
        syncer, slept = make_syncer(tmp_path)
        syncer.local.put("k1", DOCS)
        syncer.local.put("k2", {"config": {"seed": 2}})
        report = syncer.sync()
        assert report.ok
        assert report.retries == report.refetches == report.reuploads == 0
        assert slept == []
        totals = failure_values(syncer.registry)
        assert all(value == 0.0 for value in totals.values()), totals
        docs = syncer.registry._metrics["repro_transport_documents_total"]
        assert docs.value(direction="push") == 3.0

    def test_pushed_remote_is_a_valid_resumable_store(self, tmp_path):
        syncer, _ = make_syncer(tmp_path)
        syncer.local.put("k1", DOCS)
        syncer.push()
        remote_as_store = ArtifactStore(tmp_path / "remote")
        assert remote_as_store.get("k1") == DOCS
        assert remote_as_store.verify().ok


class TestUndigestedTransfer:
    def test_push_backfills_digests_for_legacy_entries(self, tmp_path):
        syncer, _ = make_syncer(tmp_path)
        syncer.local.put("legacy", DOCS)
        manifest_path = syncer.local.root / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["legacy"].pop(DIGESTS_KEY)
        manifest["legacy"].pop("documents")
        manifest_path.write_text(json.dumps(manifest))
        assert syncer.push().pushed == ["legacy"]
        remote = json.loads(
            (tmp_path / "remote" / MANIFEST_NAME).read_text()
        )
        assert sorted(remote["legacy"][DIGESTS_KEY]) == ["a", "config"]


class TestFaultConvergence:
    def test_truncated_upload_is_reuploaded(self, tmp_path):
        transport = FaultyTransport(
            LocalDirTransport(tmp_path / "remote"), truncate_upload=1
        )
        syncer, slept = make_syncer(tmp_path, transport=transport)
        syncer.local.put("k1", DOCS)
        report = syncer.push()
        assert report.ok and report.pushed == ["k1"]
        assert report.reuploads == 1
        other = ArtifactStore(tmp_path / "other")
        RemoteStore(
            other, LocalDirTransport(tmp_path / "remote"), echo=None
        ).pull()
        assert other.content_hash() == syncer.local.content_hash()

    def test_bit_flip_in_transit_is_refetched(self, tmp_path):
        src, _ = make_syncer(tmp_path)
        src.local.put("k1", DOCS)
        src.push()
        transport = FaultyTransport(
            LocalDirTransport(tmp_path / "remote"), bit_flip=1
        )
        dst = RemoteStore(
            ArtifactStore(tmp_path / "dst"), transport, echo=None
        )
        report = dst.pull()
        assert report.ok and report.pulled == ["k1"]
        assert report.refetches == 1
        assert dst.local.verify().ok
        assert dst.local.content_hash() == src.local.content_hash()

    def test_dropped_transfer_is_retried_to_convergence(self, tmp_path):
        transport = FaultyTransport(
            LocalDirTransport(tmp_path / "remote"), drop_at_document=2
        )
        syncer, slept = make_syncer(tmp_path, transport=transport)
        syncer.local.put("k1", DOCS)
        report = syncer.push()
        assert report.ok and report.retries == 1
        assert len(slept) == 1  # one backoff sleep, schedule-driven
        # document #2 is the read-back of the first written document
        assert slept[0] == syncer.backoff.delay_s("read:k1/a.json", 1)

    def test_stalled_transport_times_out_then_converges(self, tmp_path):
        inner = LocalDirTransport(tmp_path / "remote")
        transport = FaultyTransport(inner, stall_s=60.0)
        syncer, slept = make_syncer(
            tmp_path, transport=transport, timeout_s=0.5
        )
        syncer.local.put("k1", DOCS)
        report = syncer.push()
        assert report.ok and report.retries == 1
        totals = failure_values(syncer.registry)
        assert totals["repro_transport_timeouts_total"] == 1.0

    def test_persistent_corruption_never_lands(self, tmp_path):
        # Every fetch of every document corrupt: the pull must exhaust
        # its budget, fail the key loudly, and leave the local store
        # exactly as valid as before — zero corrupt documents adopted.
        src, _ = make_syncer(tmp_path)
        src.local.put("k1", DOCS)
        src.push()
        transport = FaultyTransport(
            LocalDirTransport(tmp_path / "remote"), bit_flip=99
        )
        dst = RemoteStore(
            ArtifactStore(tmp_path / "dst"), transport, retries=2, echo=None
        )
        dst.local.put("healthy", {"config": {"seed": 9}})
        report = dst.pull()
        assert not report.ok
        assert set(report.failed) == {"k1"}
        assert "digest mismatch" in report.failed["k1"]
        assert report.refetches == 2  # bounded by the retry budget
        assert "k1" not in dst.local
        assert dst.local.verify().ok
        assert dst.local.keys() == ["healthy"]

    def test_unreachable_remote_manifest_degrades_gracefully(self, tmp_path):
        class DeadTransport(LocalDirTransport):
            def read_bytes(self, relpath, timeout_s=None):
                raise TransportError("link down")

        dst = RemoteStore(
            ArtifactStore(tmp_path / "dst"),
            DeadTransport(tmp_path / "remote"),
            retries=1,
            echo=None,
        )
        dst._sleep = lambda s: None
        report = dst.pull()
        assert not report.ok
        assert MANIFEST_NAME in report.failed
        assert dst.local.verify().ok

    def test_corrupt_local_document_fails_its_key_only(self, tmp_path):
        syncer, _ = make_syncer(tmp_path)
        syncer.local.put("good", DOCS)
        syncer.local.put("bad", DOCS)
        (syncer.local.root / "bad" / "a.json").write_text('{"values": [9]}')
        report = syncer.push()
        assert report.pushed == ["good"]
        assert "bad" in report.failed
        assert "repair" in report.failed["bad"]


class TestSyncState:
    def test_sidecar_records_each_direction(self, tmp_path):
        syncer, _ = make_syncer(tmp_path)
        syncer.local.put("k1", DOCS)
        syncer.push()
        syncer.pull()
        state = read_sync_state(syncer.local.root)
        assert state is not None
        assert state["push"]["pushed"] == 1
        assert state["pull"]["skipped"] == 1
        assert state["push"]["failed"] == {}

    def test_sidecar_is_invisible_to_store_integrity(self, tmp_path):
        syncer, _ = make_syncer(tmp_path)
        syncer.local.put("k1", DOCS)
        before = syncer.local.content_hash()
        syncer.push()
        assert (syncer.local.root / SYNC_STATE_NAME).exists()
        assert syncer.local.content_hash() == before
        report = syncer.local.verify()
        assert report.ok and report.orphans == []

    def test_reader_tolerates_absence_and_garbage(self, tmp_path):
        assert read_sync_state(tmp_path) is None
        (tmp_path / SYNC_STATE_NAME).write_text("{torn")
        assert read_sync_state(tmp_path) is None
        (tmp_path / SYNC_STATE_NAME).write_text('{"schema": 99}')
        assert read_sync_state(tmp_path) is None
