"""Chaos harness: injected faults, and convergence despite them.

The campaign fabric's central robustness claim is *convergence*: a
campaign interrupted by worker deaths anywhere — including inside the
store's put window — must, after supervision and resume, merge to a
store byte-identical to an unperturbed serial run.  These tests drive
real ``repro worker`` subprocesses through :func:`run_campaign` with
:mod:`repro.runtime.chaos` armed and assert exactly that.
"""

import json
import os
import subprocess
import sys

import pytest

from demo_helpers import serial_reference_hash, write_demo_shards

from repro.runtime import ArtifactStore, run_campaign
from repro.runtime.chaos import (
    ChaosInjector,
    ChaosPoisonError,
    active_injector,
    deactivate,
    demo_matrix,
)


def _campaign(shard_dir, store_root, **kwargs):
    kwargs.setdefault("lease_ttl_s", 10.0)
    kwargs.setdefault("poll_s", 0.05)
    kwargs.setdefault("backoff_base_s", 0.05)
    kwargs.setdefault("backoff_cap_s", 0.2)
    kwargs.setdefault("max_wall_s", 120.0)
    kwargs.setdefault("echo", None)
    return run_campaign(shard_dir, store_root=store_root, **kwargs)


class TestInjectorConfig:
    def test_from_file_parses_all_fault_fields(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps({
            "schema": 1,
            "state_dir": str(tmp_path / "state"),
            "only_worker": "w0-a1",
            "kill_at_cell": {"index": 2, "times": 1},
            "poison_keys": ["cell-abc"],
            "flaky": {"cell-def": 2},
            "slow_keys": {"cell-ghi": 0.5},
            "slow_cell_s": 0.1,
        }))
        injector = ChaosInjector.from_file(path)
        assert injector.only_worker == "w0-a1"
        assert injector.kill_at_cell == {"index": 2, "times": 1}
        assert injector.poison_keys == frozenset({"cell-abc"})
        assert injector.flaky == {"cell-def": 2}
        assert injector.slow_keys == {"cell-ghi": 0.5}
        assert injector.slow_cell_s == 0.1

    def test_kill_faults_require_state_dir(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps({
            "schema": 1, "kill_at_cell": {"index": 0},
        }))
        with pytest.raises(ValueError, match="state_dir"):
            ChaosInjector.from_file(path)

    def test_unknown_schema_refused(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ValueError, match="schema"):
            ChaosInjector.from_file(path)

    def test_claim_fires_exactly_n_times(self, tmp_path):
        injector = ChaosInjector(
            config_path="x", state_dir=tmp_path / "state"
        )
        fired = [injector._claim("tag", 2) for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_poison_raises_every_time(self, tmp_path):
        injector = ChaosInjector(
            config_path="x", poison_keys=frozenset({"cell-bad"})
        )
        for _ in range(3):
            with pytest.raises(ChaosPoisonError):
                injector.before_cell("cell-bad")
        injector.before_cell("cell-fine")

    def test_env_activation_roundtrip(self, tmp_path, chaos_env):
        assert active_injector() is None
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps({"schema": 1}))
        chaos_env(path)
        armed = active_injector()
        assert armed is not None and armed.config_path == str(path)
        deactivate()


class TestKillConvergence:
    @pytest.mark.parametrize("kill_index", [0, 1])
    def test_kill_at_cell_converges_to_serial(
        self, tmp_path, demo_cells, chaos_env, kill_index
    ):
        """SIGKILL a worker at cell N; the campaign must still converge.

        Each shard holds one 2-link chain, so index 0 kills before any
        progress and index 1 kills mid-chain — the resume must then
        rebuild the stored predecessor's result through the decode ref.
        """
        reference = serial_reference_hash(tmp_path, demo_cells)
        shard_dir = tmp_path / "shards"
        write_demo_shards(shard_dir, demo_cells, 2)
        config = tmp_path / "chaos.json"
        config.write_text(json.dumps({
            "schema": 1,
            "state_dir": str(tmp_path / "chaos-state"),
            "kill_at_cell": {"index": kill_index, "times": 1},
        }))
        chaos_env(config)
        summary = _campaign(shard_dir, tmp_path / "merged")
        assert summary["ok"]
        assert summary["deaths"] >= 1
        assert summary["merged"]["content_hash"] == reference

    def test_kill_mid_put_leaves_no_corruption_and_resumes(
        self, tmp_path, demo_cells, chaos_env
    ):
        """SIGKILL between document writes and the manifest entry.

        The write-ordering contract says the store must afterwards hold
        either nothing for the key (orphan files at worst) — never a
        manifested artifact that fails verification — and a plain
        re-run must converge.
        """
        reference = serial_reference_hash(tmp_path, demo_cells)
        shard_dir = tmp_path / "shards"
        (manifest,) = write_demo_shards(shard_dir, demo_cells, 1)
        victim = json.loads(manifest.read_text())["cells"][0]["key"]
        config = tmp_path / "chaos.json"
        config.write_text(json.dumps({
            "schema": 1,
            "state_dir": str(tmp_path / "chaos-state"),
            "kill_in_put": {"key": victim, "times": 1},
        }))
        store_root = tmp_path / "store"
        env = dict(os.environ)
        env["REPRO_CHAOS"] = str(config)
        cmd = [sys.executable, "-m", "repro", "worker", str(manifest),
               "--store", str(store_root)]
        first = subprocess.run(cmd, env=env, capture_output=True, text=True)
        assert first.returncode == -9
        report = ArtifactStore(store_root).verify()
        assert report.ok  # orphans allowed, corruption not
        assert victim not in ArtifactStore(store_root).keys()

        second = subprocess.run(cmd, env=env, capture_output=True, text=True)
        assert second.returncode == 0, second.stderr
        assert ArtifactStore(store_root).content_hash() == reference


class TestFlakyRetry:
    def test_flaky_cell_survives_on_retry(
        self, tmp_path, demo_cells, chaos_env
    ):
        """A cell failing once is retried and the campaign stays whole."""
        reference = serial_reference_hash(tmp_path, demo_cells)
        shard_dir = tmp_path / "shards"
        manifests = write_demo_shards(shard_dir, demo_cells, 2)
        flaky = json.loads(manifests[0].read_text())["cells"][0]["key"]
        config = tmp_path / "chaos.json"
        config.write_text(json.dumps({
            "schema": 1,
            "state_dir": str(tmp_path / "chaos-state"),
            "flaky": {flaky: 1},
        }))
        chaos_env(config)
        summary = _campaign(shard_dir, tmp_path / "merged", max_retries=2)
        assert summary["ok"]
        assert summary["deaths"] == 1
        assert summary["quarantined"] == ()
        assert summary["merged"]["content_hash"] == reference


class TestTransportFaultConfig:
    def test_from_file_parses_transport_section(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps({
            "schema": 1,
            "state_dir": str(tmp_path / "state"),
            "transport": {
                "truncate_upload": {"times": 2},
                "bit_flip": {"times": 1},
                "drop_at_document": {"index": 3, "times": 1},
                "stall": {"delay_s": 0.5, "times": 1},
            },
        }))
        injector = ChaosInjector.from_file(path)
        wrapped = injector.wrap_transport(object())
        assert wrapped is not None
        assert wrapped.truncate_upload == 2
        assert wrapped.bit_flip == 1
        assert wrapped.drop_at_document == 3
        assert wrapped.stall_s == 0.5

    def test_transport_faults_require_state_dir(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps({
            "schema": 1, "transport": {"bit_flip": {"times": 1}},
        }))
        with pytest.raises(ValueError, match="state_dir"):
            ChaosInjector.from_file(path)

    def test_wrap_transport_without_faults_is_none(self, tmp_path):
        injector = ChaosInjector(config_path="x")
        assert injector.wrap_transport(object()) is None

    def test_fault_budget_is_shared_across_wrappers(self, tmp_path):
        # Two wrapped transports (two worker processes, in spirit)
        # share one O_EXCL-claimed budget: the fault fires exactly
        # ``times`` in total, not per wrapper.
        from repro.runtime.remote import LocalDirTransport

        injector = ChaosInjector(
            config_path="x",
            state_dir=tmp_path / "state",
            transport={"bit_flip": {"times": 1}},
        )
        inner = LocalDirTransport(tmp_path / "remote")
        inner.write_bytes("k1/a.json", b'{"x": 1}')
        first = injector.wrap_transport(inner)
        second = injector.wrap_transport(inner)
        reads = [
            t.read_bytes("k1/a.json") for t in (first, second, first, second)
        ]
        assert sum(r != b'{"x": 1}' for r in reads) == 1

    def test_open_transport_is_chaos_armed(self, tmp_path, chaos_env):
        from repro.runtime.remote import (
            FaultyTransport,
            LocalDirTransport,
            open_transport,
        )

        assert isinstance(
            open_transport(tmp_path / "remote"), LocalDirTransport
        )
        config = tmp_path / "chaos.json"
        config.write_text(json.dumps({
            "schema": 1,
            "state_dir": str(tmp_path / "state"),
            "transport": {"bit_flip": {"times": 1}},
        }))
        chaos_env(config)
        deactivate()  # force re-read of the env var
        assert isinstance(
            open_transport(tmp_path / "remote"), FaultyTransport
        )


class TestTransportChaosConvergence:
    def test_transport_faults_converge_to_serial(
        self, tmp_path, demo_cells, chaos_env
    ):
        """Truncate, bit-flip, and drop sync traffic; convergence holds.

        A 2-shard campaign pushes through chaos-wrapped transports to
        per-shard remote stores and the coordinator pulls them back
        before the merge: despite every seeded fault, the merged store
        must hash identically to a serial run, every remote store must
        pass verification, and nothing corrupt may carry a manifest
        entry anywhere.
        """
        reference = serial_reference_hash(tmp_path, demo_cells)
        shard_dir = tmp_path / "shards"
        write_demo_shards(shard_dir, demo_cells, 2)
        config = tmp_path / "chaos.json"
        config.write_text(json.dumps({
            "schema": 1,
            "state_dir": str(tmp_path / "chaos-state"),
            "transport": {
                "truncate_upload": {"times": 1},
                "bit_flip": {"times": 1},
                "drop_at_document": {"index": 2, "times": 1},
            },
        }))
        chaos_env(config)
        summary = _campaign(
            shard_dir, tmp_path / "merged", remote_root=tmp_path / "remote"
        )
        assert summary["ok"]
        assert summary["merged"]["content_hash"] == reference
        assert summary["transport"]["failed"] == {}
        for index in range(2):
            remote = ArtifactStore(
                tmp_path / "remote" / f"shard-{index}-store"
            )
            assert remote.verify().ok
            assert len(remote.keys()) > 0


class TestDemoCampaign:
    def test_demo_matrix_chains_and_determinism(self):
        cells = demo_matrix(n_chains=2, chain_len=3, seed=7)
        assert len(cells) == 6
        again = demo_matrix(n_chains=2, chain_len=3, seed=7)
        assert [c.key for c in cells] == [c.key for c in again]
        chains = [c for c in cells if c.after is not None]
        assert len(chains) == 4  # every non-head link chains

    def test_demo_cell_accumulates_upstream(self):
        from repro.runtime.chaos import demo_cell

        first = demo_cell({"seed": 1})
        second = demo_cell({"seed": 2}, first)
        assert second["acc"] == second["value"] + first["acc"]
