"""Leases, the supervisor, quarantine, stealing, and the obs contract."""

import json
import os
import subprocess
import sys
import time

import pytest

from demo_helpers import serial_reference_hash, write_demo_shards

from repro.obs.metrics import MetricsRegistry
from repro.runtime import (
    ArtifactStore,
    LeaseHeartbeat,
    LeaseLostError,
    acquire_lease,
    lease_path_for,
    merge_stores,
    release_lease,
    renew_lease,
    run_campaign,
)
from repro.runtime.chaos import demo_matrix
from repro.runtime.coordinator import lease_expired, read_lease


def _campaign(shard_dir, store_root, **kwargs):
    kwargs.setdefault("lease_ttl_s", 10.0)
    kwargs.setdefault("poll_s", 0.05)
    kwargs.setdefault("backoff_base_s", 0.05)
    kwargs.setdefault("backoff_cap_s", 0.2)
    kwargs.setdefault("max_wall_s", 120.0)
    kwargs.setdefault("echo", None)
    return run_campaign(shard_dir, store_root=store_root, **kwargs)


class TestLeases:
    def test_acquire_renew_release_roundtrip(self, tmp_path):
        path = tmp_path / "shard-0.lease.json"
        lease = acquire_lease(path, worker_id="w0", ttl_s=30.0)
        assert read_lease(path)["worker_id"] == "w0"
        renewed = renew_lease(path, lease["token"])
        assert renewed["renewed_unix_s"] >= lease["renewed_unix_s"]
        release_lease(path, lease["token"])
        assert read_lease(path) is None

    def test_live_foreign_lease_refused(self, tmp_path):
        path = tmp_path / "lease.json"
        acquire_lease(path, worker_id="w0", ttl_s=30.0)
        with pytest.raises(LeaseLostError, match="held by 'w0'"):
            acquire_lease(path, worker_id="w1", ttl_s=30.0)

    def test_expired_lease_is_taken_over(self, tmp_path):
        path = tmp_path / "lease.json"
        old = acquire_lease(
            path, worker_id="w0", ttl_s=5.0, now=time.time() - 60.0
        )
        taken = acquire_lease(path, worker_id="w1", ttl_s=5.0)
        assert taken["worker_id"] == "w1"
        # The usurped worker's next renewal must be fenced off.
        with pytest.raises(LeaseLostError, match="reassigned"):
            renew_lease(path, old["token"])

    def test_expiry_predicate(self):
        lease = {"renewed_unix_s": 100.0, "ttl_s": 10.0}
        assert not lease_expired(lease, now=105.0)
        assert lease_expired(lease, now=111.0)

    def test_expiry_tolerates_clock_skew(self):
        # A reader on a clock running ahead of the renewing worker (a
        # slowly-synced shared filesystem, loose NTP) must not fence a
        # live worker: skew_s widens the expiry margin by exactly that
        # grace, and a negative skew never *narrows* it.
        lease = {"renewed_unix_s": 100.0, "ttl_s": 10.0}
        assert lease_expired(lease, now=111.0, skew_s=0.0)
        assert not lease_expired(lease, now=111.0, skew_s=2.0)
        assert not lease_expired(lease, now=112.0, skew_s=2.0)
        assert lease_expired(lease, now=112.5, skew_s=2.0)
        assert lease_expired(lease, now=111.0, skew_s=-5.0)  # clamped to 0
        assert not lease_expired(lease, now=110.0, skew_s=-5.0)

    def test_release_is_noop_after_usurpation(self, tmp_path):
        path = tmp_path / "lease.json"
        old = acquire_lease(
            path, worker_id="w0", ttl_s=5.0, now=time.time() - 60.0
        )
        acquire_lease(path, worker_id="w1", ttl_s=30.0)
        release_lease(path, old["token"])
        assert read_lease(path)["worker_id"] == "w1"

    def test_lease_path_pairs_with_manifest(self, tmp_path):
        assert lease_path_for(tmp_path / "shard-3.json") == (
            tmp_path / "shard-3.lease.json"
        )


class TestLeaseHeartbeat:
    def test_heartbeat_renews_until_stopped(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = acquire_lease(path, worker_id="w0", ttl_s=30.0)
        hb = LeaseHeartbeat(path, lease["token"], interval_s=0.05)
        hb.start()
        try:
            before = read_lease(path)["renewed_unix_s"]
            time.sleep(0.3)
            assert read_lease(path)["renewed_unix_s"] > before
            assert not hb.lost
        finally:
            hb.stop()

    def test_heartbeat_flags_lost_lease(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = acquire_lease(path, worker_id="w0", ttl_s=30.0)
        hb = LeaseHeartbeat(path, lease["token"], interval_s=0.05)
        hb.start()
        try:
            path.unlink()  # the coordinator broke the lease
            deadline = time.time() + 5.0
            while not hb.lost and time.time() < deadline:
                time.sleep(0.02)
            assert hb.lost
        finally:
            hb.stop()


class TestBackoffSchedule:
    def test_relaunch_delay_sequence_is_pinned(self):
        # The exact relaunch schedule for backoff_base_s=0.05,
        # backoff_cap_s=0.2, seed=7 — per shard, per death count.
        # run_campaign builds this same RetryPolicy, so these literals
        # pin the coordinator's timing contract.
        from repro.runtime.remote import RetryPolicy

        policy = RetryPolicy(base_s=0.05, cap_s=0.2, seed=7)
        shard0 = [policy.delay_s(0, deaths) for deaths in range(1, 6)]
        assert shard0 == pytest.approx(
            [0.081003, 0.167720, 0.238620, 0.227004, 0.261614], abs=1e-6
        )
        # A different shard draws a different (but equally pinned) jitter.
        shard1 = [policy.delay_s(1, deaths) for deaths in range(1, 3)]
        assert shard1 == pytest.approx([0.055683, 0.124897], abs=1e-6)

    def test_jitter_frac_matches_retry_policy(self):
        from repro.runtime.coordinator import _jitter_frac
        from repro.runtime.remote import RetryPolicy

        assert _jitter_frac(7, 0, 3) == RetryPolicy(seed=7).jitter_frac(0, 3)


class TestPoisonQuarantine:
    def test_poison_cell_is_quarantined_and_named_exactly(
        self, tmp_path, demo_cells, chaos_env
    ):
        """A poison cell costs its chain, never the campaign.

        ``failures.json`` must name *exactly* the poison cell as failed
        (its chained successor is a blocked casualty, reported
        separately), and the partial merge must equal the serial store
        minus precisely that chain.
        """
        # The serial reference must run before chaos is armed — the
        # injector is in-process for run_manifest.
        ref_dir = tmp_path / "ref"
        write_demo_shards(ref_dir, demo_cells, 1)
        from repro.runtime import run_manifest
        run_manifest(ref_dir / "shard-0.json", ref_dir / "store", echo=None)
        reference = ArtifactStore(ref_dir / "store")

        shard_dir = tmp_path / "shards"
        manifests = write_demo_shards(shard_dir, demo_cells, 2)
        entries = json.loads(manifests[1].read_text())["cells"]
        poison = entries[0]["key"]
        config = tmp_path / "chaos.json"
        config.write_text(json.dumps({
            "schema": 1, "poison_keys": [poison],
        }))
        chaos_env(config)
        summary = _campaign(
            shard_dir, tmp_path / "merged",
            max_retries=1, allow_partial=True,
        )
        assert not summary["ok"]
        assert summary["quarantined"] == (poison,)
        assert len(summary["blocked"]) == 1

        report = json.loads((shard_dir / "failures.json").read_text())
        assert list(report["cells"]) == [poison]
        assert report["blocked"] == list(summary["blocked"])

        # Partial merge: serial store minus exactly the poisoned chain.
        merged = ArtifactStore(tmp_path / "merged")
        missing = set(reference.keys()) - set(merged.keys())
        assert missing == {poison} | set(summary["blocked"])

    def test_merge_refuses_partial_without_flag(
        self, tmp_path, demo_cells, chaos_env
    ):
        shard_dir = tmp_path / "shards"
        manifests = write_demo_shards(shard_dir, demo_cells, 2)
        poison = json.loads(manifests[0].read_text())["cells"][0]["key"]
        config = tmp_path / "chaos.json"
        config.write_text(json.dumps({"schema": 1, "poison_keys": [poison]}))
        chaos_env(config)
        summary = _campaign(
            shard_dir, tmp_path / "merged", max_retries=0,
        )
        assert not summary["ok"]
        assert summary["merged"] is None  # merge skipped, not partial
        stores = [shard_dir / f"shard-{i}-store" for i in range(2)]
        with pytest.raises(ValueError, match="allow-partial"):
            merge_stores(stores, tmp_path / "merged2")
        partial = merge_stores(
            stores, tmp_path / "merged2", allow_partial=True
        )
        assert poison in partial["failed"]


class TestWorkStealing:
    def test_idle_worker_steals_pending_chains(self, tmp_path, chaos_env):
        """A fast shard steals from a slow one and the result converges.

        Shard 1's first worker is slowed to a crawl; shard 0 finishes,
        steals pending chains from it, and the campaign must finish
        with at least one steal, byte-identical to serial.
        """
        cells = demo_matrix(n_chains=6, chain_len=2, seed=4)
        reference = serial_reference_hash(tmp_path, cells)
        shard_dir = tmp_path / "shards"
        write_demo_shards(shard_dir, cells, 2)
        config = tmp_path / "chaos.json"
        config.write_text(json.dumps({
            "schema": 1, "only_worker": "w1-a1", "slow_cell_s": 1.5,
        }))
        chaos_env(config)
        registry = MetricsRegistry()
        summary = _campaign(
            shard_dir, tmp_path / "merged",
            registry=registry, max_wall_s=180.0,
        )
        assert summary["ok"]
        assert summary["steals"] >= 1
        assert summary["merged"]["content_hash"] == reference
        steals = registry.counter("repro_coordinator_steals_total")
        assert sum(steals.samples().values()) == summary["steals"]

    def test_no_steal_flag_disables_stealing(self, tmp_path, demo_cells):
        shard_dir = tmp_path / "shards"
        write_demo_shards(shard_dir, demo_cells, 2)
        summary = _campaign(shard_dir, tmp_path / "merged", steal=False)
        assert summary["ok"]
        assert summary["steals"] == 0


class TestHealthyRunObservability:
    def test_healthy_campaign_emits_zero_failure_path_events(
        self, tmp_path, demo_cells
    ):
        """No chaos, no deaths: every failure-path counter stays zero
        and no failure-path event line is logged."""
        shard_dir = tmp_path / "shards"
        write_demo_shards(shard_dir, demo_cells, 2)
        registry = MetricsRegistry()
        lines = []
        summary = _campaign(
            shard_dir, tmp_path / "merged",
            registry=registry, echo=lines.append,
        )
        assert summary["ok"]
        assert summary["deaths"] == 0
        for name in (
            "repro_coordinator_worker_deaths_total",
            "repro_coordinator_cell_retries_total",
            "repro_coordinator_reassignments_total",
            "repro_coordinator_steals_total",
            "repro_coordinator_poison_cells_total",
        ):
            assert sum(registry.counter(name).samples().values()) == 0.0
        text = "\n".join(lines)
        assert "component=coordinator" in text
        assert "event=campaign_start" in text
        assert "event=campaign_done" in text
        for event in (
            "worker_dead", "cell_retry", "cell_quarantined", "steal",
            "merge_skipped",
        ):
            assert f"event={event}" not in text


class TestWorkerCliExitCodes:
    def _worker(self, manifest, store, *extra):
        cmd = [sys.executable, "-m", "repro", "worker", str(manifest),
               "--store", str(store), *extra]
        return subprocess.run(
            cmd, env=dict(os.environ), capture_output=True, text=True
        )

    def test_exit_0_on_success_and_3_on_held_lease(
        self, tmp_path, demo_cells
    ):
        shard_dir = tmp_path / "shards"
        (manifest,) = write_demo_shards(shard_dir, demo_cells, 1)
        lease = lease_path_for(manifest)
        acquire_lease(lease, worker_id="other", ttl_s=300.0)
        held = self._worker(
            manifest, tmp_path / "store", "--lease", str(lease)
        )
        assert held.returncode == 3
        assert "retryable" in held.stderr

        release_lease(lease, read_lease(lease)["token"])
        ok = self._worker(
            manifest, tmp_path / "store", "--lease", str(lease),
            "--worker-id", "w0-test",
        )
        assert ok.returncode == 0, ok.stderr
        # The lease is released on clean exit.
        assert read_lease(lease) is None

    def test_exit_4_when_failures_recorded(self, tmp_path, demo_cells):
        from repro.runtime.worker import (
            FAILURES_NAME,
            revoked_path_for,
            write_failures,
            write_revoked,
        )

        shard_dir = tmp_path / "shards"
        (manifest,) = write_demo_shards(shard_dir, demo_cells, 1)
        entries = json.loads(manifest.read_text())["cells"]
        poison, blocked = entries[0]["key"], entries[1]["key"]
        store_root = tmp_path / "store"
        store_root.mkdir()
        # The coordinator quarantined the first chain: revoked from the
        # worker, recorded as failed/blocked in the store.
        write_revoked(revoked_path_for(manifest), [poison, blocked])
        write_failures(
            store_root / FAILURES_NAME,
            {poison: {"error": "poison"}},
            blocked=[blocked],
        )
        result = self._worker(manifest, store_root)
        assert result.returncode == 4
        assert "failures" in result.stderr

    def test_exit_2_on_config_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 1}))  # no encode/cells
        result = self._worker(bad, tmp_path / "store")
        assert result.returncode == 2
