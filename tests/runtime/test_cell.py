"""Tests for the cell abstraction."""

import pytest

from repro.runtime.cell import Cell, cell_key, execute_cell, resolve_ref


def double(payload):
    return payload["x"] * 2


class TestResolveRef:
    def test_resolves_module_attr(self):
        fn = resolve_ref("tests.runtime.test_cell:double")
        assert fn({"x": 4}) == 8

    def test_rejects_malformed_refs(self):
        for ref in ("no_colon", ":attr", "module:"):
            with pytest.raises(ValueError):
                resolve_ref(ref)

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            resolve_ref("json:__name__")


class TestCell:
    def test_default_key_is_content_hash(self):
        a = Cell(fn="m:f", payload={"x": 1})
        b = Cell(fn="m:f", payload={"x": 1})
        c = Cell(fn="m:f", payload={"x": 2})
        assert a.key == b.key
        assert a.key != c.key
        assert a.key.startswith("cell-")
        assert a.key == cell_key("m:f", {"x": 1})

    def test_key_ignores_dict_ordering(self):
        a = Cell(fn="m:f", payload={"x": 1, "y": 2})
        b = Cell(fn="m:f", payload={"y": 2, "x": 1})
        assert a.key == b.key

    def test_explicit_key_preserved(self):
        cell = Cell(fn="m:f", payload={}, key="scn-abc123")
        assert cell.key == "scn-abc123"

    def test_non_json_payload_rejected(self):
        with pytest.raises(ValueError):
            Cell(fn="m:f", payload={"x": object()})

    def test_fn_must_be_reference(self):
        with pytest.raises(ValueError):
            Cell(fn="not_a_ref", payload={})

    def test_payload_canonicalized_through_json(self):
        # Tuples become lists eagerly, so the key computed here matches
        # the key a worker recomputes after a manifest round-trip.
        cell = Cell(fn="m:f", payload={"xs": (1, 2)})
        assert cell.payload == {"xs": [1, 2]}

    def test_manifest_roundtrip(self):
        cell = Cell(fn="tests.runtime.test_cell:double", payload={"x": 3})
        clone = Cell.from_entry(cell.to_entry())
        assert clone == cell
        assert execute_cell(clone) == (cell.key, 6)
