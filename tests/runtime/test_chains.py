"""Warm-fabric chain tests for the runtime layer.

Chained cells (``after`` set) must execute in dependency order with
the predecessor's result fed downstream, stay whole on one shard, and
remain byte-identical across serial / pool / sharded execution — the
same equivalence contract unchained matrices already pin.
"""

import json

import pytest

from repro.measurement import TraceRepository
from repro.runtime import (
    ArtifactStore,
    Cell,
    ProcessPoolExecutor,
    SerialExecutor,
    ShardExecutor,
    cell_components,
    order_cells,
    partition_cells,
    run_manifest,
)
from repro.scenarios import (
    ScenarioCampaign,
    ScenarioConfig,
    chain_scenarios,
    scenario_cells,
)

FAST = dict(n_nodes=4, n_jobs=2, data_scale=0.05)


def fast_chain(length=3, seed=5, scheduler="fair", **kwargs):
    base = ScenarioConfig(seed=seed, scheduler=scheduler, **FAST, **kwargs)
    return chain_scenarios(base, length)


class TestCellAfter:
    def test_after_changes_default_key(self):
        plain = Cell(fn="m:f", payload={"x": 1})
        chained = Cell(fn="m:f", payload={"x": 1}, after=plain.key)
        assert chained.key != plain.key
        # Unchained hashing is unchanged, so existing stores stay warm.
        assert plain.key == Cell(fn="m:f", payload={"x": 1}).key

    def test_entry_roundtrip_preserves_after(self):
        cell = Cell(fn="m:f", payload={}, key="k1", after="k0")
        again = Cell.from_entry(json.loads(json.dumps(cell.to_entry())))
        assert again.after == "k0"
        assert Cell.from_entry(Cell(fn="m:f", payload={}).to_entry()).after is None

    def test_self_chain_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            Cell(fn="m:f", payload={}, key="k", after="k")

    def test_order_cells_puts_predecessors_first(self):
        a = Cell(fn="m:f", payload={"i": 0}, key="a")
        b = Cell(fn="m:f", payload={"i": 1}, key="b", after="a")
        c = Cell(fn="m:f", payload={"i": 2}, key="c", after="b")
        ordered = order_cells([c, b, a])
        assert [cell.key for cell in ordered] == ["a", "b", "c"]
        # Links to keys outside the set do not constrain the order.
        ordered = order_cells([c, b])
        assert [cell.key for cell in ordered] == ["b", "c"]

    def test_order_cells_detects_cycles(self):
        a = Cell(fn="m:f", payload={"i": 0}, key="a", after="b")
        b = Cell(fn="m:f", payload={"i": 1}, key="b", after="a")
        with pytest.raises(ValueError, match="cycle"):
            order_cells([a, b])


class TestChainPartition:
    def test_chains_stay_on_one_shard(self):
        cells = scenario_cells(fast_chain(3) + fast_chain(3, seed=77))
        for n_shards in (2, 3, 4):
            shards = partition_cells(cells, n_shards)
            for shard in shards:
                keys = {cell.key for cell in shard}
                for cell in shard:
                    if cell.after is not None:
                        assert cell.after in keys
        components = cell_components(cells)
        assert sorted(len(c) for c in components) == [3, 3]

    def test_chainless_partition_matches_historical_layout(self):
        cells = [Cell(fn="m:f", payload={"i": i}) for i in range(7)]
        ordered = sorted(cells, key=lambda cell: cell.key)
        expected = [
            [cell.key for cell in ordered[i::3]] for i in range(3)
        ]
        got = [
            [cell.key for cell in shard] for shard in partition_cells(cells, 3)
        ]
        assert got == expected


class TestChainedExecutorEquivalence:
    def test_chain_serial_pool_and_sharded_identical(self, tmp_path):
        configs = fast_chain(3) + fast_chain(2, seed=77, scheduler="preempt")

        serial_repo = TraceRepository(tmp_path / "serial")
        serial = ScenarioCampaign(
            configs, repository=serial_repo, executor=SerialExecutor()
        ).run()
        pool_repo = TraceRepository(tmp_path / "pool")
        pool = ScenarioCampaign(
            configs, repository=pool_repo, executor=ProcessPoolExecutor(3)
        ).run()
        shard_repo = TraceRepository(tmp_path / "shard")
        sharded = ScenarioCampaign(
            configs,
            repository=shard_repo,
            executor=ShardExecutor(2, work_dir=tmp_path / "work"),
        ).run()

        rows = serial.aggregate_rows()
        assert pool.aggregate_rows() == rows
        assert sharded.aggregate_rows() == rows
        serial_hash = serial_repo.artifacts.content_hash()
        assert pool_repo.artifacts.content_hash() == serial_hash
        assert shard_repo.artifacts.content_hash() == serial_hash

    def test_cached_predecessor_feeds_pending_successor(self, tmp_path):
        configs = fast_chain(3)
        repo = TraceRepository(tmp_path / "repo")
        ScenarioCampaign(configs, repository=repo).run()
        reference = repo.artifacts.content_hash()

        # Drop the two successors; the head stays cached.  Every
        # executor must rebuild the chain tail from the cached head.
        for executor in (
            SerialExecutor(),
            ProcessPoolExecutor(2),
            ShardExecutor(2, work_dir=tmp_path / "work"),
        ):
            for config in configs[1:]:
                repo.artifacts.delete(config.scenario_id)
            outcome = ScenarioCampaign(
                configs, repository=repo, executor=executor
            ).run()
            assert len(outcome.cached_ids) == 1
            assert len(outcome.computed_ids) == 2
            assert repo.artifacts.content_hash() == reference

    def test_dangling_predecessor_is_clean_error(self):
        tail = fast_chain(2)[1]
        with pytest.raises(ValueError, match="chains after"):
            ScenarioCampaign([tail]).run()


class TestChainedWorkerResume:
    def test_mid_chain_crash_resumes_from_store(self, tmp_path, monkeypatch):
        from repro.scenarios import orchestrate

        configs = fast_chain(3)
        campaign = ScenarioCampaign(configs)
        (manifest,) = campaign.shard_manifests(tmp_path / "shards", 1)
        poison = configs[1].scenario_id
        real = orchestrate.run_scenario

        def crashing(config, upstream=None):
            if config.scenario_id == poison:
                raise RuntimeError("machine preempted")
            if upstream is None:
                return real(config)
            return real(config, upstream=upstream)

        monkeypatch.setattr(orchestrate, "run_scenario", crashing)
        store_root = tmp_path / "store"
        with pytest.raises(RuntimeError, match="preempted"):
            run_manifest(manifest, store_root, echo=None)
        # Only the chain head survived the crash.
        assert ArtifactStore(store_root).keys() == [configs[0].scenario_id]

        # The relaunch decodes the stored head and finishes the chain.
        monkeypatch.setattr(orchestrate, "run_scenario", real)
        summary = run_manifest(manifest, store_root, echo=None)
        assert summary["cached"] == (configs[0].scenario_id,)
        assert set(summary["computed"]) == {
            c.scenario_id for c in configs[1:]
        }
        clean = run_manifest(manifest, tmp_path / "clean", echo=None)
        assert ArtifactStore(tmp_path / "clean").content_hash() == (
            ArtifactStore(store_root).content_hash()
        )
        assert set(clean["computed"]) == {c.scenario_id for c in configs}

    def test_manifest_names_decode_and_after(self, tmp_path):
        configs = fast_chain(2)
        campaign = ScenarioCampaign(configs)
        (manifest,) = campaign.shard_manifests(tmp_path, 1)
        payload = json.loads(manifest.read_text())
        assert payload["decode"] == "repro.scenarios.orchestrate:decode_scenario_result"
        afters = [entry.get("after") for entry in payload["cells"]]
        assert afters.count(None) == 1
        assert configs[0].scenario_id in afters
