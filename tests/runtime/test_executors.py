"""Executor equivalence and shard-resume tests.

The acceptance contract of the runtime layer: for a fixed seeded
scenario matrix, ``SerialExecutor``, ``ProcessPoolExecutor``, and a
two-shard ``ShardExecutor`` round trip (shard manifests -> worker ->
merge) produce byte-identical aggregate rows and identical
artifact-store content hashes — and a worker that crashes mid-shard
resumes from its store instead of recomputing finished cells.
"""

import json

import pytest

from repro.measurement import TraceRepository
from repro.runtime import (
    ArtifactStore,
    Cell,
    ProcessPoolExecutor,
    SerialExecutor,
    ShardExecutor,
    merge_stores,
    partition_cells,
    run_manifest,
    write_shard_manifests,
)
from repro.scenarios import SCENARIO_CODEC, ScenarioCampaign, scenario_matrix

#: Small, fast cells: 4 nodes, 3 jobs, 5 % data scale.
FAST = dict(n_nodes=4, n_jobs=3, data_scale=0.05)


def fast_matrix(seed=11, **kwargs):
    defaults = dict(
        providers=("amazon",),
        arrival_rates=(2.0,),
        schedulers=("fifo", "fair"),
        workloads=("mixed", "tpch"),
        seed=seed,
        **FAST,
    )
    defaults.update(kwargs)
    return scenario_matrix(**defaults)


class TestPartition:
    def test_partition_is_deterministic_and_complete(self):
        cells = [Cell(fn="m:f", payload={"i": i}) for i in range(7)]
        shards = partition_cells(cells, 3)
        assert [len(s) for s in shards] == [3, 2, 2]
        assert sorted(c.key for s in shards for c in s) == sorted(
            c.key for c in cells
        )
        # Submission order must not matter, only the cell set.
        again = partition_cells(list(reversed(cells)), 3)
        assert [[c.key for c in s] for s in again] == [
            [c.key for c in s] for s in shards
        ]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            partition_cells([], 0)


class TestExecutorEquivalence:
    def test_serial_pool_and_sharded_runs_are_identical(self, tmp_path):
        configs = fast_matrix()
        assert len(configs) == 4

        serial_repo = TraceRepository(tmp_path / "serial")
        serial = ScenarioCampaign(
            configs, repository=serial_repo, executor=SerialExecutor()
        ).run()

        pool_repo = TraceRepository(tmp_path / "pool")
        pool = ScenarioCampaign(
            configs, repository=pool_repo, executor=ProcessPoolExecutor(3)
        ).run()

        shard_repo = TraceRepository(tmp_path / "shard")
        sharded = ScenarioCampaign(
            configs,
            repository=shard_repo,
            executor=ShardExecutor(2, work_dir=tmp_path / "work"),
        ).run()

        rows = serial.aggregate_rows()
        assert pool.aggregate_rows() == rows
        assert sharded.aggregate_rows() == rows
        assert serial.computed_ids == pool.computed_ids == sharded.computed_ids

        # Store bytes, not just rows: the three strategies must leave
        # indistinguishable archives behind.
        serial_hash = serial_repo.artifacts.content_hash()
        assert pool_repo.artifacts.content_hash() == serial_hash
        assert shard_repo.artifacts.content_hash() == serial_hash

    def test_reused_work_dir_leaks_nothing_into_the_campaign_store(
        self, tmp_path
    ):
        # The same work_dir runs two different matrices back to back;
        # the second campaign's store must contain only the second
        # matrix's cells (byte-identical to its serial run).
        work = tmp_path / "work"
        first = fast_matrix(seed=11)
        ScenarioCampaign(
            first,
            repository=TraceRepository(tmp_path / "first"),
            executor=ShardExecutor(2, work_dir=work),
        ).run()

        second = fast_matrix(seed=99, workloads=("mixed",))
        second_repo = TraceRepository(tmp_path / "second")
        ScenarioCampaign(
            second,
            repository=second_repo,
            executor=ShardExecutor(2, work_dir=work),
        ).run()

        serial_repo = TraceRepository(tmp_path / "serial")
        ScenarioCampaign(second, repository=serial_repo).run()
        assert second_repo.artifacts.keys() == serial_repo.artifacts.keys()
        assert (
            second_repo.artifacts.content_hash()
            == serial_repo.artifacts.content_hash()
        )

    def test_sharded_store_serves_cache_hits_to_a_serial_rerun(self, tmp_path):
        configs = fast_matrix()
        shard_repo = TraceRepository(tmp_path / "shard")
        ScenarioCampaign(
            configs,
            repository=shard_repo,
            executor=ShardExecutor(2, work_dir=tmp_path / "work"),
        ).run()
        rerun = ScenarioCampaign(configs, repository=shard_repo).run()
        assert rerun.cache_hit_fraction == 1.0
        assert rerun.computed_ids == ()

    def test_manual_worker_merge_roundtrip(self, tmp_path):
        # The same round trip the CLI performs, through the library
        # entry points the CLI calls.
        configs = fast_matrix()
        campaign = ScenarioCampaign(configs)
        manifests = campaign.shard_manifests(tmp_path / "shards", n_shards=2)
        assert [m.name for m in manifests] == ["shard-0.json", "shard-1.json"]
        shard_roots = []
        for index, manifest in enumerate(manifests):
            root = tmp_path / f"shard-{index}-store"
            summary = run_manifest(manifest, root, echo=None)
            assert summary["cached"] == ()
            shard_roots.append(root)
        merged = merge_stores(shard_roots, tmp_path / "merged")
        assert len(merged["adopted"]) == len(configs)

        serial_repo = TraceRepository(tmp_path / "serial")
        ScenarioCampaign(configs, repository=serial_repo).run()
        assert merged["content_hash"] == serial_repo.artifacts.content_hash()


class TestCrashMidShardResume:
    def test_worker_resumes_after_crash(self, tmp_path, monkeypatch):
        from repro.scenarios import orchestrate

        configs = fast_matrix()
        campaign = ScenarioCampaign(configs)
        manifests = campaign.shard_manifests(tmp_path / "shards", n_shards=1)
        (manifest,) = manifests
        shard_cells = partition_cells(campaign.cells, 1)[0]
        poison = shard_cells[2].key

        real = orchestrate.run_scenario

        def crashing(config):
            if config.scenario_id == poison:
                raise RuntimeError("machine preempted")
            return real(config)

        monkeypatch.setattr(orchestrate, "run_scenario", crashing)
        store_root = tmp_path / "shard-store"
        with pytest.raises(RuntimeError, match="preempted"):
            run_manifest(manifest, store_root, echo=None)

        # The crash lost only the in-flight cell: everything computed
        # before it is durably stored and fully readable.
        store = ArtifactStore(store_root)
        assert store.keys() == sorted(c.key for c in shard_cells[:2])
        for key in store.keys():
            store.get(key)

        # Re-running the same command line resumes: stored cells are
        # skipped, only the remainder computes.
        monkeypatch.setattr(orchestrate, "run_scenario", real)
        summary = run_manifest(manifest, store_root, echo=None)
        assert set(summary["cached"]) == set(
            c.key for c in shard_cells[:2]
        )
        assert set(summary["computed"]) == set(
            c.key for c in shard_cells[2:]
        )

        # And the resumed shard is indistinguishable from a clean one.
        clean = run_manifest(manifest, tmp_path / "clean-store", echo=None)
        assert ArtifactStore(tmp_path / "clean-store").content_hash() == (
            store.content_hash()
        )
        assert set(clean["computed"]) == set(c.key for c in shard_cells)


class TestResumeAudit:
    def test_corrupt_stored_cell_is_recomputed_on_resume(self, tmp_path):
        """Resume trusts nothing: a stored key whose bytes fail the
        integrity audit is deleted and recomputed, and the resumed
        store converges to the clean hash anyway."""
        configs = fast_matrix()
        campaign = ScenarioCampaign(configs)
        (manifest,) = campaign.shard_manifests(tmp_path / "shards", 1)
        store_root = tmp_path / "shard-store"
        first = run_manifest(manifest, store_root, echo=None)
        clean_hash = ArtifactStore(store_root).content_hash()
        victim = first["computed"][0]

        # Flip bytes inside one stored document, behind the store's back.
        victim_dir = store_root / victim
        doc = sorted(victim_dir.glob("*.json"))[0]
        doc.write_text(json.dumps({"tampered": True}))

        summary = run_manifest(manifest, store_root, echo=None)
        assert summary["audit_failed"] == (victim,)
        assert victim in summary["computed"]
        assert set(summary["cached"]) == set(first["computed"]) - {victim}
        assert ArtifactStore(store_root).content_hash() == clean_hash
        assert ArtifactStore(store_root).verify().ok

    def test_audit_can_be_disabled(self, tmp_path):
        configs = fast_matrix()
        campaign = ScenarioCampaign(configs)
        (manifest,) = campaign.shard_manifests(tmp_path / "shards", 1)
        store_root = tmp_path / "shard-store"
        run_manifest(manifest, store_root, echo=None)
        summary = run_manifest(
            manifest, store_root, echo=None, audit_resume=False
        )
        assert summary["audit_failed"] == ()
        assert summary["computed"] == ()


class TestShardExecutorValidation:
    def test_codec_required(self):
        executor = ShardExecutor(2)
        with pytest.raises(ValueError, match="codec"):
            executor.run([Cell(fn="m:f", payload={})], lambda *a: None)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardExecutor(0)
        with pytest.raises(ValueError):
            ProcessPoolExecutor(0)


class TestShardManifests:
    def test_malformed_cell_entry_is_clean_error(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "schema": 1,
            "encode": "m:e",
            "cells": [{"fn": "m:f", "payload": {}}],  # no "key"
        }))
        with pytest.raises(ValueError, match="cell #0"):
            run_manifest(path, tmp_path / "store", echo=None)

    def test_manifest_names_codec_and_cells(self, tmp_path):
        configs = fast_matrix()
        campaign = ScenarioCampaign(configs)
        manifests = campaign.shard_manifests(tmp_path, n_shards=2)
        import json

        payload = json.loads(manifests[0].read_text())
        assert payload["schema"] == 1
        assert payload["encode"] == SCENARIO_CODEC.encode_ref
        assert payload["n_shards"] == 2
        keys = [entry["key"] for entry in payload["cells"]]
        assert all(key.startswith("scn-") for key in keys)
