"""Tests for the literature-survey pipeline (Section 2)."""

import pytest

from repro.survey import (
    Reviewer,
    aggregate_figure1,
    generate_corpus,
    keyword_filter,
    manual_cloud_filter,
    run_double_review,
    survey_funnel,
)
from repro.survey.corpus import (
    CLOUD_ARTICLES_PER_VENUE,
    REPETITION_HISTOGRAM,
    TOTAL_CITATIONS,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(seed=0)


@pytest.fixture(scope="module")
def selection(corpus):
    return manual_cloud_filter(keyword_filter(corpus))


class TestCorpus:
    def test_exact_corpus_size(self, corpus):
        assert len(corpus) == 1_867

    def test_deterministic_for_seed(self):
        a = generate_corpus(seed=3)
        b = generate_corpus(seed=3)
        assert [x.title for x in a[:20]] == [y.title for y in b[:20]]

    def test_years_in_survey_range(self, corpus):
        assert all(2008 <= a.year <= 2018 for a in corpus)

    def test_cloud_articles_match_keywords(self, corpus):
        for article in corpus:
            if article.uses_cloud:
                assert article in keyword_filter([article])


class TestFunnel:
    def test_table2_counts_exact(self, corpus):
        funnel = survey_funnel(corpus)
        assert funnel.total == 1_867
        assert funnel.keyword_matched == 138
        assert funnel.cloud_experiments == 44
        assert funnel.citations == TOTAL_CITATIONS

    def test_per_venue_split(self, corpus):
        funnel = survey_funnel(corpus)
        assert funnel.per_venue == CLOUD_ARTICLES_PER_VENUE

    def test_as_row_shape(self, corpus):
        row = survey_funnel(corpus).as_row()
        assert row["articles_total"] == 1_867
        assert row["citations"] == 11_203


class TestReview:
    def test_kappa_above_point_eight(self, selection):
        outcome = run_double_review(selection)
        assert all(k > 0.8 for k in outcome.kappa.values())

    def test_perfect_reviewers_agree_exactly(self, selection):
        zero_error = {c: 0.0 for c in
                      ("reports_center", "reports_variability", "underspecified")}
        a = Reviewer("a", seed=1, error_rates=dict(zero_error))
        b = Reviewer("b", seed=2, error_rates=dict(zero_error))
        outcome = run_double_review(selection, a, b)
        assert all(k == pytest.approx(1.0) for k in outcome.kappa.values())

    def test_consensus_is_favorable(self, selection):
        outcome = run_double_review(selection)
        consensus_under = sum(outcome.consensus("underspecified"))
        assert consensus_under <= min(
            sum(outcome.labels_a["underspecified"]),
            sum(outcome.labels_b["underspecified"]),
        )


class TestFigure1:
    def test_headline_claims(self, selection):
        outcome = run_double_review(selection)
        summary = aggregate_figure1(selection, outcome)
        # F2.2: over 60% under-specified.
        assert summary.pct_underspecified > 60.0
        # Only ~37% of center-reporting articles report variability.
        assert 0.25 <= summary.variability_share_of_center <= 0.50
        # 76% of well-specified articles use <= 15 repetitions.
        assert 0.65 <= summary.low_repetition_share <= 0.85

    def test_histogram_dominated_by_3_5_10(self, selection):
        outcome = run_double_review(selection)
        summary = aggregate_figure1(selection, outcome)
        hist = summary.repetition_histogram_pct
        top = sorted(hist, key=hist.get, reverse=True)[:3]
        assert set(top) <= {3, 5, 10}

    def test_ground_truth_histogram_total(self):
        # The histogram definition covers the well-specified subset.
        assert sum(REPETITION_HISTOGRAM.values()) == 17

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            aggregate_figure1([], run_double_review([]))
