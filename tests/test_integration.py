"""End-to-end integration tests across the library's layers.

Each test walks a full user journey — measure, fingerprint, plan,
execute, analyze, report — rather than exercising a single module.
"""

import numpy as np
import pytest

from repro.cloud import Ec2Provider, default_providers
from repro.core import (
    ExperimentDesign,
    ExperimentReport,
    ExperimentRunner,
    ResetPolicy,
    analyze_sample,
    recommend_repetitions,
    recommend_rest_duration,
    render_report,
    verify_baseline,
)
from repro.core.runner import SimulatorExperiment
from repro.emulator import FULL_SPEED, TEN_THIRTY
from repro.measurement import (
    BandwidthProbe,
    TraceRepository,
    CampaignConfig,
    fingerprint_link,
    run_campaign,
)
from repro.paper._common import token_bucket_cluster
from repro.stats import compare_groups
from repro.workloads import hibench_job, tpcds_job


class TestMeasureToReport:
    """Measure a cloud, plan an experiment, publish a report."""

    def test_full_methodology_journey(self):
        rng = np.random.default_rng(0)
        provider = Ec2Provider()

        # 1. Fingerprint (F5.2).
        fp = fingerprint_link(
            provider.link_model("c5.xlarge", rng), provider.latency_model(), rng=rng
        )
        assert fp.token_bucket.detected

        # 2. Pilot + planning.
        experiment = SimulatorExperiment(
            token_bucket_cluster(400.0),
            hibench_job("WC"),
            rng=np.random.default_rng(1),
            budget_gbit=400.0,
            run_noise_cov=0.03,
        )
        pilot = ExperimentRunner(ExperimentDesign(repetitions=10)).collect(
            experiment
        )
        needed = recommend_repetitions(pilot, error_bound=0.03)
        rest = recommend_rest_duration(fp.token_bucket, refill_fraction=0.2)
        assert needed >= 6
        assert rest > 0

        # 3. Execute the planned design with rests.
        design = ExperimentDesign(
            repetitions=min(int(needed), 25),
            reset_policy=ResetPolicy.REST,
            rest_s=float(rest),
            error_bound=0.03,
        )
        samples = ExperimentRunner(design).collect(experiment)

        # 4. Analyze and publish.
        report = ExperimentReport.build(
            title="integration", samples=samples, design=design, fingerprint=fp
        )
        text = render_report(report)
        assert "token bucket:   detected" in text
        assert not report.analysis.iid_violated

    def test_baseline_guard_detects_policy_change(self):
        rng = np.random.default_rng(2)
        pre = Ec2Provider(era="pre-2019-08")
        post = Ec2Provider(era="post-2019-08", five_gbps_fraction=1.0)
        fp_published = fingerprint_link(
            pre.link_model("c5.xlarge", rng), pre.latency_model(), rng=rng
        )
        fp_now = fingerprint_link(
            post.link_model("c5.xlarge", rng), post.latency_model(), rng=rng
        )
        ok, problems = verify_baseline(fp_published, fp_now)
        assert not ok
        assert problems


class TestCampaignToRepositoryToAnalysis:
    """Archive a measurement campaign and re-analyze it from disk."""

    def test_roundtrip_analysis(self, tmp_path):
        config = CampaignConfig(
            provider_name="google",
            instance_name="gce-8core",
            duration_s=7_200.0,
            seed=9,
        )
        result = run_campaign(config)
        repo = TraceRepository(tmp_path / "archive")
        repo.store("gce-pilot", result)

        reloaded = repo.load("gce-pilot")
        trace = reloaded.trace("full-speed")
        medians = trace.resample_medians(window_s=600.0)
        report = analyze_sample(medians.values)
        assert report.dispersion.median == pytest.approx(15.0, abs=1.5)

    def test_every_provider_campaign_runs(self):
        for name in default_providers():
            instance = {
                "amazon": "c5.xlarge",
                "google": "gce-4core",
                "hpccloud": "hpccloud-4core",
            }[name]
            config = CampaignConfig(
                provider_name=name, instance_name=instance, duration_s=3_600.0
            )
            result = run_campaign(config)
            assert result.exhibits_variability


class TestCrossLayerConsistency:
    """The same shaping constants must agree across layers."""

    def test_probe_trace_matches_analytic_time_to_empty(self):
        # The empirical drop instant in a measured trace must agree
        # with the incarnation's own analytic time-to-empty: the probe,
        # emulator, and model layers all see the same bucket.
        provider = Ec2Provider()
        model = provider.link_model("c5.xlarge", np.random.default_rng(3))
        analytic_tte = model.params.time_to_empty_s
        trace = BandwidthProbe(model, FULL_SPEED).run(3_600.0)
        drop_index = int(np.argmax(trace.values < 5.0))
        probe_tte = trace.times[drop_index]
        assert probe_tte == pytest.approx(analytic_tte, abs=10.0)

    def test_group_comparison_separates_budgets(self):
        def samples(budget, seed):
            experiment = SimulatorExperiment(
                token_bucket_cluster(budget),
                tpcds_job(65, n_nodes=12, slots=4),
                rng=np.random.default_rng(seed),
                budget_gbit=budget,
            )
            out = np.empty(8)
            for i in range(8):
                if i > 0:
                    experiment.reset()
                out[i] = experiment.measure()
            return out

        fresh = samples(5_000.0, 4)
        depleted = samples(10.0, 5)
        verdict = compare_groups([fresh, depleted])
        assert verdict.reject_null

    def test_intermittent_pattern_preserves_budget_in_simulator_terms(self):
        # The Figure 6/10 mechanism at probe level: a 10-30 pattern
        # moves comparable data to full-speed over a long window.
        provider = Ec2Provider()
        rng = np.random.default_rng(6)
        full = BandwidthProbe(
            provider.link_model("c5.xlarge", rng), FULL_SPEED
        ).run(259_200.0)
        intermittent = BandwidthProbe(
            provider.link_model("c5.xlarge", rng), TEN_THIRTY
        ).run(259_200.0)
        ratio = intermittent.total_traffic_gbit() / full.total_traffic_gbit()
        assert 0.6 < ratio < 1.6
