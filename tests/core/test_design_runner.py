"""Tests for experiment designs and runners."""

import numpy as np
import pytest

from repro.core import ExperimentDesign, ExperimentRunner, ResetPolicy, SimulatorExperiment
from repro.netmodel import TokenBucketModel, TokenBucketParams
from repro.simulator import Cluster, JobSpec, StageSpec

TB = TokenBucketParams(
    peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95, capacity_gbit=5_400.0
)


def bucket_cluster(budget):
    return Cluster.paper_testbed(lambda n: TokenBucketModel(TB.with_budget(budget)))


def shuffle_job():
    return JobSpec(
        name="job",
        stages=(
            StageSpec(name="map", num_tasks=48, compute_s=1.0, compute_cov=0.0),
            StageSpec(
                name="reduce", num_tasks=48, compute_s=1.0, compute_cov=0.0,
                shuffle_gbit=2_400.0, parents=(0,),
            ),
        ),
    )


class TestDesign:
    def test_defaults_are_sound(self):
        design = ExperimentDesign()
        assert design.repetitions >= 30
        assert design.reset_policy is ResetPolicy.FRESH

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentDesign(repetitions=0)
        with pytest.raises(ValueError):
            ExperimentDesign(rest_s=10.0)  # rest without REST policy
        with pytest.raises(ValueError):
            ExperimentDesign(confidence=1.2)
        with pytest.raises(ValueError):
            ExperimentDesign(error_bound=0.0)
        with pytest.raises(ValueError):
            ExperimentDesign(quantile=1.0)

    def test_rest_policy_accepts_rest(self):
        design = ExperimentDesign(reset_policy=ResetPolicy.REST, rest_s=60.0)
        assert design.rest_s == 60.0

    def test_run_order_interleaves_variants(self):
        design = ExperimentDesign(repetitions=3, randomize_order=False)
        order = design.run_order(["a", "b"])
        assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_run_order_randomized_is_permutation(self):
        design = ExperimentDesign(repetitions=5, randomize_order=True)
        order = design.run_order(["a", "b"], rng=np.random.default_rng(0))
        assert sorted(order) == sorted(
            [(v, r) for r in range(5) for v in ("a", "b")]
        )
        assert order != sorted(order)

    def test_run_order_requires_variants(self):
        with pytest.raises(ValueError):
            ExperimentDesign().run_order([])

    def test_describe_mentions_key_choices(self):
        text = ExperimentDesign(repetitions=70).describe()
        assert "70 repetitions" in text
        assert "fresh" in text
        assert "95%" in text


class TestRunner:
    def test_collect_plain_callable(self):
        values = iter(range(10))
        runner = ExperimentRunner(ExperimentDesign(repetitions=5))
        samples = runner.collect(lambda: float(next(values)))
        assert samples.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_reset_called_between_fresh_runs(self):
        calls = {"reset": 0, "rest": 0}

        class Exp:
            def measure(self):
                return 1.0

            def reset(self):
                calls["reset"] += 1

            def rest(self, duration_s):
                calls["rest"] += 1

        runner = ExperimentRunner(ExperimentDesign(repetitions=4))
        runner.collect(Exp())
        assert calls == {"reset": 3, "rest": 0}

    def test_rest_called_between_rest_runs(self):
        calls = {"reset": 0, "rest": 0}

        class Exp:
            def measure(self):
                return 1.0

            def reset(self):
                calls["reset"] += 1

            def rest(self, duration_s):
                calls["rest"] += 1
                assert duration_s == 30.0

        runner = ExperimentRunner(
            ExperimentDesign(
                repetitions=4, reset_policy=ResetPolicy.REST, rest_s=30.0
            )
        )
        runner.collect(Exp())
        assert calls == {"reset": 0, "rest": 3}


class TestSimulatorExperiment:
    def test_fresh_resets_keep_samples_stable(self):
        experiment = SimulatorExperiment(
            bucket_cluster(400.0), shuffle_job(),
            rng=np.random.default_rng(0), budget_gbit=400.0,
        )
        runner = ExperimentRunner(ExperimentDesign(repetitions=4))
        samples = runner.collect(experiment)
        assert samples.std() / samples.mean() < 0.05

    def test_no_reset_shows_carryover(self):
        experiment = SimulatorExperiment(
            bucket_cluster(400.0), shuffle_job(),
            rng=np.random.default_rng(0), budget_gbit=400.0,
        )
        runner = ExperimentRunner(
            ExperimentDesign(repetitions=4, reset_policy=ResetPolicy.NONE)
        )
        samples = runner.collect(experiment)
        assert samples[-1] > samples[0] * 1.2

    def test_set_budget_changes_behavior(self):
        experiment = SimulatorExperiment(
            bucket_cluster(5_000.0), shuffle_job(),
            rng=np.random.default_rng(0), budget_gbit=5_000.0,
        )
        fast = experiment.measure()
        experiment.reset()
        experiment.set_budget(10.0)
        slow = experiment.measure()
        assert slow > 1.5 * fast

    def test_run_noise_adds_variance(self):
        quiet = SimulatorExperiment(
            bucket_cluster(5_000.0), shuffle_job(),
            rng=np.random.default_rng(0), budget_gbit=5_000.0,
        )
        noisy = SimulatorExperiment(
            bucket_cluster(5_000.0), shuffle_job(),
            rng=np.random.default_rng(0), budget_gbit=5_000.0,
            run_noise_cov=0.10,
        )
        runner = ExperimentRunner(ExperimentDesign(repetitions=8))
        quiet_samples = runner.collect(quiet)
        noisy_samples = runner.collect(noisy)
        assert noisy_samples.std() > quiet_samples.std()

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            SimulatorExperiment(
                bucket_cluster(100.0), shuffle_job(), run_noise_cov=-0.1
            )
