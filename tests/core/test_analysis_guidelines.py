"""Tests for the analysis pipeline, guidelines, and reporting."""

import numpy as np
import pytest

from repro.core import (
    AnalysisReport,
    ExperimentDesign,
    ExperimentReport,
    analyze_sample,
    recommend_repetitions,
    recommend_rest_duration,
    render_report,
    verify_baseline,
)
from repro.measurement.fingerprint import (
    NetworkFingerprint,
    TokenBucketEstimate,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def bucket_estimate(detected=True, tte=600.0, high=10.0, low=1.0, rep=0.95):
    return TokenBucketEstimate(
        detected=detected, time_to_empty_s=tte, high_gbps=high,
        low_gbps=low, replenish_gbps=rep,
    )


def fingerprint(bw=10.0, lat=0.15, loaded=1.0, bucket=None):
    return NetworkFingerprint(
        base_bandwidth_gbps=bw, base_latency_ms=lat, loaded_latency_ms=loaded,
        token_bucket=bucket or bucket_estimate(),
    )


class TestAnalyzeSample:
    def test_clean_iid_sample(self, rng):
        report = analyze_sample(rng.normal(100, 2, 80))
        assert report.ci is not None
        assert not report.iid_violated
        assert report.is_normal
        assert "OK" in report.verdict() or "MORE REPETITIONS" in report.verdict()

    def test_drifting_sample_flags_iid_violation(self, rng):
        samples = rng.normal(100, 2, 80) + np.linspace(0, 60, 80)
        report = analyze_sample(samples)
        assert report.iid_violated
        assert "IID VIOLATION" in report.verdict()

    def test_nonnormal_sample_recommends_nonparametric(self, rng):
        report = analyze_sample(rng.exponential(10, 100))
        assert report.recommended_statistics == "nonparametric"

    def test_tiny_sample_reports_too_few(self):
        report = analyze_sample([1.0, 2.0, 3.0])
        assert report.ci is None
        assert "TOO FEW SAMPLES" in report.verdict()

    def test_single_sample_rejected(self):
        with pytest.raises(ValueError):
            analyze_sample([1.0])

    def test_enough_repetitions_flag(self, rng):
        tight = analyze_sample(rng.normal(100, 0.5, 100), error_bound=0.05)
        assert tight.enough_repetitions
        wide = analyze_sample(rng.normal(100, 30, 12), error_bound=0.01)
        assert not wide.enough_repetitions

    def test_small_sample_skips_tests(self, rng):
        report = analyze_sample(rng.normal(100, 5, 8))
        assert report.normality is None
        assert report.stationarity is None


class TestRecommendRepetitions:
    def test_tight_pilot_needs_few(self, rng):
        pilot = rng.normal(100, 0.5, 30)
        needed = recommend_repetitions(pilot, error_bound=0.05)
        assert 6 <= needed <= 20

    def test_noisy_pilot_extrapolates_upward(self, rng):
        pilot = rng.normal(100, 10, 20)
        needed = recommend_repetitions(pilot, error_bound=0.01)
        assert needed > 50

    def test_never_below_ci_minimum(self, rng):
        pilot = rng.normal(100, 0.01, 30)
        assert recommend_repetitions(pilot) >= 6

    def test_tiny_pilot_rejected(self):
        with pytest.raises(ValueError):
            recommend_repetitions([1.0])

    def test_scaling_sanity(self, rng):
        # Quadrupling the error bound should cut projections ~16x.
        pilot = rng.normal(100, 8, 25)
        strict = recommend_repetitions(pilot, error_bound=0.01)
        loose = recommend_repetitions(pilot, error_bound=0.04)
        assert strict > 4 * loose


class TestRecommendRest:
    def test_bucket_rest_matches_refill_time(self):
        bucket = bucket_estimate()
        rest = recommend_rest_duration(bucket)
        # budget ~ (10 - 0.95) * 600 = 5430 Gbit; refill at 0.95.
        assert rest == pytest.approx(5_430.0 / 0.95, rel=0.01)

    def test_fractional_refill(self):
        bucket = bucket_estimate()
        assert recommend_rest_duration(
            bucket, refill_fraction=0.5
        ) == pytest.approx(recommend_rest_duration(bucket) / 2.0)

    def test_no_bucket_gets_default(self):
        bucket = bucket_estimate(detected=False, tte=float("inf"))
        assert recommend_rest_duration(bucket, default_rest_s=45.0) == 45.0

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_rest_duration(bucket_estimate(), refill_fraction=0.0)
        with pytest.raises(ValueError):
            recommend_rest_duration(bucket_estimate(), default_rest_s=-1.0)


class TestVerifyBaseline:
    def test_matching_baselines(self):
        ok, problems = verify_baseline(fingerprint(), fingerprint())
        assert ok and problems == []

    def test_bandwidth_change_detected(self):
        # The August-2019 event: 10 Gbps NICs became 5 Gbps.
        ok, problems = verify_baseline(fingerprint(bw=10.0), fingerprint(bw=5.0))
        assert not ok
        assert any("bandwidth" in p for p in problems)

    def test_bucket_disappearance_detected(self):
        current = fingerprint(bucket=bucket_estimate(detected=False))
        ok, problems = verify_baseline(fingerprint(), current)
        assert not ok
        assert any("token bucket" in p for p in problems)

    def test_bucket_parameter_change_detected(self):
        current = fingerprint(bucket=bucket_estimate(tte=120.0))
        ok, problems = verify_baseline(fingerprint(), current)
        assert not ok
        assert any("time-to-empty" in p for p in problems)


class TestReporting:
    def test_render_contains_all_sections(self, rng):
        report = ExperimentReport.build(
            title="terasort on emulated EC2",
            samples=rng.normal(300, 10, 40),
            design=ExperimentDesign(repetitions=40),
            fingerprint=fingerprint(),
            environment={"instance": "c5.xlarge", "region": "us-east-1"},
        )
        text = render_report(report)
        assert "terasort on emulated EC2" in text
        assert "network fingerprint" in text
        assert "token bucket:   detected" in text
        assert "c5.xlarge" in text
        assert "verdict" in text

    def test_render_without_fingerprint(self, rng):
        report = ExperimentReport.build(
            title="t", samples=rng.normal(1, 0.1, 20),
            design=ExperimentDesign(repetitions=20),
        )
        text = render_report(report)
        assert "not collected" in text
