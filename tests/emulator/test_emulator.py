"""Tests for patterns, the discrete shaper, and the emulated link."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator import (
    FIVE_THIRTY,
    FULL_SPEED,
    TEN_THIRTY,
    DiscreteTokenBucket,
    EmulatedLink,
    TrafficPattern,
    pattern_by_name,
    tc_script,
)
from repro.netmodel import ConstantRateModel, TokenBucketModel, TokenBucketParams

PARAMS = TokenBucketParams(
    peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95, capacity_gbit=5_400.0
)


class TestPatterns:
    def test_duty_cycles(self):
        assert FULL_SPEED.duty_cycle == 1.0
        assert TEN_THIRTY.duty_cycle == pytest.approx(0.25)
        assert FIVE_THIRTY.duty_cycle == pytest.approx(5.0 / 35.0)

    def test_phases_cover_duration(self):
        total = sum(dt for _, dt in TEN_THIRTY.phases(200.0))
        assert total == pytest.approx(200.0)

    def test_phases_start_transmitting(self):
        first = next(iter(FIVE_THIRTY.phases(100.0)))
        assert first == (True, 5.0)

    def test_full_speed_single_phase(self):
        phases = list(FULL_SPEED.phases(100.0))
        assert phases == [(True, 100.0)]

    def test_truncated_final_phase(self):
        phases = list(TEN_THIRTY.phases(15.0))
        assert phases == [(True, 10.0), (False, 5.0)]

    def test_bursts_in(self):
        assert TEN_THIRTY.bursts_in(120.0) == 3
        assert FULL_SPEED.bursts_in(1.0) == 1

    def test_lookup(self):
        assert pattern_by_name("5-30") is FIVE_THIRTY
        with pytest.raises(KeyError):
            pattern_by_name("1-2")

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficPattern(name="bad", transmit_s=0.0, rest_s=1.0)
        with pytest.raises(ValueError):
            TrafficPattern(name="bad", transmit_s=1.0, rest_s=-1.0)


class TestDiscreteShaper:
    def test_peak_then_capped(self):
        bucket = DiscreteTokenBucket(PARAMS, tick_s=1.0)
        sent = bucket.run(offered_gbps=100.0, duration_s=1_200)
        # First ticks at 10 Gbps, later ticks at 1 Gbps.
        assert sent[0] == pytest.approx(10.0)
        assert sent[-1] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteTokenBucket(PARAMS, tick_s=0.0)
        bucket = DiscreteTokenBucket(PARAMS)
        with pytest.raises(ValueError):
            bucket.offer(-1.0)
        with pytest.raises(ValueError):
            bucket.run(1.0, -5.0)

    @given(
        offered=st.floats(min_value=0.5, max_value=50.0),
        duration=st.floats(min_value=10.0, max_value=2_000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_discrete_agrees_with_fluid_model(self, offered, duration):
        """The tick shaper and the fluid model are independent
        implementations of the same algorithm; totals must agree."""
        from repro.netmodel.base import integrate_transfer

        tick = 0.05
        discrete = DiscreteTokenBucket(PARAMS, tick_s=tick)
        total_discrete = sum(discrete.run(offered, duration))

        fluid = TokenBucketModel(PARAMS)
        total_fluid = integrate_transfer(fluid, duration, offered).transferred_gbit

        assert total_discrete == pytest.approx(total_fluid, rel=0.02, abs=1.0)


class TestTcScript:
    def test_script_mentions_rates(self):
        script = tc_script(PARAMS, interface="eth1")
        assert "eth1" in script
        assert "10.0gbit" in script
        assert "1.0gbit" in script
        assert "htb" in script


class TestEmulatedLink:
    def test_constant_link_full_speed(self):
        link = EmulatedLink(ConstantRateModel(5.0), FULL_SPEED, offered_gbps=100.0)
        samples = link.run(100.0)
        assert len(samples) == 10
        assert all(s.bandwidth_gbps == pytest.approx(5.0) for s in samples)

    def test_offered_load_respected(self):
        link = EmulatedLink(ConstantRateModel(5.0), FULL_SPEED, offered_gbps=2.0)
        samples = link.run(50.0)
        assert all(s.bandwidth_gbps == pytest.approx(2.0) for s in samples)

    def test_burst_pattern_sample_per_burst(self):
        # A 5-30 pattern over 350 s has 10 bursts -> 10 samples, each
        # covering 5 transmitting seconds.
        link = EmulatedLink(ConstantRateModel(5.0), FIVE_THIRTY)
        samples = link.run(350.0)
        assert len(samples) == 10
        assert all(s.duration_s == pytest.approx(5.0) for s in samples)

    def test_token_bucket_throttling_visible(self):
        model = TokenBucketModel(PARAMS)
        link = EmulatedLink(model, FULL_SPEED)
        samples = link.run(3_600.0)
        rates = np.array([s.bandwidth_gbps for s in samples])
        assert rates[0] == pytest.approx(10.0)
        assert rates[-1] == pytest.approx(1.0, abs=0.05)
        # The drop happens near the analytic 600 s mark.
        drop_index = int(np.argmax(rates < 5.0))
        assert samples[drop_index].t_start == pytest.approx(600.0, abs=20.0)

    def test_runs_compose_without_reset(self):
        # Second run starts with a drained bucket (F4.4 carry-over).
        model = TokenBucketModel(PARAMS)
        link = EmulatedLink(model, FULL_SPEED)
        link.run(1_200.0)
        second = link.run(100.0)
        assert second[0].bandwidth_gbps == pytest.approx(1.0, abs=0.05)

    def test_figure14_shape_burst_starts_high_then_drops(self):
        # Figure 14: with a near-empty bucket, each 10 s burst starts at
        # 10 Gbps (replenished budget) and falls to 1 Gbps.
        model = TokenBucketModel(PARAMS.with_budget(0.0))
        link = EmulatedLink(model, TEN_THIRTY, report_interval_s=1.0)
        samples = link.run(400.0)
        # Look at the second burst (first starts fully drained).
        burst2 = [s for s in samples if 40.0 <= s.t_start < 50.0]
        assert burst2[0].bandwidth_gbps > 5.0
        assert burst2[-1].bandwidth_gbps == pytest.approx(1.0, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmulatedLink(ConstantRateModel(1.0), FULL_SPEED, offered_gbps=0.0)
        with pytest.raises(ValueError):
            EmulatedLink(ConstantRateModel(1.0), FULL_SPEED, report_interval_s=0.0)
