"""Tests for the time-series containers."""

import numpy as np
import pytest

from repro.trace import (
    BandwidthTrace,
    BoxSummary,
    RttTrace,
    TimeSeries,
    concat_series,
    summarize_box,
)


@pytest.fixture
def simple_series():
    times = np.arange(0.0, 100.0, 10.0)
    values = np.linspace(1.0, 10.0, 10)
    return TimeSeries(times, values, label="test")


class TestBoxSummary:
    def test_quantiles_of_known_sample(self):
        box = summarize_box(np.arange(1, 101, dtype=float))
        assert box.p50 == pytest.approx(50.5)
        assert box.p25 < box.p50 < box.p75
        assert box.p01 < box.p25
        assert box.p99 > box.p75

    def test_iqr_and_whiskers(self):
        box = BoxSummary(p01=1, p25=3, p50=5, p75=8, p99=12, p999=14)
        assert box.iqr == 5
        assert box.whisker_span == 11
        assert box.as_dict()["p50"] == 5
        assert box.as_dict()["p999"] == 14

    def test_p999_tracks_the_extreme_tail(self):
        box = summarize_box(np.arange(1, 10_001, dtype=float))
        assert box.p99 <= box.p999
        assert box.p999 == pytest.approx(
            np.percentile(np.arange(1, 10_001, dtype=float), 99.9)
        )

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            summarize_box([])


class TestTimeSeries:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            TimeSeries(np.arange(3), np.arange(4))

    def test_basic_statistics(self, simple_series):
        assert len(simple_series) == 10
        assert simple_series.duration == 90.0
        assert simple_series.mean() == pytest.approx(5.5)
        assert simple_series.median() == pytest.approx(5.5)
        assert simple_series.percentile(50) == pytest.approx(5.5)

    def test_cov(self, simple_series):
        cov = simple_series.coefficient_of_variation()
        assert cov == pytest.approx(np.std(simple_series.values) / 5.5)

    def test_cov_zero_mean_rejected(self):
        series = TimeSeries(np.arange(2.0), np.array([-1.0, 1.0]))
        with pytest.raises(ValueError):
            series.coefficient_of_variation()

    def test_cdf_is_monotone(self, simple_series):
        values, probs = simple_series.cdf()
        assert np.all(np.diff(values) >= 0)
        assert np.all(np.diff(probs) > 0)
        assert probs[-1] == pytest.approx(1.0)

    def test_consecutive_relative_change(self):
        series = TimeSeries(np.arange(3.0), np.array([10.0, 15.0, 7.5]))
        change = series.consecutive_relative_change()
        assert change == pytest.approx([0.5, 0.5])

    def test_consecutive_change_single_sample(self):
        series = TimeSeries(np.array([0.0]), np.array([1.0]))
        assert series.consecutive_relative_change().size == 0

    def test_resample_medians(self):
        times = np.arange(0.0, 40.0, 1.0)
        values = np.concatenate([np.full(20, 1.0), np.full(20, 3.0)])
        series = TimeSeries(times, values)
        resampled = series.resample_medians(window_s=20.0)
        assert len(resampled) == 2
        assert resampled.values == pytest.approx([1.0, 3.0])

    def test_resample_requires_positive_window(self, simple_series):
        with pytest.raises(ValueError):
            simple_series.resample_medians(0.0)

    def test_slice_time(self, simple_series):
        part = simple_series.slice_time(20.0, 50.0)
        assert len(part) == 3
        assert part.times[0] == 20.0

    def test_json_roundtrip(self, simple_series, tmp_path):
        path = tmp_path / "series.json"
        simple_series.save(path)
        loaded = TimeSeries.load(path)
        assert loaded.label == "test"
        assert loaded.values == pytest.approx(simple_series.values)


class TestBandwidthTrace:
    def test_default_retransmissions_are_zero(self):
        trace = BandwidthTrace(np.arange(3.0), np.ones(3))
        assert trace.total_retransmissions() == 0.0

    def test_retransmission_alignment_enforced(self):
        with pytest.raises(ValueError):
            BandwidthTrace(np.arange(3.0), np.ones(3), retransmissions=np.ones(2))

    def test_traffic_accounting(self):
        trace = BandwidthTrace(np.arange(0.0, 30.0, 10.0), np.array([1.0, 2.0, 3.0]))
        assert trace.total_traffic_gbit() == pytest.approx(60.0)
        cumulative = trace.cumulative_traffic_gbit()
        assert cumulative[-1] == pytest.approx(60.0)
        assert np.all(np.diff(cumulative) > 0)

    def test_traffic_accounting_with_burst_durations(self):
        # A 5-second burst sample must not be billed as a 10-second
        # window (this mattered for Figure 10's 5-30 totals).
        trace = BandwidthTrace(
            np.array([0.0, 35.0]),
            np.array([10.0, 10.0]),
            durations=np.array([5.0, 5.0]),
        )
        assert trace.total_traffic_gbit() == pytest.approx(100.0)

    def test_duration_alignment_enforced(self):
        with pytest.raises(ValueError):
            BandwidthTrace(
                np.arange(3.0), np.ones(3), durations=np.ones(2)
            )

    def test_roundtrip_with_retransmissions(self):
        trace = BandwidthTrace(
            np.arange(2.0), np.ones(2), retransmissions=np.array([5.0, 7.0])
        )
        clone = BandwidthTrace.from_dict(trace.to_dict())
        assert clone.total_retransmissions() == 12.0

    def test_bandwidth_alias(self):
        trace = BandwidthTrace(np.arange(2.0), np.array([4.0, 5.0]))
        assert trace.bandwidth_gbps is trace.values


class TestRttTrace:
    def test_tail_latency(self):
        trace = RttTrace(np.arange(100.0), np.arange(100.0))
        assert trace.tail_latency_ms(99) == pytest.approx(98.01)
        assert trace.rtt_ms is trace.values


def test_concat_series(simple_series):
    combined = concat_series([simple_series, simple_series], label="both")
    assert len(combined) == 20
    assert combined.label == "both"


def test_concat_empty():
    combined = concat_series([])
    assert len(combined) == 0
