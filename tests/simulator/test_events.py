"""Tests for the event-queue kernel."""

import math

import pytest

from repro.simulator import EventQueue


def test_events_fire_in_time_order():
    queue = EventQueue()
    fired = []
    queue.schedule(5.0, lambda: fired.append("b"))
    queue.schedule(1.0, lambda: fired.append("a"))
    queue.schedule(9.0, lambda: fired.append("c"))
    for cb in queue.pop_due(6.0):
        cb()
    assert fired == ["a", "b"]
    assert len(queue) == 1


def test_ties_break_by_insertion_order():
    queue = EventQueue()
    fired = []
    queue.schedule(1.0, lambda: fired.append(1))
    queue.schedule(1.0, lambda: fired.append(2))
    queue.schedule(1.0, lambda: fired.append(3))
    for cb in queue.pop_due(1.0):
        cb()
    assert fired == [1, 2, 3]


def test_next_time():
    queue = EventQueue()
    assert math.isinf(queue.next_time())
    queue.schedule(3.0, lambda: None)
    assert queue.next_time() == 3.0


def test_cancel():
    queue = EventQueue()
    fired = []
    keep = queue.schedule(1.0, lambda: fired.append("keep"))
    drop = queue.schedule(1.0, lambda: fired.append("drop"))
    queue.cancel(drop)
    assert len(queue) == 1
    for cb in queue.pop_due(2.0):
        cb()
    assert fired == ["keep"]


def test_cancel_head_updates_next_time():
    queue = EventQueue()
    head = queue.schedule(1.0, lambda: None)
    queue.schedule(2.0, lambda: None)
    queue.cancel(head)
    assert queue.next_time() == 2.0


def test_infinite_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.schedule(math.inf, lambda: None)
