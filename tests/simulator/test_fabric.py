"""Tests for the max-min fair fluid fabric."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netmodel import ConstantRateModel, TokenBucketModel, TokenBucketParams
from repro.simulator import Fabric


def constant_fabric(n=4, egress=10.0, ingress=10.0):
    return Fabric(
        egress_models=[ConstantRateModel(egress) for _ in range(n)],
        ingress_caps_gbps=[ingress] * n,
    )


class TestFlowManagement:
    def test_add_and_remove(self):
        fabric = constant_fabric()
        flow = fabric.add_flow(0, 1, 100.0)
        assert len(fabric.flows) == 1
        fabric.remove_flow(flow)
        assert len(fabric.flows) == 0

    def test_loopback_rejected(self):
        with pytest.raises(ValueError):
            constant_fabric().add_flow(1, 1, 10.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            constant_fabric(n=2).add_flow(0, 5, 10.0)

    def test_zero_volume_rejected(self):
        with pytest.raises(ValueError):
            constant_fabric().add_flow(0, 1, 0.0)

    def test_mismatched_construction(self):
        with pytest.raises(ValueError):
            Fabric([ConstantRateModel(1.0)], [1.0, 2.0])


class TestFairness:
    def test_single_flow_gets_bottleneck(self):
        fabric = constant_fabric(egress=10.0, ingress=5.0)
        flow = fabric.add_flow(0, 1, 100.0)
        fabric.compute_rates()
        assert flow.rate_gbps == pytest.approx(5.0)

    def test_two_flows_share_egress(self):
        fabric = constant_fabric(egress=10.0, ingress=100.0)
        a = fabric.add_flow(0, 1, 100.0)
        b = fabric.add_flow(0, 2, 100.0)
        fabric.compute_rates()
        assert a.rate_gbps == pytest.approx(5.0)
        assert b.rate_gbps == pytest.approx(5.0)

    def test_max_min_unlocks_spare_capacity(self):
        # Flow 0->1 shares egress with 0->2; 2->1 shares ingress with
        # 0->1.  Classic water-filling: the constrained pair gets 5,
        # and no resource is overcommitted.
        fabric = constant_fabric(egress=10.0, ingress=10.0)
        a = fabric.add_flow(0, 1, 100.0)
        b = fabric.add_flow(0, 2, 100.0)
        c = fabric.add_flow(2, 1, 100.0)
        fabric.compute_rates()
        assert a.rate_gbps + b.rate_gbps <= 10.0 + 1e-9
        assert a.rate_gbps + c.rate_gbps <= 10.0 + 1e-9
        assert min(a.rate_gbps, b.rate_gbps, c.rate_gbps) == pytest.approx(5.0)

    def test_all_to_all_symmetric(self):
        n = 4
        fabric = constant_fabric(n=n)
        flows = [
            fabric.add_flow(s, d, 50.0)
            for s in range(n)
            for d in range(n)
            if s != d
        ]
        fabric.compute_rates()
        rates = {round(f.rate_gbps, 6) for f in flows}
        assert len(rates) == 1  # perfect symmetry
        assert fabric.node_egress_rates()[0] == pytest.approx(10.0)

    @given(
        n_flows=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_resource_overcommitted_and_work_conserving(self, n_flows, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = 5
        fabric = constant_fabric(n=n, egress=10.0, ingress=8.0)
        for _ in range(n_flows):
            src, dst = rng.choice(n, size=2, replace=False)
            fabric.add_flow(int(src), int(dst), float(rng.uniform(1, 100)))
        fabric.compute_rates()
        egress = fabric.node_egress_rates()
        ingress = [0.0] * n
        for flow in fabric.flows.values():
            ingress[flow.dst] += flow.rate_gbps
            assert flow.rate_gbps > 0  # work conservation per flow
        for node in range(n):
            assert egress[node] <= 10.0 + 1e-6
            assert ingress[node] <= 8.0 + 1e-6


class TestAdvance:
    def test_flow_completes_exactly_at_horizon(self):
        fabric = constant_fabric()
        fabric.add_flow(0, 1, 50.0)
        fabric.compute_rates()
        horizon = fabric.horizon()
        assert horizon == pytest.approx(5.0)
        completed = fabric.advance(horizon)
        assert len(completed) == 1
        assert len(fabric.flows) == 0

    def test_partial_advance(self):
        fabric = constant_fabric()
        flow = fabric.add_flow(0, 1, 50.0)
        fabric.compute_rates()
        completed = fabric.advance(2.0)
        assert completed == []
        assert flow.remaining_gbit == pytest.approx(30.0)

    def test_token_bucket_throttling_respected(self):
        params = TokenBucketParams(
            peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=1.0,
            capacity_gbit=50.0,
        )
        fabric = Fabric(
            egress_models=[TokenBucketModel(params), ConstantRateModel(10.0)],
            ingress_caps_gbps=[10.0, 10.0],
        )
        fabric.add_flow(0, 1, 500.0)
        fabric.compute_rates()
        # Horizon stops at the bucket transition (50/(10-1) s).
        assert fabric.horizon() == pytest.approx(50.0 / 9.0)
        fabric.advance(fabric.horizon())
        fabric.compute_rates()
        flow = next(iter(fabric.flows.values()))
        assert flow.rate_gbps == pytest.approx(1.0)

    def test_idle_nodes_models_still_advance(self):
        # Buckets refill during pure-compute phases.
        params = TokenBucketParams(
            peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=1.0,
            capacity_gbit=100.0, initial_budget_gbit=0.0,
        )
        model = TokenBucketModel(params)
        fabric = Fabric(
            egress_models=[model, ConstantRateModel(10.0)],
            ingress_caps_gbps=[10.0, 10.0],
        )
        fabric.advance(30.0)
        assert model.budget_gbit == pytest.approx(30.0)

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            constant_fabric().advance(-1.0)

    def test_empty_fabric_horizon_infinite(self):
        assert math.isinf(constant_fabric().horizon())
