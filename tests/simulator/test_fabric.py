"""Tests for the max-min fair fluid fabric."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netmodel import ConstantRateModel, TokenBucketModel, TokenBucketParams
from repro.simulator import Fabric


def constant_fabric(n=4, egress=10.0, ingress=10.0):
    return Fabric(
        egress_models=[ConstantRateModel(egress) for _ in range(n)],
        ingress_caps_gbps=[ingress] * n,
    )


class TestFlowManagement:
    def test_add_and_remove(self):
        fabric = constant_fabric()
        flow = fabric.add_flow(0, 1, 100.0)
        assert len(fabric.flows) == 1
        fabric.remove_flow(flow)
        assert len(fabric.flows) == 0

    def test_loopback_rejected(self):
        with pytest.raises(ValueError):
            constant_fabric().add_flow(1, 1, 10.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            constant_fabric(n=2).add_flow(0, 5, 10.0)

    def test_zero_volume_rejected(self):
        with pytest.raises(ValueError):
            constant_fabric().add_flow(0, 1, 0.0)

    def test_mismatched_construction(self):
        with pytest.raises(ValueError):
            Fabric([ConstantRateModel(1.0)], [1.0, 2.0])


class TestFairness:
    def test_single_flow_gets_bottleneck(self):
        fabric = constant_fabric(egress=10.0, ingress=5.0)
        flow = fabric.add_flow(0, 1, 100.0)
        fabric.compute_rates()
        assert flow.rate_gbps == pytest.approx(5.0)

    def test_two_flows_share_egress(self):
        fabric = constant_fabric(egress=10.0, ingress=100.0)
        a = fabric.add_flow(0, 1, 100.0)
        b = fabric.add_flow(0, 2, 100.0)
        fabric.compute_rates()
        assert a.rate_gbps == pytest.approx(5.0)
        assert b.rate_gbps == pytest.approx(5.0)

    def test_max_min_unlocks_spare_capacity(self):
        # Flow 0->1 shares egress with 0->2; 2->1 shares ingress with
        # 0->1.  Classic water-filling: the constrained pair gets 5,
        # and no resource is overcommitted.
        fabric = constant_fabric(egress=10.0, ingress=10.0)
        a = fabric.add_flow(0, 1, 100.0)
        b = fabric.add_flow(0, 2, 100.0)
        c = fabric.add_flow(2, 1, 100.0)
        fabric.compute_rates()
        assert a.rate_gbps + b.rate_gbps <= 10.0 + 1e-9
        assert a.rate_gbps + c.rate_gbps <= 10.0 + 1e-9
        assert min(a.rate_gbps, b.rate_gbps, c.rate_gbps) == pytest.approx(5.0)

    def test_all_to_all_symmetric(self):
        n = 4
        fabric = constant_fabric(n=n)
        flows = [
            fabric.add_flow(s, d, 50.0)
            for s in range(n)
            for d in range(n)
            if s != d
        ]
        fabric.compute_rates()
        rates = {round(f.rate_gbps, 6) for f in flows}
        assert len(rates) == 1  # perfect symmetry
        assert fabric.node_egress_rates()[0] == pytest.approx(10.0)

    @given(
        n_flows=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_resource_overcommitted_and_work_conserving(self, n_flows, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = 5
        fabric = constant_fabric(n=n, egress=10.0, ingress=8.0)
        for _ in range(n_flows):
            src, dst = rng.choice(n, size=2, replace=False)
            fabric.add_flow(int(src), int(dst), float(rng.uniform(1, 100)))
        fabric.compute_rates()
        egress = fabric.node_egress_rates()
        ingress = [0.0] * n
        for flow in fabric.flows.values():
            ingress[flow.dst] += flow.rate_gbps
            assert flow.rate_gbps > 0  # work conservation per flow
        for node in range(n):
            assert egress[node] <= 10.0 + 1e-6
            assert ingress[node] <= 8.0 + 1e-6


class TestAdvance:
    def test_flow_completes_exactly_at_horizon(self):
        fabric = constant_fabric()
        fabric.add_flow(0, 1, 50.0)
        fabric.compute_rates()
        horizon = fabric.horizon()
        assert horizon == pytest.approx(5.0)
        completed = fabric.advance(horizon)
        assert len(completed) == 1
        assert len(fabric.flows) == 0

    def test_partial_advance(self):
        fabric = constant_fabric()
        flow = fabric.add_flow(0, 1, 50.0)
        fabric.compute_rates()
        completed = fabric.advance(2.0)
        assert completed == []
        assert flow.remaining_gbit == pytest.approx(30.0)

    def test_token_bucket_throttling_respected(self):
        params = TokenBucketParams(
            peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=1.0,
            capacity_gbit=50.0,
        )
        fabric = Fabric(
            egress_models=[TokenBucketModel(params), ConstantRateModel(10.0)],
            ingress_caps_gbps=[10.0, 10.0],
        )
        fabric.add_flow(0, 1, 500.0)
        fabric.compute_rates()
        # Horizon stops at the bucket transition (50/(10-1) s).
        assert fabric.horizon() == pytest.approx(50.0 / 9.0)
        fabric.advance(fabric.horizon())
        fabric.compute_rates()
        flow = next(iter(fabric.flows.values()))
        assert flow.rate_gbps == pytest.approx(1.0)

    def test_idle_nodes_models_still_advance(self):
        # Buckets refill during pure-compute phases.
        params = TokenBucketParams(
            peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=1.0,
            capacity_gbit=100.0, initial_budget_gbit=0.0,
        )
        model = TokenBucketModel(params)
        fabric = Fabric(
            egress_models=[model, ConstantRateModel(10.0)],
            ingress_caps_gbps=[10.0, 10.0],
        )
        fabric.advance(30.0)
        assert model.budget_gbit == pytest.approx(30.0)

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            constant_fabric().advance(-1.0)

    def test_empty_fabric_horizon_infinite(self):
        assert math.isinf(constant_fabric().horizon())

    def test_advance_invalidates_on_shaper_transition_without_completion(self):
        # The bucket empties mid-transfer: no flow completes, but the
        # egress ceiling drops 10 -> 1.  The next horizon query must
        # water-fill against the capped rate, not the stale assignment.
        params = TokenBucketParams(
            peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=1.0,
            capacity_gbit=50.0,
        )
        fabric = Fabric(
            egress_models=[TokenBucketModel(params), ConstantRateModel(10.0)],
            ingress_caps_gbps=[10.0, 10.0],
        )
        flow = fabric.add_flow(0, 1, 500.0)
        fabric.compute_rates()
        assert flow.rate_gbps == pytest.approx(10.0)
        completed = fabric.advance(fabric.horizon())
        assert completed == []  # tier transition, not a completion
        fabric.horizon()  # lazily recomputes because the ceiling moved
        assert flow.rate_gbps == pytest.approx(1.0)

    def test_completed_flows_keep_terminal_state(self):
        fabric = constant_fabric()
        flow = fabric.add_flow(0, 1, 50.0)
        fabric.compute_rates()
        (completed,) = fabric.advance(fabric.horizon())
        assert completed is flow
        assert flow.flow_id not in fabric.flows
        assert flow.remaining_gbit <= 1e-9
        assert flow.rate_gbps == pytest.approx(10.0)
        # The detached handle is insulated from later fabric activity.
        other = fabric.add_flow(0, 2, 30.0)
        fabric.compute_rates()
        assert flow.rate_gbps == pytest.approx(10.0)
        assert other.rate_gbps == pytest.approx(10.0)


class TestScalarVectorEquivalence:
    @given(
        n_flows=st.integers(min_value=1, max_value=120),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_paths_are_bit_identical(self, n_flows, seed):
        # The scalar reference and the vectorized water-filling must
        # agree to the last bit: the small-n cutover would otherwise
        # make results depend on how many flows happen to be in flight.
        import numpy as np

        from repro.simulator import fabric as fabric_mod

        rng = np.random.default_rng(seed)
        n = 6
        flows = []
        for _ in range(n_flows):
            src, dst = rng.choice(n, size=2, replace=False)
            flows.append((int(src), int(dst), float(rng.uniform(1, 100))))

        def rates_with_cutoff(cutoff):
            original = fabric_mod._SCALAR_CUTOFF
            fabric_mod._SCALAR_CUTOFF = cutoff
            try:
                fab = constant_fabric(n=n, egress=10.0, ingress=8.0)
                handles = [fab.add_flow(*f) for f in flows]
                fab.compute_rates()
                return [h.rate_gbps for h in handles], fab.horizon()
            finally:
                fabric_mod._SCALAR_CUTOFF = original

        scalar_rates, scalar_horizon = rates_with_cutoff(10**9)
        vector_rates, vector_horizon = rates_with_cutoff(0)
        assert scalar_rates == vector_rates
        assert scalar_horizon == vector_horizon


class TestArrayStateManagement:
    def test_grows_past_initial_capacity(self):
        n = 6
        fabric = constant_fabric(n=n, egress=10.0, ingress=10.0)
        flows = [
            fabric.add_flow(i % n, (i + 1 + i // n) % n, 5.0)
            for i in range(0, 500)
            if i % n != (i + 1 + i // n) % n
        ]
        fabric.compute_rates()
        assert len(fabric.flows) == len(flows)
        assert all(f.rate_gbps > 0 for f in flows)
        egress = fabric.node_egress_rates()
        assert all(rate <= 10.0 + 1e-6 for rate in egress)

    def test_remove_middle_flow_keeps_handles_consistent(self):
        fabric = constant_fabric()
        a = fabric.add_flow(0, 1, 10.0)
        b = fabric.add_flow(0, 2, 20.0)
        c = fabric.add_flow(0, 3, 30.0)
        fabric.remove_flow(b)
        assert set(fabric.flows) == {a.flow_id, c.flow_id}
        fabric.compute_rates()
        assert a.rate_gbps == pytest.approx(5.0)
        assert c.rate_gbps == pytest.approx(5.0)
        assert c.remaining_gbit == pytest.approx(30.0)
        # Removed handle froze its last-known state.
        assert b.remaining_gbit == pytest.approx(20.0)

    def test_remove_foreign_or_detached_handle_is_noop(self):
        fabric = constant_fabric()
        mine = fabric.add_flow(0, 1, 10.0)
        # A different fabric's handle shares flow_id 0 with `mine`;
        # removing it must not evict this fabric's flow.
        other_fabric = constant_fabric()
        foreign = other_fabric.add_flow(0, 2, 5.0)
        assert foreign.flow_id == mine.flow_id
        fabric.remove_flow(foreign)
        assert mine.flow_id in fabric.flows
        # Removing an already-removed handle stays a no-op, and the
        # fabric still advances cleanly afterwards.
        fabric.remove_flow(mine)
        fabric.remove_flow(mine)
        assert fabric.flows == {}
        fabric.add_flow(0, 3, 50.0)
        fabric.compute_rates()
        assert len(fabric.advance(fabric.horizon())) == 1

    def test_stale_rates_after_external_mutation_need_invalidate(self):
        # Mutating a shaper behind the fabric's back requires an
        # explicit invalidate_rates(); compute_rates() alone is a no-op
        # while the assignment is still marked valid.
        params = TokenBucketParams(
            peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=1.0,
            capacity_gbit=50.0,
        )
        model = TokenBucketModel(params)
        fabric = Fabric(
            egress_models=[model, ConstantRateModel(10.0)],
            ingress_caps_gbps=[10.0, 10.0],
        )
        flow = fabric.add_flow(0, 1, 500.0)
        fabric.compute_rates()
        assert flow.rate_gbps == pytest.approx(10.0)
        model.set_budget(0.0)
        fabric.invalidate_rates()
        fabric.compute_rates()
        assert flow.rate_gbps == pytest.approx(1.0)


class TestEventHorizonCoalescing:
    """Near-tied shaper horizons must resolve as one event."""

    @staticmethod
    def _near_tie_fabric(coalesce_eps=None):
        # Two identical buckets whose budgets differ by a residue just
        # above the bucket's empty-snap epsilon: without coalescing
        # their depletion horizons land a ~1e-10 relative step apart
        # and fragment the simulation into a sub-nanosecond follow-up.
        params = TokenBucketParams(
            peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95,
            capacity_gbit=100.0,
        )
        models = [TokenBucketModel(params) for _ in range(2)]
        kwargs = {} if coalesce_eps is None else {"coalesce_eps": coalesce_eps}
        fabric = Fabric(models, [10.0, 10.0], **kwargs)
        models[0].set_budget(50.0)
        models[1].set_budget(50.0 + 5e-9)
        fabric.add_flow(0, 1, 1e9)
        fabric.add_flow(1, 0, 1e9)
        fabric.invalidate_rates()
        return fabric, models

    def test_near_ties_transition_in_one_step(self):
        fabric, models = self._near_tie_fabric()
        fabric.compute_rates()
        dt = fabric.horizon()
        # The coalesced bound covers the *later* of the two horizons...
        assert dt == max(m.horizon(10.0) for m in models)
        fabric.advance(dt)
        # ...so both buckets deplete in the same event step.
        assert [m.throttled for m in models] == [True, True]

    def test_disabled_coalescing_fragments_steps(self):
        fabric, models = self._near_tie_fabric(coalesce_eps=0.0)
        fabric.compute_rates()
        dt = fabric.horizon()
        assert dt == min(m.horizon(10.0) for m in models)
        fabric.advance(dt)
        assert [m.throttled for m in models] == [True, False]
        fabric.compute_rates()
        follow_up = fabric.horizon()
        assert 0.0 <= follow_up < 1e-9  # the fragment coalescing removes
        fabric.advance(follow_up)
        assert [m.throttled for m in models] == [True, True]

    def test_flow_bound_far_below_shapers_is_untouched(self):
        params = TokenBucketParams(
            peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95,
            capacity_gbit=1000.0,
        )
        fabric = Fabric(
            [TokenBucketModel(params) for _ in range(2)], [10.0, 10.0]
        )
        flow = fabric.add_flow(0, 1, 5.0)  # completes long before depletion
        fabric.compute_rates()
        assert fabric.horizon() == pytest.approx(flow.completion_time())

    def test_negative_coalesce_eps_rejected(self):
        with pytest.raises(ValueError):
            Fabric(
                [ConstantRateModel(10.0)], [10.0], coalesce_eps=-1e-9
            )
