"""Identity tests for the compiled fabric kernels.

The ``repro.simulator._kernels`` functions are the fabric's hot loops
re-expressed for numba.  The contract is bit-exactness: the plain-
Python ``*_py`` variants (always importable, compiled or not) must
reproduce the fabric's scalar/vectorized reference paths to the last
bit, and — where numba is installed — the compiled entry points must
match the ``*_py`` sources exactly (``fastmath`` stays off, so there
is no FMA contraction to diverge them).
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netmodel import ConstantRateModel
from repro.simulator import Fabric
from repro.simulator import _kernels
from repro.simulator import fabric as fabric_mod

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _random_instance(seed, n_flows, n_nodes=7):
    rng = np.random.default_rng(seed)
    flows = []
    for _ in range(n_flows):
        src, dst = rng.choice(n_nodes, size=2, replace=False)
        flows.append((int(src), int(dst), float(rng.uniform(1, 100))))
    egress = [float(v) for v in rng.uniform(1.0, 12.0, size=n_nodes)]
    ingress = [float(v) for v in rng.uniform(1.0, 12.0, size=n_nodes)]
    return flows, egress, ingress


def _fabric_for(flows, egress, ingress, cutoff):
    original = fabric_mod._SCALAR_CUTOFF
    fabric_mod._SCALAR_CUTOFF = cutoff
    try:
        fab = Fabric(
            egress_models=[ConstantRateModel(e) for e in egress],
            ingress_caps_gbps=ingress,
        )
        for f in flows:
            fab.add_flow(*f)
        fab.compute_rates()
    finally:
        fabric_mod._SCALAR_CUTOFF = original
    return fab


class TestWaterfillKernel:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_flows=st.integers(min_value=1, max_value=90),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_fabric_reference_paths(self, seed, n_flows):
        flows, egress, ingress = _random_instance(seed, n_flows)
        # Run the kernel source directly on the same inputs.
        n = len(flows)
        src = np.array([f[0] for f in flows], dtype=np.intp)
        dst = np.array([f[1] for f in flows], dtype=np.intp)
        rate = np.zeros(n)
        _kernels.waterfill_py(
            src, dst, np.array(egress), np.array(ingress), rate
        )
        # Both fabric paths (scalar reference and vectorized) must
        # produce the exact same assignment.
        for cutoff in (10**9, 0):
            fab = _fabric_for(flows, egress, ingress, cutoff)
            assert fab._rate[:n].tolist() == rate.tolist(), cutoff

    def test_exhausted_resources_freeze_at_zero(self):
        # Three flows out of node 0 with zero egress: all frozen at 0.
        src = np.zeros(3, dtype=np.intp)
        dst = np.array([1, 2, 3], dtype=np.intp)
        rate = np.full(3, -1.0)
        _kernels.waterfill_py(
            src, dst, np.array([0.0, 5.0, 5.0, 5.0]), np.full(4, 5.0), rate
        )
        assert rate.tolist() == [0.0, 0.0, 0.0]


class TestFlowMinBoundKernel:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_matches_horizon_scan(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        remaining = rng.uniform(-1.0, 50.0, size=n)
        rate = rng.uniform(0.0, 5.0, size=n)
        rate[rng.random(n) < 0.3] = 0.0
        # Scalar reference: the fabric's horizon() classification.
        expected = np.inf
        for rem, r in zip(remaining.tolist(), rate.tolist()):
            if rem <= 0.0:
                completion = 0.0
            elif r <= 0.0:
                continue
            else:
                completion = rem / r
            expected = min(expected, completion)
        assert _kernels.flow_min_bound_py(remaining, rate) == expected

    def test_empty_is_unbounded(self):
        assert _kernels.flow_min_bound_py(np.empty(0), np.empty(0)) == np.inf


class TestAdvanceFlowsKernel:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_advance(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        remaining = rng.uniform(0.0, 10.0, size=n)
        rate = rng.uniform(0.0, 5.0, size=n)
        dt = float(rng.uniform(0.0, 3.0))
        eps = 1e-9
        expected = remaining - rate * dt
        expected_done = np.flatnonzero(expected <= eps)
        got = remaining.copy()
        scratch = np.empty(n, dtype=np.int64)
        count = _kernels.advance_flows_py(got, rate, dt, eps, scratch)
        assert got.tolist() == expected.tolist()
        assert scratch[:count].tolist() == expected_done.tolist()


class TestKernelSelection:
    def test_no_jit_env_forces_python_fallback(self):
        code = (
            "from repro.simulator import _kernels\n"
            "assert not _kernels.HAVE_JIT\n"
            "assert _kernels.waterfill is _kernels.waterfill_py\n"
            "assert _kernels.flow_min_bound is _kernels.flow_min_bound_py\n"
            "assert _kernels.advance_flows is _kernels.advance_flows_py\n"
            "print('ok')\n"
        )
        env = dict(os.environ, PYTHONPATH=_SRC, REPRO_NO_JIT="1")
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

    @pytest.mark.skipif(not _kernels.HAVE_JIT, reason="numba not installed")
    def test_compiled_kernels_match_python_sources(self):
        # Only meaningful on the jit CI axis: the njit-compiled entry
        # points must be bit-identical to their interpreted sources.
        for seed in range(10):
            flows, egress, ingress = _random_instance(seed, 40)
            n = len(flows)
            src = np.array([f[0] for f in flows], dtype=np.intp)
            dst = np.array([f[1] for f in flows], dtype=np.intp)
            rate_py = np.zeros(n)
            rate_jit = np.zeros(n)
            _kernels.waterfill_py(
                src, dst, np.array(egress), np.array(ingress), rate_py
            )
            _kernels.waterfill(
                src, dst, np.array(egress), np.array(ingress), rate_jit
            )
            assert rate_py.tolist() == rate_jit.tolist()
            assert _kernels.flow_min_bound(
                rate_py * 3.0, rate_py
            ) == _kernels.flow_min_bound_py(rate_py * 3.0, rate_py)
            rem_py = rate_py * 2.0
            rem_jit = rem_py.copy()
            scratch_py = np.empty(n, dtype=np.int64)
            scratch_jit = np.empty(n, dtype=np.int64)
            c_py = _kernels.advance_flows_py(rem_py, rate_py, 0.7, 1e-9, scratch_py)
            c_jit = _kernels.advance_flows(rem_jit, rate_py, 0.7, 1e-9, scratch_jit)
            assert rem_py.tolist() == rem_jit.tolist()
            assert scratch_py[:c_py].tolist() == scratch_jit[:c_jit].tolist()


class TestHorizonSkipPath:
    def test_skip_path_matches_full_scan(self):
        # After a completion-free advance the cached flow bound lets
        # horizon() skip the O(flows) scan; the returned bound must be
        # identical to a freshly-scanned fabric in the same state.
        from repro.netmodel import TokenBucketModel, TokenBucketParams

        params = TokenBucketParams(
            peak_gbps=10.0,
            capped_gbps=1.0,
            replenish_gbps=0.95,
            capacity_gbit=30.0,
            resume_threshold_gbit=5.0,
        )
        fab = Fabric(
            egress_models=[TokenBucketModel(params) for _ in range(4)],
            ingress_caps_gbps=[10.0] * 4,
        )
        fab.add_flow(0, 1, 500.0)
        fab.add_flow(2, 3, 800.0)
        fab.compute_rates()
        bounds = []
        for _ in range(6):
            h = fab.horizon()
            bounds.append(h)
            # Step short of the horizon so no flow completes and (for
            # sub-horizon steps) no shaper transitions: the cache stays
            # live and subsequent horizon() calls may skip the scan.
            fab.advance(h * 0.25)
        # Replay the same trajectory with the cache disabled after
        # every advance (forcing the full scan each time).
        fab2 = Fabric(
            egress_models=[TokenBucketModel(params) for _ in range(4)],
            ingress_caps_gbps=[10.0] * 4,
        )
        fab2.add_flow(0, 1, 500.0)
        fab2.add_flow(2, 3, 800.0)
        fab2.compute_rates()
        bounds2 = []
        for _ in range(6):
            fab2._flow_bound_valid = False
            h = fab2.horizon()
            bounds2.append(h)
            fab2.advance(h * 0.25)
            fab2._flow_bound_valid = False
        assert bounds == bounds2

    def test_cache_invalidated_by_mutations(self):
        fab = Fabric(
            egress_models=[ConstantRateModel(10.0) for _ in range(3)],
            ingress_caps_gbps=[10.0] * 3,
        )
        flow = fab.add_flow(0, 1, 100.0)
        fab.compute_rates()
        fab.horizon()
        assert fab._flow_bound_valid
        flow.remaining_gbit = 1.0
        assert not fab._flow_bound_valid
        # The refreshed scan sees the shrunken flow.
        assert fab.horizon() == 1.0 / flow.rate_gbps
        fab.add_flow(1, 2, 50.0)
        assert not fab._flow_bound_valid
        fab.compute_rates()
        fab.horizon()
        assert fab._flow_bound_valid
        fab.invalidate_rates()
        assert not fab._flow_bound_valid
