"""Tests for the HDFS substrate and job descriptions."""

import numpy as np
import pytest

from repro.simulator import HdfsCluster, JobSpec, StageSpec


class TestHdfs:
    def test_write_places_blocks_with_replication(self):
        hdfs = HdfsCluster(n_nodes=12, replication=3, block_gbit=1.0)
        file = hdfs.write("data", 10.0)
        assert file.n_blocks == 10
        for replicas in file.placements:
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_duplicate_write_rejected(self):
        hdfs = HdfsCluster(n_nodes=4)
        hdfs.write("data", 1.0)
        with pytest.raises(ValueError):
            hdfs.write("data", 1.0)

    def test_delete(self):
        hdfs = HdfsCluster(n_nodes=4)
        hdfs.write("data", 1.0)
        hdfs.delete("data")
        with pytest.raises(KeyError):
            hdfs.delete("data")

    def test_usage_accounts_replicas(self):
        hdfs = HdfsCluster(n_nodes=6, replication=3, block_gbit=1.0)
        hdfs.write("data", 6.0)
        usage = hdfs.node_usage_gbit()
        assert sum(usage) == pytest.approx(18.0)  # 6 blocks x 3 replicas

    def test_read_plan_conserves_volume(self):
        hdfs = HdfsCluster(n_nodes=12, replication=3, block_gbit=1.0)
        hdfs.write("data", 40.0)
        local, remote = hdfs.read_plan("data", reader_node=0)
        assert local + sum(remote.values()) == pytest.approx(40.0)
        assert 0 not in remote  # never fetch from yourself

    def test_locality_fraction_high_when_all_nodes_read(self):
        hdfs = HdfsCluster(n_nodes=12, replication=3)
        hdfs.write("data", 100.0)
        fraction = hdfs.locality_fraction("data", list(range(12)))
        assert fraction == 1.0  # every block has a replica on a reader

    def test_locality_fraction_lower_for_single_reader(self):
        hdfs = HdfsCluster(n_nodes=12, replication=3)
        hdfs.write("data", 200.0)
        fraction = hdfs.locality_fraction("data", [0])
        # Single reader holds ~3/12 of blocks.
        assert 0.1 < fraction < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HdfsCluster(n_nodes=2, replication=3)
        with pytest.raises(ValueError):
            HdfsCluster(n_nodes=2, block_gbit=0.0)
        hdfs = HdfsCluster(n_nodes=4)
        with pytest.raises(ValueError):
            hdfs.write("x", 0.0)
        hdfs.write("y", 1.0)
        with pytest.raises(ValueError):
            hdfs.locality_fraction("y", [])


class TestStageSpec:
    def test_network_gbit(self):
        stage = StageSpec(
            name="s", num_tasks=4, compute_s=1.0,
            shuffle_gbit=100.0, input_gbit=50.0, input_locality=0.8,
        )
        assert stage.network_gbit == pytest.approx(110.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StageSpec(name="s", num_tasks=0, compute_s=1.0)
        with pytest.raises(ValueError):
            StageSpec(name="s", num_tasks=1, compute_s=-1.0)
        with pytest.raises(ValueError):
            StageSpec(name="s", num_tasks=1, compute_s=1.0, input_locality=1.5)
        with pytest.raises(ValueError):
            StageSpec(name="s", num_tasks=1, compute_s=1.0, shuffle_gbit=-1.0)


class TestJobSpec:
    def test_topological_order_enforced(self):
        with pytest.raises(ValueError):
            JobSpec(
                name="bad",
                stages=(
                    StageSpec(name="a", num_tasks=1, compute_s=1.0, parents=(0,)),
                ),
            )
        with pytest.raises(ValueError):
            JobSpec(
                name="bad",
                stages=(
                    StageSpec(name="a", num_tasks=1, compute_s=1.0),
                    StageSpec(name="b", num_tasks=1, compute_s=1.0, parents=(5,)),
                ),
            )

    def test_empty_job_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(name="empty", stages=())

    def test_totals(self):
        job = JobSpec(
            name="j",
            stages=(
                StageSpec(name="a", num_tasks=10, compute_s=2.0),
                StageSpec(
                    name="b", num_tasks=5, compute_s=4.0,
                    shuffle_gbit=100.0, parents=(0,),
                ),
            ),
        )
        assert job.total_compute_s == pytest.approx(40.0)
        assert job.total_network_gbit == pytest.approx(100.0)
        assert job.network_intensity(10.0) == pytest.approx(10.0 / 40.0)
