"""The refactor seam: workloads over the extracted event core.

The stream engine's loop was extracted into
:class:`repro.simulator.core.EventCore`; these tests pin the seam
itself — the hook protocol both workloads implement, the timer heap's
ordering contract, and the begin / prologue / epilogue / finish
decomposition: driving a state through the public helpers step by step
must reproduce ``execute()`` bit for bit, because that is exactly what
the batched multistream driver does.  (The golden-trace and scheduler
suites pin the *values* against pre-refactor fixtures; the bench
``--check`` gate pins them on both jit legs.)
"""

import math

import numpy as np
import pytest

from repro.netmodel import ConstantRateModel, TokenBucketModel
from repro.scenarios.generate import job_stream, poisson_arrivals
from repro.serving.arrivals import poisson_process
from repro.serving.state import ServingState
from repro.serving.topology import ServiceTopology
from repro.simulator import Cluster, NodeSpec, SparkEngine
from repro.simulator.core import EventCore, WorkloadSource
from repro.simulator.engine import _StreamState
from repro.simulator.multistream import run_cores
from tests.simulator.test_golden_trace import _BUCKET, _snapshot


def stream_state(seed=20260727, n_jobs=4, scheduler="fair"):
    rng = np.random.default_rng(seed)
    cluster = Cluster(
        n_nodes=5,
        node_spec=NodeSpec(slots=4),
        link_model_factory=lambda node: TokenBucketModel(_BUCKET),
    )
    times = poisson_arrivals(rng, rate_per_min=3.0, n_jobs=n_jobs)
    stream = job_stream(rng, times, n_nodes=5, slots=4, data_scale=0.15)
    engine = SparkEngine(cluster, rng=rng, sample_interval_s=5.0)
    return _StreamState(
        engine, stream, cluster.build_fabric(), scheduler=scheduler
    )


def serving_state(seed=3):
    cluster = Cluster(
        n_nodes=4,
        node_spec=NodeSpec(),
        link_model_factory=lambda node: ConstantRateModel(10.0),
    )
    engine = SparkEngine(cluster, rng=np.random.default_rng(seed))
    return ServingState(
        engine,
        ServiceTopology.three_tier(),
        cluster.build_fabric(),
        duration_s=15.0,
        arrivals=poisson_process(engine.rng, 8.0, 15.0),
    )


def drive_externally(state):
    """Replay ``EventCore.execute`` through its public seam helpers."""
    state.begin()
    for _ in range(state.max_steps):
        if state.all_done:
            return state.finish()
        dt = min(state.fabric.horizon(), state.step_prologue())
        if math.isinf(dt):
            raise state.deadlock_error()
        state.step_epilogue(max(dt, 0.0), state.fabric.advance(max(dt, 0.0)))
    raise RuntimeError("step budget exhausted")


class TestProtocol:
    @pytest.mark.parametrize("make", [stream_state, serving_state])
    def test_workloads_are_event_cores(self, make):
        state = make()
        assert isinstance(state, EventCore)
        assert isinstance(state, WorkloadSource)

    def test_base_core_hooks_are_abstract_or_inert(self):
        cluster = Cluster(
            n_nodes=2,
            node_spec=NodeSpec(),
            link_model_factory=lambda node: ConstantRateModel(10.0),
        )
        engine = SparkEngine(cluster, rng=np.random.default_rng(0))
        core = EventCore(engine, cluster.build_fabric())
        # Arrival hooks default to "no external arrivals".
        assert core._next_arrival_time() == math.inf
        core._admit_arrivals()
        core._try_launch()
        for call in (
            lambda: core.all_done,
            lambda: core._on_timer(None),
            lambda: core._on_flow_complete(None),
            lambda: core._build_result(),
        ):
            with pytest.raises(NotImplementedError):
                call()


class _Tick:
    cancelled = False

    def __init__(self, tag):
        self.tag = tag


class TimerOnlyCore(EventCore):
    """A minimal workload: pre-scheduled timers, nothing else."""

    def __init__(self, engine, fabric, timers):
        super().__init__(engine, fabric)
        self.fired = []
        for due, tag in timers:
            self.schedule_timer(due, _Tick(tag))

    @property
    def all_done(self):
        return not self.timer_heap

    def _on_timer(self, payload):
        self.fired.append((self.now, payload.tag))

    def _on_flow_complete(self, flow):
        pass

    def _build_result(self):
        return list(self.fired)


def timer_core(timers):
    cluster = Cluster(
        n_nodes=2,
        node_spec=NodeSpec(),
        link_model_factory=lambda node: ConstantRateModel(10.0),
    )
    engine = SparkEngine(cluster, rng=np.random.default_rng(0))
    return TimerOnlyCore(engine, cluster.build_fabric(), timers)


class TestTimerHeap:
    def test_timers_fire_in_time_order(self):
        core = timer_core([(3.0, "c"), (1.0, "a"), (2.0, "b")])
        assert core.execute() == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_equal_due_times_fire_in_schedule_order(self):
        # The monotone sequence number breaks ties stably — and one
        # event step drains the whole equal-time batch.
        core = timer_core([(1.0, i) for i in range(5)])
        result = core.execute()
        assert result == [(1.0, i) for i in range(5)]
        assert core._n_steps == 1

    def test_cancelled_timers_are_discarded(self):
        core = timer_core([(1.0, "live"), (1.0, "dead"), (2.0, "live2")])
        core.timer_heap[1][2].cancelled = True
        fired = [tag for _, tag in core.execute()]
        assert fired == ["live", "live2"]

    def test_purge_keeps_cancelled_heads_from_bounding_steps(self):
        # With purging on, a cancelled timer at the head must not
        # shorten the step: the first real event lands at t=5.
        core = timer_core([(1.0, "dead"), (5.0, "live")])
        core._purge_cancelled = True
        core.timer_heap[0][2].cancelled = True
        assert core.execute() == [(5.0, "live")]
        assert core._n_steps == 1

    def test_deadlock_is_detected(self):
        core = timer_core([])
        # Claim work remains while no event source can make progress.
        TimerOnlyCore.all_done.fget  # (property exists)
        core.fired = None  # sentinel irrelevant; force the loop in:
        type(core).all_done = property(lambda self: False)
        try:
            with pytest.raises(RuntimeError, match="deadlock"):
                core.execute()
        finally:
            del type(core).all_done


class TestSeamEquivalence:
    """External stepping == execute(), for both workloads."""

    @pytest.mark.parametrize("scheduler", ["fifo", "fair", "preempt"])
    def test_stream_state_external_drive_matches_execute(self, scheduler):
        serial = _snapshot(stream_state(scheduler=scheduler).execute())
        stepped = _snapshot(
            drive_externally(stream_state(scheduler=scheduler))
        )
        assert stepped == serial

    def test_serving_state_external_drive_matches_execute(self):
        serial = serving_state().execute()
        stepped = drive_externally(serving_state())
        assert stepped.latency == serial.latency
        assert stepped.windows == serial.windows
        assert stepped.n_steps == serial.n_steps
        assert stepped.sample_times.tolist() == serial.sample_times.tolist()
        assert stepped.egress_rates.tolist() == serial.egress_rates.tolist()

    def test_run_cores_drives_stream_states_bit_identically(self):
        seeds = [401, 402, 403]
        serial = [_snapshot(stream_state(seed=s).execute()) for s in seeds]
        batched = [
            _snapshot(r)
            for r in run_cores([stream_state(seed=s) for s in seeds])
        ]
        assert batched == serial
