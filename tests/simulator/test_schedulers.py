"""Scheduler-family tests: preempt/srpt/edf, deadlines, fair spill.

The equivalence contract: every scheduler collapses to the plain FIFO
single-job execution when only one job exists (same launches, same RNG
draw order, bit-identical telemetry), and the new policies only change
*which* job gets slots, never how the fluid fabric integrates.
"""

import math

import numpy as np
import pytest

from repro.netmodel import ConstantRateModel, TokenBucketModel, TokenBucketParams
from repro.simulator import Cluster, JobSpec, NodeSpec, SparkEngine, StageSpec
from repro.simulator.engine import SCHEDULERS

TB_PARAMS = TokenBucketParams(
    peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95, capacity_gbit=400.0
)

NEW_SCHEDULERS = ("preempt", "srpt", "edf")


def constant_cluster(n=2, slots=4):
    return Cluster(
        n_nodes=n,
        node_spec=NodeSpec(slots=slots),
        link_model_factory=lambda node: ConstantRateModel(10.0),
    )


def bucket_cluster(budget, n=6):
    return Cluster(
        n_nodes=n,
        node_spec=NodeSpec(slots=4),
        link_model_factory=lambda node: TokenBucketModel(
            TB_PARAMS.with_budget(budget)
        ),
    )


def compute_job(name="cpu", tasks=8, compute=3.0):
    return JobSpec(
        name=name,
        stages=(
            StageSpec(name="only", num_tasks=tasks, compute_s=compute, compute_cov=0.0),
        ),
    )


def shuffle_job(name="job", shuffle=100.0, tasks=8, compute=1.0, cov=0.0):
    return JobSpec(
        name=name,
        stages=(
            StageSpec(name="map", num_tasks=tasks, compute_s=compute, compute_cov=cov),
            StageSpec(
                name="reduce",
                num_tasks=tasks,
                compute_s=compute,
                compute_cov=cov,
                shuffle_gbit=shuffle,
                parents=(0,),
            ),
        ),
    )


class TestSingleJobEquivalence:
    """Every scheduler must reproduce run() bit-exactly for one job."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_matches_run_bit_exactly(self, scheduler):
        job = shuffle_job(shuffle=800.0, tasks=48, compute=5.0, cov=0.2)
        direct = SparkEngine(
            bucket_cluster(100.0), rng=np.random.default_rng(7)
        ).run(job)
        stream = SparkEngine(
            bucket_cluster(100.0), rng=np.random.default_rng(7)
        ).run_stream([(0.0, job)], scheduler=scheduler)
        result = stream.job_results[0]
        assert result.runtime_s == direct.runtime_s
        assert result.stage_windows == direct.stage_windows
        assert np.array_equal(result.sample_times, direct.sample_times)
        assert np.array_equal(result.egress_rates, direct.egress_rates)
        assert np.array_equal(result.budgets, direct.budgets)
        assert np.array_equal(result.tasks_per_node, direct.tasks_per_node)

    @pytest.mark.parametrize("scheduler", NEW_SCHEDULERS)
    def test_single_job_with_deadline_changes_nothing(self, scheduler):
        job = compute_job(tasks=24, compute=2.0)
        plain = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(3)
        ).run_stream([(0.0, job)], scheduler=scheduler)
        deadlined = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(3)
        ).run_stream([(0.0, job, 500.0)], scheduler=scheduler)
        assert (
            deadlined.job_results[0].runtime_s == plain.job_results[0].runtime_s
        )
        assert deadlined.job_results[0].deadline_missed is False
        assert plain.job_results[0].deadline_missed is None


class TestGoldenTraceReplay:
    """The golden reference stream replays deterministically under the
    new schedulers (the fixture itself pins the fair scheduler)."""

    def _replay(self, scheduler):
        from tests.simulator.test_golden_trace import (
            _BUCKET,
            _snapshot,
        )
        from repro.scenarios.generate import job_stream, poisson_arrivals

        rng = np.random.default_rng(20260727)
        cluster = Cluster(
            n_nodes=6,
            node_spec=NodeSpec(slots=4),
            link_model_factory=lambda node: TokenBucketModel(_BUCKET),
        )
        times = poisson_arrivals(rng, rate_per_min=3.0, n_jobs=6)
        stream = job_stream(rng, times, n_nodes=6, slots=4, data_scale=0.15)
        engine = SparkEngine(cluster, rng=rng, sample_interval_s=5.0)
        return _snapshot(engine.run_stream(stream, scheduler=scheduler))

    @pytest.mark.parametrize("scheduler", NEW_SCHEDULERS)
    def test_replay_is_deterministic_and_finite(self, scheduler):
        first = self._replay(scheduler)
        second = self._replay(scheduler)
        assert first == second
        assert all(
            math.isfinite(j["runtime_s"]) and j["runtime_s"] > 0
            for j in first["jobs"]
        )
        assert first["scheduler"] == scheduler


class TestPreemptiveFair:
    def test_starved_tenant_preempts_over_share_job(self):
        # A's single long wave holds every slot; under plain fair B must
        # wait the whole 30 s, under preempt B's arrival checkpoints
        # part of A's wave and B runs immediately.
        a = compute_job("a", tasks=8, compute=30.0)
        b = compute_job("b", tasks=4, compute=1.0)
        arrivals = [(0.0, a), (1.0, b)]
        fair = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(0)
        ).run_stream(arrivals, scheduler="fair")
        pre = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(0)
        ).run_stream(arrivals, scheduler="preempt")
        assert fair.job_results[1].runtime_s == pytest.approx(30.0)
        assert pre.job_results[1].runtime_s == pytest.approx(1.0)
        # The preempted tasks restart: A pays for B's service.
        assert (
            pre.job_results[0].runtime_s > fair.job_results[0].runtime_s - 1e-9
        )

    def test_preempted_shuffle_flows_are_withdrawn(self):
        # Preempt a group whose shuffle fetches are in flight: the
        # stream must still converge, with every task accounted for.
        a = shuffle_job("a", shuffle=600.0, tasks=8, compute=10.0)
        b = compute_job("b", tasks=4, compute=1.0)
        result = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(1)
        ).run_stream([(0.0, a), (2.0, b)], scheduler="preempt")
        assert all(math.isfinite(r.runtime_s) for r in result.job_results)
        assert result.job_results[0].tasks_per_node.sum() == 16
        assert result.job_results[1].tasks_per_node.sum() == 4

    def test_no_preemption_when_slots_are_free(self):
        # Half-empty cluster: the starved-tenant plan must never fire,
        # so preempt degenerates to fair exactly.
        a = compute_job("a", tasks=4, compute=5.0)
        b = compute_job("b", tasks=4, compute=5.0)
        arrivals = [(0.0, a), (1.0, b)]
        fair = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(0)
        ).run_stream(arrivals, scheduler="fair")
        pre = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(0)
        ).run_stream(arrivals, scheduler="preempt")
        assert [r.runtime_s for r in pre.job_results] == [
            r.runtime_s for r in fair.job_results
        ]

    def test_preempt_deterministic(self):
        jobs = [
            (0.0, shuffle_job("a", shuffle=900.0, tasks=24, compute=4.0, cov=0.2)),
            (3.0, compute_job("b", tasks=8, compute=2.0)),
            (5.0, shuffle_job("c", shuffle=300.0, tasks=16, compute=1.0, cov=0.2)),
        ]

        def run():
            return SparkEngine(
                bucket_cluster(200.0), rng=np.random.default_rng(11)
            ).run_stream(jobs, scheduler="preempt")

        r1, r2 = run(), run()
        assert [a.runtime_s for a in r1.job_results] == [
            b.runtime_s for b in r2.job_results
        ]
        assert np.array_equal(r1.sample_times, r2.sample_times)
        assert np.array_equal(r1.egress_rates, r2.egress_rates)


class TestSrpt:
    def test_short_job_jumps_long_queue(self):
        long_ = compute_job("long", tasks=40, compute=5.0)
        short = compute_job("short", tasks=8, compute=1.0)
        arrivals = [(0.0, long_), (0.5, short)]
        fifo = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(0)
        ).run_stream(arrivals, scheduler="fifo")
        srpt = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(0)
        ).run_stream(arrivals, scheduler="srpt")
        assert srpt.job_results[1].runtime_s < 0.5 * fifo.job_results[1].runtime_s

    def test_rank_tracks_outstanding_work(self):
        # Two equal jobs: once the first makes progress, it stays ahead
        # (monotone SRPT), so jobs drain one after the other rather
        # than round-robining — makespan matches FIFO here.
        a = compute_job("a", tasks=16, compute=3.0)
        b = compute_job("b", tasks=16, compute=3.0)
        result = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(0)
        ).run_stream([(0.0, a), (0.0, b)], scheduler="srpt")
        runtimes = [r.runtime_s for r in result.job_results]
        assert runtimes[0] == pytest.approx(6.0)
        assert runtimes[1] == pytest.approx(12.0)


class TestEdf:
    def test_tight_deadline_wins_slots(self):
        # Without deadlines FIFO order would run A first; EDF must give
        # the slot wave to B, whose deadline is tight.
        a = compute_job("a", tasks=8, compute=3.0)
        b = compute_job("b", tasks=8, compute=3.0)
        result = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(0)
        ).run_stream(
            [(0.0, a, 1000.0), (0.0, b, 4.0)], scheduler="edf"
        )
        ra, rb = result.job_results
        assert rb.runtime_s == pytest.approx(3.0)
        assert ra.runtime_s == pytest.approx(6.0)
        assert rb.deadline_missed is False
        assert ra.deadline_missed is False  # 1000 s of slack: both make it
        assert result.deadline_miss_rate() == 0.0

    def test_deadlined_jobs_outrank_undeadlined(self):
        a = compute_job("a", tasks=8, compute=3.0)  # no deadline
        b = compute_job("b", tasks=8, compute=3.0)
        result = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(0)
        ).run_stream([(0.0, a), (0.0, b, 50.0)], scheduler="edf")
        ra, rb = result.job_results
        assert rb.runtime_s == pytest.approx(3.0)
        assert ra.runtime_s == pytest.approx(6.0)

    def test_miss_telemetry(self):
        a = compute_job("a", tasks=8, compute=3.0)
        b = compute_job("b", tasks=8, compute=3.0)
        result = SparkEngine(
            constant_cluster(), rng=np.random.default_rng(0)
        ).run_stream(
            [(0.0, a, 3.5), (0.0, b, 4.0)], scheduler="edf"
        )
        # One of the two waves necessarily runs second and misses.
        assert result.deadline_miss_rate() == pytest.approx(0.5)
        misses = result.deadline_misses()
        assert misses.size == 2 and misses.sum() == 1
        rows = result.rows()
        assert {"deadline_s", "missed", "slowdown"} <= set(rows[0])

    def test_deadline_validation(self):
        engine = SparkEngine(constant_cluster())
        with pytest.raises(ValueError, match="deadline"):
            engine.run_stream(
                [(10.0, compute_job(), 5.0)], scheduler="edf"
            )

    def test_slowdowns_reported_for_all_schedulers(self):
        a = compute_job("a", tasks=8, compute=3.0)
        b = compute_job("b", tasks=8, compute=3.0)
        for scheduler in SCHEDULERS:
            result = SparkEngine(
                constant_cluster(), rng=np.random.default_rng(0)
            ).run_stream([(0.0, a), (0.0, b)], scheduler=scheduler)
            slowdowns = result.slowdowns()
            assert slowdowns.shape == (2,)
            assert (slowdowns >= 1.0 - 1e-9).all()
            assert result.deadline_miss_rate() == 0.0


class TestFairSpillRoundRobin:
    def test_remainder_slots_split_across_equally_deficient_peers(self):
        # Three tenants on 8 slots: share = 2 each, 2 remainder slots.
        # The buggy spill handed both to the first job in sort order
        # (it finished its 4 tasks in one wave, t=3); round-robin gives
        # one each to two tenants, so no tenant finishes early.
        cluster = constant_cluster(n=4, slots=2)
        jobs = [compute_job(f"j{i}", tasks=4, compute=3.0) for i in range(3)]
        result = SparkEngine(cluster, rng=np.random.default_rng(0)).run_stream(
            [(0.0, job) for job in jobs], scheduler="fair"
        )
        runtimes = [r.runtime_s for r in result.job_results]
        assert runtimes == pytest.approx([6.0, 6.0, 6.0])

    def test_two_tenant_remainder_is_stable(self):
        # Two tenants on an odd slot count: the single remainder slot
        # goes to the most starved job; totals must stay conserved and
        # both finish together in the balanced case.
        cluster = constant_cluster(n=3, slots=3)  # 9 slots
        a = compute_job("a", tasks=9, compute=3.0)
        b = compute_job("b", tasks=9, compute=3.0)
        result = SparkEngine(cluster, rng=np.random.default_rng(0)).run_stream(
            [(0.0, a), (0.0, b)], scheduler="fair"
        )
        ra, rb = result.job_results
        assert ra.tasks_per_node.sum() == 9
        assert rb.tasks_per_node.sum() == 9
        assert abs(ra.runtime_s - rb.runtime_s) <= 3.0 + 1e-9
