"""Tests for multi-job stream execution on a shared fabric."""

import numpy as np
import pytest

from repro.netmodel import ConstantRateModel, TokenBucketModel, TokenBucketParams
from repro.simulator import Cluster, JobSpec, NodeSpec, SparkEngine, StageSpec

TB_PARAMS = TokenBucketParams(
    peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95, capacity_gbit=5_400.0
)


def constant_cluster(n=2, rate=10.0, slots=4):
    return Cluster(
        n_nodes=n,
        node_spec=NodeSpec(slots=slots),
        link_model_factory=lambda node: ConstantRateModel(rate),
    )


def bucket_cluster(budget, n=12):
    def factory(node):
        return TokenBucketModel(TB_PARAMS.with_budget(budget))

    return Cluster.paper_testbed(factory)


def shuffle_job(name="job", shuffle=100.0, tasks=8, compute=1.0, cov=0.0):
    return JobSpec(
        name=name,
        stages=(
            StageSpec(name="map", num_tasks=tasks, compute_s=compute, compute_cov=cov),
            StageSpec(
                name="reduce",
                num_tasks=tasks,
                compute_s=compute,
                compute_cov=cov,
                shuffle_gbit=shuffle,
                parents=(0,),
            ),
        ),
    )


def compute_job(name="cpu", tasks=8, compute=3.0):
    return JobSpec(
        name=name,
        stages=(StageSpec(name="only", num_tasks=tasks, compute_s=compute, compute_cov=0.0),),
    )


class TestStreamBasics:
    def test_single_job_stream_matches_run(self):
        job = shuffle_job(shuffle=2_000.0, tasks=48, compute=5.0, cov=0.2)
        direct = SparkEngine(bucket_cluster(100.0), rng=np.random.default_rng(7)).run(job)
        stream = SparkEngine(
            bucket_cluster(100.0), rng=np.random.default_rng(7)
        ).run_stream([(0.0, job)])
        assert len(stream) == 1
        assert stream.job_results[0].runtime_s == direct.runtime_s
        assert stream.makespan_s == direct.runtime_s

    def test_sequential_arrivals_do_not_overlap(self):
        # Second job arrives long after the first finishes: its response
        # time equals a solo run of the same job.
        cluster = constant_cluster(n=2)
        job = compute_job(tasks=8, compute=3.0)
        solo = SparkEngine(constant_cluster(n=2), rng=np.random.default_rng(0)).run(job)
        result = SparkEngine(cluster, rng=np.random.default_rng(0)).run_stream(
            [(0.0, job), (100.0, job)]
        )
        second = result.job_results[1]
        assert second.submit_s == 100.0
        assert second.runtime_s == pytest.approx(solo.runtime_s)
        assert result.makespan_s == pytest.approx(100.0 + solo.runtime_s)

    def test_fifo_contention_delays_later_job(self):
        # Two single-wave compute jobs submitted together on one wave of
        # slots: FIFO runs them back to back.
        cluster = constant_cluster(n=2)
        a = compute_job("a", tasks=8, compute=3.0)
        b = compute_job("b", tasks=8, compute=3.0)
        result = SparkEngine(cluster, rng=np.random.default_rng(0)).run_stream(
            [(0.0, a), (0.0, b)], scheduler="fifo"
        )
        ra, rb = result.job_results
        assert ra.runtime_s == pytest.approx(3.0)
        assert rb.runtime_s == pytest.approx(6.0)
        assert result.queueing_delays()[1] == pytest.approx(3.0)

    def test_fair_shares_slots(self):
        # Same two jobs under fair scheduling: each gets half the slots,
        # so both finish together after two waves.
        cluster = constant_cluster(n=2)
        a = compute_job("a", tasks=8, compute=3.0)
        b = compute_job("b", tasks=8, compute=3.0)
        result = SparkEngine(cluster, rng=np.random.default_rng(0)).run_stream(
            [(0.0, a), (0.0, b)], scheduler="fair"
        )
        ra, rb = result.job_results
        assert ra.runtime_s == pytest.approx(6.0)
        assert rb.runtime_s == pytest.approx(6.0)

    def test_fair_is_not_fifo_under_staggered_arrivals(self):
        # Job A grabs the whole cluster before B arrives.  A true fair
        # scheduler must hand freed slots to B (the job below its fair
        # share) instead of letting A reclaim them one by one, so B
        # finishes much earlier than under FIFO.
        a = compute_job("a", tasks=40, compute=3.0)
        b = compute_job("b", tasks=8, compute=3.0)
        arrivals = [(0.0, a), (1.0, b)]
        fifo = SparkEngine(constant_cluster(n=2), rng=np.random.default_rng(0)).run_stream(
            arrivals, scheduler="fifo"
        )
        fair = SparkEngine(constant_cluster(n=2), rng=np.random.default_rng(0)).run_stream(
            arrivals, scheduler="fair"
        )
        fifo_b = fifo.job_results[1].runtime_s
        fair_b = fair.job_results[1].runtime_s
        # FIFO: B waits for all five of A's waves (finishes t=18).
        assert fifo_b == pytest.approx(17.0)
        # Fair: B gets its share as soon as A's first wave frees slots.
        assert fair_b < 0.6 * fifo_b
        # A pays for it: fair trades A's latency for B's.
        assert fair.job_results[0].runtime_s > fifo.job_results[0].runtime_s

    def test_results_ordered_by_submission(self):
        cluster = constant_cluster(n=2)
        result = SparkEngine(cluster, rng=np.random.default_rng(0)).run_stream(
            [(50.0, compute_job("late")), (0.0, compute_job("early"))]
        )
        assert [r.job_name for r in result.job_results] == ["early", "late"]
        assert result.rows()[0]["job"] == "early"

    def test_validation(self):
        engine = SparkEngine(constant_cluster())
        with pytest.raises(ValueError):
            engine.run_stream([])
        with pytest.raises(ValueError):
            engine.run_stream([(0.0, compute_job())], scheduler="lottery")
        with pytest.raises(ValueError):
            engine.run_stream([(-1.0, compute_job())])


class TestStreamCarryOver:
    def test_bucket_depletion_carries_into_later_jobs(self):
        # A heavy shuffle empties the shared buckets (400 Gbit egress
        # per node); a probe job arriving afterwards meets depleted
        # buckets and runs slower than on a fresh cluster (Figure 19,
        # multi-tenant form).
        heavy = shuffle_job("heavy", shuffle=4_800.0, tasks=48, compute=1.0)
        probe = shuffle_job("probe", shuffle=2_400.0, tasks=48, compute=1.0)
        fresh = SparkEngine(bucket_cluster(400.0), rng=np.random.default_rng(0)).run(probe)
        engine = SparkEngine(bucket_cluster(400.0), rng=np.random.default_rng(0))
        heavy_alone = SparkEngine(
            bucket_cluster(400.0), rng=np.random.default_rng(0)
        ).run(heavy)
        stream = engine.run_stream(
            [(0.0, heavy), (heavy_alone.runtime_s + 10.0, probe)]
        )
        assert stream.job_results[1].runtime_s > 1.2 * fresh.runtime_s

    def test_contention_slows_both_tenants(self):
        job_a = shuffle_job("a", shuffle=1_200.0, tasks=48, compute=1.0)
        job_b = shuffle_job("b", shuffle=1_200.0, tasks=48, compute=1.0)
        solo = SparkEngine(bucket_cluster(5_000.0), rng=np.random.default_rng(0)).run(job_a)
        both = SparkEngine(
            bucket_cluster(5_000.0), rng=np.random.default_rng(0)
        ).run_stream([(0.0, job_a), (0.0, job_b)], scheduler="fair")
        assert min(r.runtime_s for r in both.job_results) > solo.runtime_s

    def test_stream_telemetry_spans_makespan(self):
        job = shuffle_job(shuffle=1_000.0, tasks=48, compute=1.0)
        result = SparkEngine(
            bucket_cluster(400.0), rng=np.random.default_rng(0)
        ).run_stream([(0.0, job), (30.0, job)])
        assert result.sample_times[0] == 0.0
        assert result.sample_times[-1] == pytest.approx(result.makespan_s)
        assert result.budgets is not None
        assert result.egress_rates.shape[0] == 12
        # Per-job telemetry is windowed to the job's active interval.
        second = result.job_results[1]
        assert second.sample_times[0] >= second.submit_s - 1e-9
        assert second.sample_times[-1] <= second.finish_s + 1e-9


class TestStreamDeterminism:
    def test_same_seed_bit_identical(self):
        jobs = [
            (0.0, shuffle_job("a", shuffle=1_500.0, tasks=48, compute=5.0, cov=0.2)),
            (20.0, shuffle_job("b", shuffle=800.0, tasks=24, compute=2.0, cov=0.2)),
            (45.0, compute_job("c", tasks=24, compute=4.0)),
        ]

        def run():
            engine = SparkEngine(bucket_cluster(500.0), rng=np.random.default_rng(11))
            return engine.run_stream(jobs, scheduler="fair")

        r1, r2 = run(), run()
        assert [a.runtime_s for a in r1.job_results] == [
            b.runtime_s for b in r2.job_results
        ]
        assert np.array_equal(r1.sample_times, r2.sample_times)
        assert np.array_equal(r1.egress_rates, r2.egress_rates)
