"""Tests for the Spark-like execution engine."""

import numpy as np
import pytest

from repro.netmodel import ConstantRateModel, TokenBucketModel, TokenBucketParams
from repro.simulator import Cluster, JobSpec, NodeSpec, SparkEngine, StageSpec

TB_PARAMS = TokenBucketParams(
    peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95, capacity_gbit=5_400.0
)


def constant_cluster(n=2, rate=10.0, slots=4):
    return Cluster(
        n_nodes=n,
        node_spec=NodeSpec(slots=slots),
        link_model_factory=lambda node: ConstantRateModel(rate),
    )


def bucket_cluster(budget, n=12):
    def factory(node):
        return TokenBucketModel(TB_PARAMS.with_budget(budget))

    return Cluster.paper_testbed(factory)


def two_stage_job(shuffle=100.0, tasks=8, compute=1.0, cov=0.0):
    return JobSpec(
        name="job",
        stages=(
            StageSpec(name="map", num_tasks=tasks, compute_s=compute, compute_cov=cov),
            StageSpec(
                name="reduce",
                num_tasks=tasks,
                compute_s=compute,
                compute_cov=cov,
                shuffle_gbit=shuffle,
                parents=(0,),
            ),
        ),
    )


class TestBasicExecution:
    def test_compute_only_job_runtime(self):
        # 8 tasks, 2 nodes x 4 slots -> one wave of exactly compute_s.
        cluster = constant_cluster(n=2)
        engine = SparkEngine(cluster, rng=np.random.default_rng(0))
        job = JobSpec(
            name="compute",
            stages=(StageSpec(name="only", num_tasks=8, compute_s=3.0, compute_cov=0.0),),
        )
        result = engine.run(job)
        assert result.runtime_s == pytest.approx(3.0)

    def test_two_waves_double_runtime(self):
        cluster = constant_cluster(n=2)
        engine = SparkEngine(cluster, rng=np.random.default_rng(0))
        job = JobSpec(
            name="compute",
            stages=(StageSpec(name="only", num_tasks=16, compute_s=3.0, compute_cov=0.0),),
        )
        assert engine.run(job).runtime_s == pytest.approx(6.0)

    def test_shuffle_adds_analytic_transfer_time(self):
        # Exact expectation derived by hand (see the fabric/flow model):
        # map 1 s; per-node group fetches 50 Gbit, 25 remote @ 10 Gbps
        # = 2.5 s; local 25 Gbit via disk adds 25/4/4 s to each task;
        # reduce compute 1 s.
        cluster = constant_cluster(n=2)
        engine = SparkEngine(cluster, rng=np.random.default_rng(0))
        result = engine.run(two_stage_job())
        expected = 1.0 + 2.5 + 1.0 + 25.0 / 4.0 / 4.0
        assert result.runtime_s == pytest.approx(expected)

    def test_stage_windows_ordered(self):
        cluster = constant_cluster(n=2)
        engine = SparkEngine(cluster, rng=np.random.default_rng(0))
        result = engine.run(two_stage_job())
        map_window = result.stage_windows["map"]
        reduce_window = result.stage_windows["reduce"]
        assert map_window[0] == 0.0
        assert map_window[1] <= reduce_window[0] + 1e-9
        assert reduce_window[1] == pytest.approx(result.runtime_s)

    def test_tasks_balanced_across_nodes(self):
        cluster = constant_cluster(n=4)
        engine = SparkEngine(cluster, rng=np.random.default_rng(0))
        result = engine.run(two_stage_job(tasks=32))
        assert result.tasks_per_node.sum() == 64
        assert result.tasks_per_node.max() - result.tasks_per_node.min() <= 8

    def test_deterministic_given_seed(self):
        cluster = bucket_cluster(100.0)
        job = two_stage_job(shuffle=2_000.0, tasks=48, compute=5.0, cov=0.2)
        r1 = SparkEngine(cluster, rng=np.random.default_rng(7)).run(job)
        r2 = SparkEngine(bucket_cluster(100.0), rng=np.random.default_rng(7)).run(job)
        assert r1.runtime_s == pytest.approx(r2.runtime_s)


class TestTokenBucketInteraction:
    def test_small_budget_slows_shuffle_job(self):
        job = two_stage_job(shuffle=2_400.0, tasks=48, compute=1.0)
        fast = SparkEngine(bucket_cluster(5_000.0), rng=np.random.default_rng(0)).run(job)
        slow = SparkEngine(bucket_cluster(10.0), rng=np.random.default_rng(0)).run(job)
        assert slow.runtime_s > 1.5 * fast.runtime_s

    def test_budget_telemetry_recorded(self):
        job = two_stage_job(shuffle=2_400.0, tasks=48, compute=1.0)
        result = SparkEngine(bucket_cluster(100.0), rng=np.random.default_rng(0)).run(job)
        assert result.budgets is not None
        assert result.budgets.shape[0] == 12
        # Budgets deplete during the shuffle.
        assert result.budgets.min() == pytest.approx(0.0, abs=1.0)
        series = result.node_budget_series(0)
        assert len(series) == len(result.sample_times)

    def test_no_budget_telemetry_on_constant_links(self):
        result = SparkEngine(constant_cluster(), rng=np.random.default_rng(0)).run(
            two_stage_job()
        )
        assert result.budgets is None
        with pytest.raises(ValueError):
            result.node_budget_series(0)
        assert result.straggler_nodes() == []

    def test_skewed_node_becomes_straggler(self):
        # One node holds 3x its share of shuffle data and a budget that
        # only it depletes.
        skew = [1.0] * 12
        skew[5] = 3.0
        job = two_stage_job(shuffle=4_000.0, tasks=96, compute=2.0)
        engine = SparkEngine(
            bucket_cluster(500.0), rng=np.random.default_rng(0), node_data_skew=skew
        )
        result = engine.run(job)
        assert result.throttled_fraction(5) > result.throttled_fraction(0)
        assert 5 in result.straggler_nodes()

    def test_carryover_between_runs_without_reset(self):
        # Reusing the fabric drains budgets run over run (Figure 19).
        job = two_stage_job(shuffle=2_400.0, tasks=48, compute=1.0)
        engine = SparkEngine(bucket_cluster(400.0), rng=np.random.default_rng(0))
        results = engine.run_repetitions(job, repetitions=4, fresh_fabric=False)
        runtimes = [r.runtime_s for r in results]
        assert runtimes[-1] > runtimes[0] * 1.2

    def test_fresh_fabric_keeps_runs_identical_modulo_noise(self):
        job = two_stage_job(shuffle=2_400.0, tasks=48, compute=1.0)
        engine = SparkEngine(bucket_cluster(3_000.0), rng=np.random.default_rng(0))
        results = engine.run_repetitions(job, repetitions=4, fresh_fabric=True)
        runtimes = np.array([r.runtime_s for r in results])
        assert runtimes.std() / runtimes.mean() < 0.05

    def test_rest_between_runs_restores_budget(self):
        job = two_stage_job(shuffle=2_400.0, tasks=48, compute=1.0)
        engine = SparkEngine(bucket_cluster(400.0), rng=np.random.default_rng(0))
        rested = engine.run_repetitions(
            job, repetitions=4, fresh_fabric=False, rest_between_s=3_000.0
        )
        runtimes = np.array([r.runtime_s for r in rested])
        # Resting roughly stabilizes run-over-run growth.
        assert runtimes[-1] < runtimes[0] * 1.3

    def test_scheduler_forwards_to_each_repetition(self):
        # The scheduler argument must reach every repetition's run —
        # an unknown policy is rejected by the stream validator, so it
        # erroring out of run_repetitions proves the forwarding path.
        job = two_stage_job(shuffle=200.0, tasks=8, compute=1.0, cov=0.2)

        def runtimes(scheduler):
            engine = SparkEngine(
                constant_cluster(n=2), rng=np.random.default_rng(0)
            )
            reps = engine.run_repetitions(
                job, repetitions=2, scheduler=scheduler
            )
            return [r.runtime_s for r in reps]

        # Single-job streams: every policy coincides on values.
        assert runtimes("fair") == runtimes("srpt") == runtimes("fifo")
        with pytest.raises(ValueError, match="unknown scheduler"):
            runtimes("nope")

    def test_recorder_observes_all_repetitions(self):
        from repro.obs import ObsRecorder

        job = two_stage_job(shuffle=100.0, tasks=8, compute=1.0)
        engine = SparkEngine(
            constant_cluster(n=2), rng=np.random.default_rng(0)
        )
        recorder = ObsRecorder(scrape_interval_s=2.0)
        bare_engine = SparkEngine(
            constant_cluster(n=2), rng=np.random.default_rng(0)
        )
        bare = bare_engine.run_repetitions(job, repetitions=3)
        observed = engine.run_repetitions(
            job, repetitions=3, recorder=recorder
        )
        # One recorder accumulates across repetitions, observation only.
        assert len(recorder.tracer.spans("job")) == 3
        assert (
            recorder.registry.counter("repro_sim_jobs_finished_total").value()
            == 3.0
        )
        assert [r.runtime_s for r in observed] == [r.runtime_s for r in bare]


class TestValidation:
    def test_bad_skew_length(self):
        with pytest.raises(ValueError):
            SparkEngine(constant_cluster(n=2), node_data_skew=[1.0])

    def test_nonpositive_skew(self):
        with pytest.raises(ValueError):
            SparkEngine(constant_cluster(n=2), node_data_skew=[1.0, 0.0])

    def test_bad_sample_interval(self):
        with pytest.raises(ValueError):
            SparkEngine(constant_cluster(), sample_interval_s=0.0)

    def test_bad_repetitions(self):
        engine = SparkEngine(constant_cluster())
        with pytest.raises(ValueError):
            engine.run_repetitions(two_stage_job(), repetitions=0)
        with pytest.raises(ValueError):
            engine.run_repetitions(two_stage_job(), repetitions=1, rest_between_s=-1.0)
