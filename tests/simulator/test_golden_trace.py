"""Golden-trace equivalence contract for the fluid-fabric engine.

The fixture in ``fixtures/golden_trace.json`` pins the complete output
of a fixed seeded multi-job stream — stage windows, runtimes, task
placement, and the full telemetry arrays — as produced by the
pre-refactor (dict/set water-filling) engine.  Any reimplementation of
the fabric or engine hot path must reproduce these values *exactly*:
the same max-min allocation, the same tie-breaking, and the same RNG
draw order, down to the last bit of every float.

Regenerate (only when the simulation semantics intentionally change,
with a PR note explaining why):

    PYTHONPATH=src python tests/simulator/test_golden_trace.py --regen
"""

import json
import math
from pathlib import Path

import numpy as np

from repro.netmodel import ScalarFleetAdapter, TokenBucketModel, TokenBucketParams
from repro.netmodel.fleet import TokenBucketFleet
from repro.simulator import Cluster, Fabric, NodeSpec, SparkEngine
from repro.scenarios.generate import job_stream, poisson_arrivals

FIXTURE = Path(__file__).parent / "fixtures" / "golden_trace.json"

_BUCKET = TokenBucketParams(
    peak_gbps=10.0,
    capped_gbps=1.0,
    replenish_gbps=0.95,
    capacity_gbit=400.0,
    resume_threshold_gbit=40.0,
)


def _run_reference_stream(fleet_mode: str = "auto", recorder=None):
    """A 6-node, 6-job mixed stream with shaper tier transitions.

    ``fleet_mode`` selects the shaper path: ``"auto"`` lets the fabric
    build the vectorized :class:`TokenBucketFleet` (the default for a
    homogeneous shaper list), ``"scalar"`` forces the per-model
    :class:`ScalarFleetAdapter` reference loop.  Both must reproduce
    the pinned fixture bit for bit — as must either path with an
    observability ``recorder`` attached.
    """
    rng = np.random.default_rng(20260727)
    cluster = Cluster(
        n_nodes=6,
        node_spec=NodeSpec(slots=4),
        link_model_factory=lambda node: TokenBucketModel(_BUCKET),
    )
    fabric = None
    if fleet_mode == "scalar":
        models = [TokenBucketModel(_BUCKET) for _ in range(6)]
        fabric = Fabric(
            ScalarFleetAdapter(models),
            [cluster.node_spec.ingress_gbps] * 6,
        )
    times = poisson_arrivals(rng, rate_per_min=3.0, n_jobs=6)
    stream = job_stream(rng, times, n_nodes=6, slots=4, data_scale=0.15)
    engine = SparkEngine(cluster, rng=rng, sample_interval_s=5.0)
    return engine.run_stream(
        stream, scheduler="fair", fabric=fabric, recorder=recorder
    )


def _snapshot(result) -> dict:
    """Plain-JSON projection of a StreamResult (floats round-trip)."""
    jobs = []
    for job in result.job_results:
        jobs.append(
            {
                "name": job.job_name,
                "submit_s": float(job.submit_s),
                "finish_s": float(job.finish_s),
                "runtime_s": float(job.runtime_s),
                "stage_windows": {
                    name: [float(start), float(end)]
                    for name, (start, end) in sorted(job.stage_windows.items())
                },
                "tasks_per_node": [float(v) for v in job.tasks_per_node],
            }
        )
    assert result.budgets is not None
    return {
        "scheduler": result.scheduler,
        "makespan_s": float(result.makespan_s),
        "jobs": jobs,
        "sample_times": [float(v) for v in result.sample_times],
        "egress_rates": [[float(v) for v in row] for row in result.egress_rates],
        "budgets": [[float(v) for v in row] for row in result.budgets],
    }


def test_golden_trace_matches_pre_refactor_engine():
    snapshot = _snapshot(_run_reference_stream())
    pinned = json.loads(FIXTURE.read_text())
    # Compare piecewise for debuggable failures before the full check.
    assert snapshot["makespan_s"] == pinned["makespan_s"]
    assert [j["runtime_s"] for j in snapshot["jobs"]] == [
        j["runtime_s"] for j in pinned["jobs"]
    ]
    for got, want in zip(snapshot["jobs"], pinned["jobs"]):
        assert got["stage_windows"] == want["stage_windows"], got["name"]
    assert snapshot["sample_times"] == pinned["sample_times"]
    assert snapshot["egress_rates"] == pinned["egress_rates"]
    assert snapshot["budgets"] == pinned["budgets"]
    assert snapshot == pinned


def test_golden_trace_matches_through_scalar_adapter_path():
    """The per-model reference loop reproduces the same pinned trace."""
    snapshot = _snapshot(_run_reference_stream(fleet_mode="scalar"))
    pinned = json.loads(FIXTURE.read_text())
    assert snapshot == pinned


def test_golden_trace_unchanged_with_recorder_attached():
    """Full observability (metrics + scrapes + spans) observes only.

    The recorder hooks sit on the engine's hottest paths; this is the
    contract that they never perturb the simulation: the pinned trace
    must survive bit for bit with everything enabled, on both the
    vectorized and the scalar shaper path.
    """
    from repro.obs import ObsRecorder

    pinned = json.loads(FIXTURE.read_text())
    for mode in ("auto", "scalar"):
        recorder = ObsRecorder(scrape_interval_s=5.0, window_s=60.0)
        snapshot = _snapshot(_run_reference_stream(mode, recorder=recorder))
        assert snapshot == pinned, mode
        # And the recorder actually observed the run.
        assert recorder.task_latency.count > 0
        assert len(recorder.tracer.spans("job")) == 6
        assert recorder.series()["active_flows"].times.size > 0


def test_reference_stream_uses_vectorized_fleet_by_default():
    """Guards the comparison above: "auto" really is the fleet path."""
    cluster = Cluster(
        n_nodes=6,
        node_spec=NodeSpec(slots=4),
        link_model_factory=lambda node: TokenBucketModel(_BUCKET),
    )
    assert isinstance(cluster.build_fabric().fleet, TokenBucketFleet)


def test_golden_trace_with_jit_disabled_subprocess():
    """``REPRO_NO_JIT=1`` must reproduce the pinned trace bit for bit.

    The env var is read once at import, so the fallback selection needs
    a fresh interpreter.  Where numba is absent this re-checks the only
    path; on CI's jit axis it proves the compiled kernels and the
    numpy/scalar fallback cannot drift apart.
    """
    import os
    import subprocess
    import sys

    code = (
        "import json, sys\n"
        f"sys.path.insert(0, {str(Path(__file__).parent)!r})\n"
        "import test_golden_trace as g\n"
        "snap = g._snapshot(g._run_reference_stream())\n"
        "pinned = json.loads(g.FIXTURE.read_text())\n"
        "assert snap == pinned, 'no-jit trace diverged from fixture'\n"
        "print('ok')\n"
    )
    src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ, PYTHONPATH=src, REPRO_NO_JIT="1")
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


def test_snapshot_is_finite_and_consistent():
    """The reference stream itself stays sane (guards fixture regen)."""
    snapshot = _snapshot(_run_reference_stream())
    assert all(math.isfinite(j["runtime_s"]) for j in snapshot["jobs"])
    assert snapshot["makespan_s"] >= max(j["finish_s"] for j in snapshot["jobs"]) - 1e-9
    assert len(snapshot["sample_times"]) == len(snapshot["egress_rates"][0])


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("pass --regen to overwrite the pinned fixture")
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(
        json.dumps(_snapshot(_run_reference_stream()), indent=1) + "\n"
    )
    print(f"wrote {FIXTURE}")
