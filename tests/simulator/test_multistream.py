"""Equivalence contract for the batched multi-stream runner.

``repro.simulator.multistream.run_streams`` must reproduce N serial
``run_stream`` calls *bit for bit* — same job runtimes, same stage
windows, same telemetry floats, same step counts — for every
scheduler, every fleet class, and mixed-completion batches where cells
finish at very different times.  These tests pin that contract, plus
the ``concat_fleets`` view-aliasing semantics the runner is built on.
"""

import math

import numpy as np
import pytest

from repro.netmodel import (
    ConstantRateModel,
    TokenBucketModel,
    TokenBucketParams,
)
from repro.netmodel.fleet import (
    PerCoreQosFleet,
    ResamplingFleet,
    TokenBucketFleet,
    build_fleet,
    concat_fleets,
)
from repro.netmodel.percore import PerCoreQosModel
from repro.netmodel.stochastic import UniformQuantileSamplingModel
from repro.scenarios.generate import job_stream, poisson_arrivals
from repro.simulator import Cluster, NodeSpec, SparkEngine
from repro.simulator.multistream import StreamTask, run_streams

_BUCKET = TokenBucketParams(
    peak_gbps=10.0,
    capped_gbps=1.0,
    replenish_gbps=0.95,
    capacity_gbit=60.0,
    resume_threshold_gbit=10.0,
)


def _make_cell(seed, scheduler, n_nodes=5, n_jobs=4, model_factory=None):
    """One small stream cell; fresh RNG state per call, keyed by seed."""
    if model_factory is None:
        model_factory = lambda node: TokenBucketModel(_BUCKET)
    rng = np.random.default_rng(seed)
    cluster = Cluster(
        n_nodes=n_nodes,
        node_spec=NodeSpec(slots=4),
        link_model_factory=model_factory,
    )
    times = poisson_arrivals(rng, rate_per_min=3.0, n_jobs=n_jobs)
    stream = job_stream(
        rng, times, n_nodes=n_nodes, slots=4, data_scale=0.15
    )
    if scheduler == "edf":
        stream = [
            (t, job, t + 400.0 + 100.0 * i)
            for i, (t, job) in enumerate(stream)
        ]
    engine = SparkEngine(cluster, rng=rng, sample_interval_s=5.0)
    return engine, stream


def _snapshot(result):
    """Full-fidelity projection of a StreamResult for == comparison."""
    return {
        "scheduler": result.scheduler,
        "makespan": result.makespan_s,
        "n_steps": result.n_steps,
        "runtimes": [r.runtime_s for r in result.job_results],
        "finishes": [r.finish_s for r in result.job_results],
        "windows": [
            sorted(r.stage_windows.items()) for r in result.job_results
        ],
        "tasks": [r.tasks_per_node.tolist() for r in result.job_results],
        "sample_times": result.sample_times.tolist(),
        "egress": result.egress_rates.tolist(),
        "budgets": None if result.budgets is None else result.budgets.tolist(),
    }


class TestRunStreamsEquivalence:
    @pytest.mark.parametrize(
        "scheduler", ["fifo", "fair", "srpt", "edf", "preempt"]
    )
    def test_matches_serial_per_scheduler(self, scheduler):
        seeds = [101, 202, 303]
        serial = [
            _snapshot(
                _make_cell(seed, scheduler)[0].run_stream(
                    _make_cell(seed, scheduler)[1], scheduler=scheduler
                )
            )
            for seed in seeds
        ]
        tasks = []
        for seed in seeds:
            engine, stream = _make_cell(seed, scheduler)
            tasks.append(StreamTask(engine, stream, scheduler=scheduler))
        batched = [_snapshot(r) for r in run_streams(tasks)]
        assert batched == serial

    def test_mixed_schedulers_in_one_batch(self):
        schedulers = ["fifo", "fair", "srpt", "edf", "preempt"]
        serial = []
        for i, sched in enumerate(schedulers):
            engine, stream = _make_cell(500 + i, sched)
            serial.append(_snapshot(engine.run_stream(stream, scheduler=sched)))
        tasks = []
        for i, sched in enumerate(schedulers):
            engine, stream = _make_cell(500 + i, sched)
            tasks.append(StreamTask(engine, stream, scheduler=sched))
        assert [_snapshot(r) for r in run_streams(tasks)] == serial

    def test_uneven_cell_lifetimes(self):
        # One tiny 1-job cell drains long before a 6-job cell: the
        # finished cell must ride along as a no-op without perturbing
        # the survivor.
        specs = [(1, 900), (6, 901), (2, 902)]
        serial = []
        for n_jobs, seed in specs:
            engine, stream = _make_cell(seed, "fair", n_jobs=n_jobs)
            serial.append(_snapshot(engine.run_stream(stream, scheduler="fair")))
        tasks = []
        for n_jobs, seed in specs:
            engine, stream = _make_cell(seed, "fair", n_jobs=n_jobs)
            tasks.append(StreamTask(engine, stream, scheduler="fair"))
        assert [_snapshot(r) for r in run_streams(tasks)] == serial

    def test_heterogeneous_node_counts(self):
        serial = []
        for n_nodes, seed in [(3, 71), (6, 72), (4, 73)]:
            engine, stream = _make_cell(seed, "fifo", n_nodes=n_nodes)
            serial.append(_snapshot(engine.run_stream(stream, scheduler="fifo")))
        tasks = []
        for n_nodes, seed in [(3, 71), (6, 72), (4, 73)]:
            engine, stream = _make_cell(seed, "fifo", n_nodes=n_nodes)
            tasks.append(StreamTask(engine, stream, scheduler="fifo"))
        assert [_snapshot(r) for r in run_streams(tasks)] == serial

    def test_percore_fleet_cells(self):
        factory = lambda node: PerCoreQosModel(cores=4, seed=9000 + node)
        serial = []
        for seed in (31, 32):
            engine, stream = _make_cell(seed, "fair", model_factory=factory)
            serial.append(_snapshot(engine.run_stream(stream, scheduler="fair")))
        tasks = []
        for seed in (31, 32):
            engine, stream = _make_cell(seed, "fair", model_factory=factory)
            tasks.append(StreamTask(engine, stream, scheduler="fair"))
        assert [_snapshot(r) for r in run_streams(tasks)] == serial

    def test_mixed_fleet_classes_rejected(self):
        t1 = StreamTask(*_make_cell(1, "fifo"))
        t2 = StreamTask(
            *_make_cell(2, "fifo", model_factory=lambda n: ConstantRateModel(8.0))
        )
        with pytest.raises(ValueError, match="one class"):
            run_streams([t1, t2])

    def test_empty_batch(self):
        assert run_streams([]) == []

    def test_single_cell_batch(self):
        engine, stream = _make_cell(55, "fair")
        serial = _snapshot(engine.run_stream(stream, scheduler="fair"))
        engine, stream = _make_cell(55, "fair")
        [result] = run_streams([StreamTask(engine, stream, scheduler="fair")])
        assert _snapshot(result) == serial

    def test_validation_matches_run_stream(self):
        engine, stream = _make_cell(1, "fifo")
        with pytest.raises(ValueError, match="unknown scheduler"):
            run_streams([StreamTask(engine, stream, scheduler="nope")])
        with pytest.raises(ValueError, match="at least one job"):
            run_streams([StreamTask(engine, [])])


class TestConcatFleets:
    def _bucket_fleet(self, n, seed=0):
        return build_fleet([TokenBucketModel(_BUCKET) for _ in range(n)])

    def test_views_alias_super_arrays(self):
        fleets = [self._bucket_fleet(3), self._bucket_fleet(2)]
        sup = concat_fleets(fleets)
        assert isinstance(sup, TokenBucketFleet)
        assert sup.n == 5
        # Writes through the super-fleet surface in the members...
        sup._budget[0] = 12.5
        assert fleets[0]._budget[0] == 12.5
        # ...and scalar-model writes surface in the super-fleet.
        fleets[1].models[1].set_budget(0.0)
        assert sup._budget[4] == 0.0
        assert bool(sup._throttled[4])
        # _sync_thresholds stays in place (aliasing survives a flip).
        fleets[1]._sync_thresholds()
        assert np.shares_memory(fleets[1]._flip_threshold, sup._flip_threshold)

    def test_advance_many_matches_scalar_advance_per_cell(self):
        fleets = [self._bucket_fleet(2), self._bucket_fleet(3)]
        ref = [self._bucket_fleet(2), self._bucket_fleet(3)]
        sup = concat_fleets(fleets)
        rng = np.random.default_rng(4)
        for _ in range(50):
            dts = rng.uniform(0.0, 3.0, size=2)
            sends = rng.uniform(0.0, 6.0, size=5)
            changed = sup.advance_many(
                np.repeat(dts, [2, 3]), sends
            )
            ref_changed = [
                ref[0].advance(float(dts[0]), sends[:2]),
                ref[1].advance(float(dts[1]), sends[2:]),
            ]
            if changed is None:
                assert ref_changed == [False, False]
            else:
                assert [bool(changed[:2].any()), bool(changed[2:].any())] == (
                    ref_changed
                )
            assert fleets[0]._budget.tolist() == ref[0]._budget.tolist()
            assert fleets[1]._budget.tolist() == ref[1]._budget.tolist()
            assert fleets[0]._throttled.tolist() == ref[0]._throttled.tolist()
            assert fleets[1]._throttled.tolist() == ref[1]._throttled.tolist()

    def test_resampling_fleet_concat(self):
        from repro.netmodel.distributions import QuantileDistribution

        dist = QuantileDistribution(
            probs=(0.01, 0.5, 0.99), values=(4.0, 8.0, 10.0)
        )

        def fleet(seed):
            return build_fleet(
                [
                    UniformQuantileSamplingModel(
                        dist, interval_s=7.0, seed=seed + i
                    )
                    for i in range(2)
                ]
            )

        fleets = [fleet(0), fleet(10)]
        ref = [fleet(0), fleet(10)]
        assert isinstance(fleets[0], ResamplingFleet)
        sup = concat_fleets(fleets)
        rng = np.random.default_rng(5)
        sends = np.zeros(4)
        for _ in range(30):
            dts = rng.uniform(0.0, 9.0, size=2)
            sup.advance_many(np.repeat(dts, [2, 2]), sends)
            ref[0].advance(float(dts[0]), sends[:2])
            ref[1].advance(float(dts[1]), sends[2:])
            assert fleets[0].limits().tolist() == ref[0].limits().tolist()
            assert fleets[1].limits().tolist() == ref[1].limits().tolist()

    def test_mixed_classes_rejected(self):
        bucket = self._bucket_fleet(2)
        const = build_fleet([ConstantRateModel(5.0) for _ in range(2)])
        with pytest.raises(ValueError, match="one class"):
            concat_fleets([bucket, const])

    def test_hooked_fleet_rejected(self):
        fleet = self._bucket_fleet(2)
        fleet.transition_hook = lambda idx, limits: None
        with pytest.raises(ValueError, match="hook"):
            concat_fleets([fleet])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            concat_fleets([])

    def test_percore_fleet_concat_is_percore(self):
        def fleet(seed):
            return build_fleet(
                [PerCoreQosModel(cores=4, seed=seed + i) for i in range(2)]
            )

        sup = concat_fleets([fleet(0), fleet(5)])
        assert isinstance(sup, PerCoreQosFleet)
        assert sup.n == 4
        assert math.isfinite(float(sup.limits().sum()))


class TestCampaignBatchExecutor:
    def test_batched_campaign_matches_serial(self, tmp_path):
        from repro.scenarios.orchestrate import (
            ScenarioCampaign,
            batch_executor,
            scenario_matrix,
        )

        configs = scenario_matrix(
            providers=("amazon", "google"),
            arrival_rates=(2.0,),
            schedulers=("fifo", "fair"),
            n_jobs=3,
            n_nodes=4,
            seed=11,
        )
        serial = ScenarioCampaign(configs).run()
        batched = ScenarioCampaign(
            configs, executor=batch_executor(batch_size=3)
        ).run()
        assert serial.results.keys() == batched.results.keys()
        for sid, a in serial.results.items():
            b = batched.results[sid]
            assert a.aggregate_row() == b.aggregate_row()
            assert a.runtimes.tolist() == b.runtimes.tolist()
            assert a.fabric_state == b.fabric_state
            assert a.n_steps == b.n_steps

    def test_batched_campaign_with_chains(self):
        from repro.scenarios.orchestrate import (
            ScenarioCampaign,
            ScenarioConfig,
            batch_executor,
            chain_scenarios,
        )

        base = ScenarioConfig(n_nodes=4, n_jobs=2, seed=3)
        configs = chain_scenarios(base, 3) + [
            ScenarioConfig(n_nodes=4, n_jobs=2, seed=99)
        ]
        serial = ScenarioCampaign(configs).run()
        batched = ScenarioCampaign(
            configs, executor=batch_executor(batch_size=4)
        ).run()
        assert serial.results.keys() == batched.results.keys()
        for sid, a in serial.results.items():
            b = batched.results[sid]
            assert a.aggregate_row() == b.aggregate_row()
            assert a.fabric_state == b.fabric_state
