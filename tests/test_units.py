"""Unit-conversion tests."""

import pytest

from repro import units


def test_mbps_gbps_roundtrip():
    assert units.mbps_to_gbps(1000.0) == 1.0
    assert units.gbps_to_mbps(1.0) == 1000.0
    assert units.gbps_to_mbps(units.mbps_to_gbps(123.4)) == pytest.approx(123.4)


def test_gbit_byte_conversions():
    assert units.gbit_to_gbyte(8.0) == 1.0
    assert units.gbyte_to_gbit(1.0) == 8.0
    assert units.gbit_to_tbyte(8000.0) == 1.0
    assert units.tbyte_to_gbit(1.0) == 8000.0


def test_small_size_conversions():
    assert units.mbyte_to_gbit(125.0) == pytest.approx(1.0)
    assert units.gbit_to_mbyte(1.0) == pytest.approx(125.0)
    assert units.kbyte_to_gbit(125_000.0) == pytest.approx(1.0)
    assert units.bytes_to_gbit(1e9 / 8) == pytest.approx(1.0)
    assert units.gbit_to_bytes(1.0) == pytest.approx(1.25e8)


def test_time_conversions():
    assert units.ms_to_s(1500.0) == 1.5
    assert units.s_to_ms(1.5) == 1500.0
    assert units.weeks(1) == 604_800.0
    assert units.days(2) == 172_800.0
    assert units.hours(3) == 10_800.0
    assert units.minutes(10) == 600.0


def test_week_is_seven_days():
    assert units.weeks(1) == units.days(7)
    assert units.days(1) == units.hours(24)
