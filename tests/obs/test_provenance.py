"""Tests for per-cell execution provenance records."""

from repro.obs.provenance import PROVENANCE_KEY, cell_provenance


class TestCellProvenance:
    def test_basic_record_shape(self):
        record = cell_provenance(0.1234567)
        assert record["wall_s"] == 0.123457
        assert record["unix_s"] > 1.7e9
        assert isinstance(record.get("maxrss_kb"), int)
        assert "n_steps" not in record

    def test_n_steps_from_mapping_result(self):
        assert cell_provenance(0.1, {"n_steps": 42})["n_steps"] == 42

    def test_n_steps_from_attribute_result(self):
        class Result:
            n_steps = 7

        assert cell_provenance(0.1, Result())["n_steps"] == 7

    def test_uncoercible_n_steps_is_dropped(self):
        assert "n_steps" not in cell_provenance(0.1, {"n_steps": "nope"})

    def test_provenance_key_is_stable(self):
        # The key is part of the on-disk manifest contract the status
        # CLI reads; renaming it orphans every existing store.
        assert PROVENANCE_KEY == "obs"


class TestExecutorIntegration:
    def test_serial_executor_reports_provenance(self):
        from repro.runtime.cell import Cell
        from repro.runtime.executors import SerialExecutor

        cells = [
            Cell(
                fn="tests.runtime.test_cell:double",
                payload={"x": i},
                key=f"c{i}",
            )
            for i in range(2)
        ]
        seen: dict[str, dict] = {}
        emitted: list[str] = []
        SerialExecutor().run(
            cells,
            lambda cell, result, stored: emitted.append(cell.key),
            on_provenance=seen.__setitem__,
        )
        assert sorted(seen) == ["c0", "c1"] == sorted(emitted)
        assert all(rec["wall_s"] >= 0 for rec in seen.values())
