"""Tests for the campaign status probe and its renderers."""

import json
import math

import pytest

from repro.obs.metrics import parse_prometheus_text
from repro.obs.status import (
    CampaignStatus,
    ShardStatus,
    campaign_status,
    render_prometheus,
    render_text,
)


def _write_shard(
    shard_dir, index, keys, done=(), prefix="shard", wall_each=2.0
):
    """One shard manifest plus a store holding the ``done`` subset."""
    manifest = {
        "schema": 1,
        "shard": index,
        "n_shards": 2,
        "encode": "m:encode",
        "cells": [
            {"fn": "m:f", "payload": {"k": key}, "key": key} for key in keys
        ],
    }
    (shard_dir / f"{prefix}-{index}.json").write_text(json.dumps(manifest))
    if done:
        store = shard_dir / f"{prefix}-{index}-store"
        store.mkdir()
        entries = {
            key: {
                "documents": [],
                "obs": {
                    "wall_s": wall_each,
                    "unix_s": 1.7e9 + i,
                    "n_steps": 100 + i,
                },
            }
            for i, key in enumerate(done)
        }
        (store / "manifest.json").write_text(json.dumps(entries))


class TestCampaignStatus:
    def test_discovers_shards_and_counts_progress(self, tmp_path):
        _write_shard(tmp_path, 0, ["a", "b"], done=["a", "b"])
        _write_shard(tmp_path, 1, ["c", "d"], done=["c"])
        status = campaign_status(tmp_path)
        assert [s.index for s in status.shards] == [0, 1]
        assert status.n_cells == 4
        assert status.n_done == 3
        assert status.shards[0].n_pending == 0
        assert status.shards[1].done_frac == 0.5
        assert status.shards[1].n_steps == 100
        assert status.shards[1].last_unix_s == 1.7e9

    def test_missing_store_means_zero_progress_and_no_scaffold(
        self, tmp_path
    ):
        _write_shard(tmp_path, 0, ["a"], done=[])
        status = campaign_status(tmp_path)
        assert status.shards[0].n_done == 0
        # A status probe must not create store directories.
        assert not (tmp_path / "shard-0-store").exists()

    def test_no_manifests_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="no shard manifests"):
            campaign_status(tmp_path)

    def test_custom_prefix(self, tmp_path):
        _write_shard(tmp_path, 0, ["a"], done=["a"], prefix="part")
        status = campaign_status(tmp_path, prefix="part")
        assert status.n_done == 1

    def test_stores_override_is_positional(self, tmp_path):
        _write_shard(tmp_path, 0, ["a"], done=[])
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        (elsewhere / "manifest.json").write_text(
            json.dumps({"a": {"documents": [], "obs": {"wall_s": 1.0}}})
        )
        status = campaign_status(tmp_path, stores=[elsewhere])
        assert status.shards[0].n_done == 1

    def test_stores_override_count_mismatch(self, tmp_path):
        _write_shard(tmp_path, 0, ["a"])
        _write_shard(tmp_path, 1, ["b"])
        with pytest.raises(ValueError, match="--stores"):
            campaign_status(tmp_path, stores=["only-one"])

    def test_throughput_and_eta_from_provenance(self, tmp_path):
        _write_shard(tmp_path, 0, ["a", "b", "c", "d"], done=["a", "b"])
        shard = campaign_status(tmp_path).shards[0]
        assert shard.throughput_cps == pytest.approx(0.5)  # 2 cells / 4 s
        assert shard.eta_s == pytest.approx(4.0)  # 2 pending / 0.5 cps

    def test_eta_nan_without_provenance(self, tmp_path):
        _write_shard(tmp_path, 0, ["a", "b"], done=[])
        status = campaign_status(tmp_path)
        assert math.isnan(status.shards[0].eta_s)
        assert math.isnan(status.eta_s)


class TestFaultReporting:
    def test_worker_liveness_from_lease(self, tmp_path):
        from repro.runtime.coordinator import acquire_lease, lease_path_for

        _write_shard(tmp_path, 0, ["a", "b"], done=["a"])
        _write_shard(tmp_path, 1, ["c", "d"], done=["c"])
        alive_lease = lease_path_for(tmp_path / "shard-0.json")
        acquire_lease(alive_lease, worker_id="w0-a1", ttl_s=300.0)
        dead_lease = lease_path_for(tmp_path / "shard-1.json")
        acquire_lease(
            dead_lease, worker_id="w1-a1", ttl_s=1.0,
            now=__import__("time").time() - 60.0,
        )
        status = campaign_status(tmp_path)
        assert status.shards[0].worker_state == "alive"
        assert status.shards[0].worker_id == "w0-a1"
        assert status.shards[1].worker_state == "dead"
        text = render_text(status)
        assert "worker alive (w0-a1)" in text
        assert "worker dead (w1-a1)" in text

    def test_never_leased_shard_shows_no_worker(self, tmp_path):
        _write_shard(tmp_path, 0, ["a"], done=[])
        status = campaign_status(tmp_path)
        assert status.shards[0].worker_state == "-"
        samples = parse_prometheus_text(render_prometheus(status))
        value = samples[("repro_campaign_shard_worker_alive", (("shard", "0"),))]
        assert math.isnan(value)

    def test_stolen_and_failed_counts(self, tmp_path):
        from repro.runtime.worker import (
            revoked_path_for,
            write_failures,
            write_revoked,
        )

        _write_shard(tmp_path, 0, ["a", "b", "c", "d"], done=["a"])
        manifest = tmp_path / "shard-0.json"
        # "b" failed (quarantined), "c" was stolen by another worker;
        # both are revoked from this shard, but reported differently.
        write_revoked(revoked_path_for(manifest), ["b", "c"])
        store = tmp_path / "shard-0-store"
        write_failures(store / "failures.json", {"b": {"error": "poison"}})
        status = campaign_status(tmp_path)
        shard = status.shards[0]
        assert shard.n_done == 1
        assert shard.n_failed == 1
        assert shard.n_stolen == 1
        assert shard.n_pending == 1
        text = render_text(status)
        assert "stolen 1" in text and "failed 1" in text
        samples = parse_prometheus_text(render_prometheus(status))
        shard0 = (("shard", "0"),)
        assert samples[("repro_campaign_shard_cells_stolen", shard0)] == 1.0
        assert samples[("repro_campaign_shard_cells_failed", shard0)] == 1.0

    def test_steal_manifests_are_not_shards(self, tmp_path):
        from repro.obs.status import find_shard_manifests

        _write_shard(tmp_path, 0, ["a"], done=[])
        _write_shard(tmp_path, 1, ["b"], done=[])
        # Steal manifests, sidecars, and leases live in the same
        # directory but must never be discovered as shards.
        (tmp_path / "shard-0.steal1.json").write_text("{}")
        (tmp_path / "shard-0.revoked.json").write_text("{}")
        (tmp_path / "shard-1.lease.json").write_text("{}")
        found = find_shard_manifests(tmp_path, "shard")
        assert [index for index, _ in found] == [0, 1]


class TestSyncLag:
    def _synced_pair(self, tmp_path, keys, synced):
        """Local + remote shard stores where only ``synced`` match."""
        from repro.runtime import ArtifactStore
        from repro.runtime.remote import LocalDirTransport, RemoteStore

        _write_shard(tmp_path, 0, keys, done=[])
        local = ArtifactStore(tmp_path / "shard-0-store")
        for key in keys:
            local.put(key, {"result": {"k": key}}, meta={"obs": {"wall_s": 1.0}})
        remote = tmp_path / "remote"
        syncer = RemoteStore(
            local, LocalDirTransport(remote / "shard-0-store"), echo=None
        )
        syncer.push(keys=synced)
        return remote

    def test_sync_lag_counts_synced_and_pending(self, tmp_path):
        remote = self._synced_pair(tmp_path, ["a", "b", "c"], synced=["a"])
        status = campaign_status(tmp_path, remote=remote)
        shard = status.shards[0]
        assert shard.has_remote
        assert shard.n_docs_synced == 1
        assert shard.n_docs_pending == 2
        assert shard.n_sync_failed == 0
        text = render_text(status)
        assert "synced 1/3" in text
        samples = parse_prometheus_text(render_prometheus(status))
        shard0 = (("shard", "0"),)
        assert samples[("repro_campaign_shard_docs_synced", shard0)] == 1.0
        assert samples[("repro_campaign_shard_docs_pending", shard0)] == 2.0
        assert samples[("repro_campaign_shard_sync_failed", shard0)] == 0.0

    def test_failed_keys_come_from_the_sidecar(self, tmp_path):
        import json as json_module

        remote = self._synced_pair(tmp_path, ["a", "b"], synced=["a", "b"])
        sidecar = tmp_path / "shard-0-store" / ".sync.json"
        state = json_module.loads(sidecar.read_text())
        state["push"]["failed"] = {"c": "digest mismatch"}
        sidecar.write_text(json_module.dumps(state))
        status = campaign_status(tmp_path, remote=remote)
        assert status.shards[0].n_sync_failed == 1
        assert "sync-failed 1" in render_text(status)

    def test_without_remote_no_sync_fields_or_gauges(self, tmp_path):
        _write_shard(tmp_path, 0, ["a"], done=["a"])
        status = campaign_status(tmp_path)
        assert not status.shards[0].has_remote
        rendered = render_prometheus(status)
        assert "docs_synced" not in rendered
        assert "synced" not in render_text(status)

    def test_fresh_remote_counts_everything_pending(self, tmp_path):
        from repro.runtime import ArtifactStore

        _write_shard(tmp_path, 0, ["a"], done=[])
        local = ArtifactStore(tmp_path / "shard-0-store")
        local.put("a", {"result": {"k": "a"}})
        status = campaign_status(tmp_path, remote=tmp_path / "never-synced")
        shard = status.shards[0]
        assert shard.has_remote
        assert shard.n_docs_synced == 0 and shard.n_docs_pending == 1


class TestStragglers:
    def _status(self, fracs):
        status = CampaignStatus(shard_dir="x")
        for i, frac in enumerate(fracs):
            status.shards.append(
                ShardStatus(
                    index=i,
                    manifest_path="m",
                    store_root="s",
                    n_cells=100,
                    n_done=int(frac * 100),
                )
            )
        return status

    def test_lagging_shard_is_flagged(self):
        status = self._status([1.0, 1.0, 0.5])
        assert [s.index for s in status.stragglers()] == [2]

    def test_uniform_progress_has_no_stragglers(self):
        assert self._status([0.5, 0.5, 0.5]).stragglers() == []

    def test_finished_shard_is_never_a_straggler(self):
        # Even with a lagging fraction recorded, no pending cells means
        # nothing to wait for.
        status = self._status([1.0, 1.0])
        status.shards[1].n_done = status.shards[1].n_cells
        assert status.stragglers() == []

    def test_single_shard_campaign_has_no_stragglers(self):
        assert self._status([0.0]).stragglers() == []


class TestRenderers:
    def test_text_table_flags_stragglers(self, tmp_path):
        _write_shard(tmp_path, 0, ["a", "b"], done=["a", "b"])
        _write_shard(tmp_path, 1, ["c", "d"], done=[])
        text = render_text(campaign_status(tmp_path))
        assert "shard 0: 2/2 cells (100%)" in text
        assert "STRAGGLER" in text
        assert "total: 2/4 cells (50%)" in text

    def test_prometheus_output_parses_and_carries_shard_gauges(
        self, tmp_path
    ):
        _write_shard(tmp_path, 0, ["a", "b"], done=["a"])
        _write_shard(tmp_path, 1, ["c"], done=["c"])
        samples = parse_prometheus_text(
            render_prometheus(campaign_status(tmp_path))
        )
        shard0 = (("shard", "0"),)
        assert samples[("repro_campaign_shard_cells", shard0)] == 2.0
        assert samples[("repro_campaign_shard_cells_done", shard0)] == 1.0
        assert samples[("repro_campaign_shard_sim_steps", shard0)] == 100.0
        assert samples[("repro_campaign_shards", ())] == 2.0
        assert samples[("repro_campaign_done_ratio", ())] == pytest.approx(
            2.0 / 3.0
        )


class TestSloColumn:
    def _write_serving_shard(self, shard_dir, index, keys, violations):
        """A shard whose done cells carry slo_violations provenance."""
        manifest = {
            "schema": 1,
            "shard": index,
            "n_shards": 2,
            "encode": "m:encode",
            "cells": [
                {"fn": "m:f", "payload": {"k": key}, "key": key}
                for key in keys
            ],
        }
        (shard_dir / f"shard-{index}.json").write_text(json.dumps(manifest))
        store = shard_dir / f"shard-{index}-store"
        store.mkdir()
        entries = {
            key: {
                "documents": [],
                "obs": {"wall_s": 1.0, "slo_violations": v},
            }
            for key, v in zip(keys, violations)
        }
        (store / "manifest.json").write_text(json.dumps(entries))

    def test_slo_violations_aggregate_per_shard_and_total(self, tmp_path):
        self._write_serving_shard(tmp_path, 0, ["a", "b"], [1, 0])
        self._write_serving_shard(tmp_path, 1, ["c"], [2])
        status = campaign_status(tmp_path)
        assert status.shards[0].n_slo_violations == 1
        assert status.shards[0].n_slo_cells == 2
        assert status.shards[1].n_slo_violations == 2
        assert status.n_slo_violations == 3
        text = render_text(status)
        assert "slo-violations 1" in text
        assert "slo-violations 2" in text
        # The total line carries the campaign-wide sum.
        assert "slo-violations 3" in text
        samples = parse_prometheus_text(render_prometheus(status))
        assert samples[
            ("repro_campaign_shard_slo_violations", (("shard", "0"),))
        ] == 1.0
        assert samples[
            ("repro_campaign_shard_slo_violations", (("shard", "1"),))
        ] == 2.0

    def test_dag_campaigns_show_no_slo_column(self, tmp_path):
        # Cells without slo provenance (every DAG campaign) keep the
        # status output exactly as before the serving layer existed.
        _write_shard(tmp_path, 0, ["a"], done=["a"])
        _write_shard(tmp_path, 1, ["b"], done=["b"])
        status = campaign_status(tmp_path)
        assert status.n_slo_violations == 0
        assert all(s.n_slo_cells == 0 for s in status.shards)
        assert "slo-violations" not in render_text(status)
