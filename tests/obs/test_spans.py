"""Tests for sim-time span tracing and the Chrome trace export."""

import json

from repro.obs.spans import SpanTracer


class TestSpanLifecycle:
    def test_begin_end_records_a_completed_span(self):
        tracer = SpanTracer()
        sid = tracer.begin("job 0", "job", 1.5, track="job:a", tenant="a")
        tracer.end(sid, 4.0, missed=False)
        (span,) = tracer.spans("job")
        assert span["t0"] == 1.5
        assert span["t1"] == 4.0
        assert span["args"] == {"tenant": "a", "missed": False}

    def test_events_and_spans_filter_by_category(self):
        tracer = SpanTracer()
        tracer.event("admit", "job", 0.0, track="job:a")
        sid = tracer.begin("g", "taskgroup", 0.0, track="job:a")
        tracer.end(sid, 1.0)
        assert len(tracer.events("job")) == 1
        assert tracer.events("taskgroup") == []
        assert len(tracer.spans("taskgroup")) == 1
        assert len(tracer.records()) == 2
        assert len(tracer) == 2

    def test_close_open_spans_marks_truncation(self):
        tracer = SpanTracer()
        tracer.begin("a", "job", 0.0, track="t")
        tracer.begin("b", "job", 1.0, track="t")
        assert tracer.close_open_spans(5.0) == 2
        spans = tracer.spans()
        assert all(s["t1"] == 5.0 and s["args"]["truncated"] for s in spans)


class TestExports:
    def _tracer(self):
        tracer = SpanTracer()
        sid = tracer.begin("stage 0", "stage", 2.0, track="job:a")
        tracer.event("throttle", "shaper", 2.5, track="fabric", node=3)
        tracer.end(sid, 3.0)
        return tracer

    def test_jsonl_is_one_object_per_line(self):
        lines = self._tracer().to_jsonl().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["ph"] == "X"
        assert records[1]["ph"] == "i"

    def test_chrome_trace_structure(self):
        trace = self._tracer().to_chrome_trace()
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        meta = [e for e in events if e["ph"] == "M"]
        # One thread_name metadata event per track, tid in first-use order.
        assert [(m["tid"], m["args"]["name"]) for m in meta] == [
            (0, "job:a"),
            (1, "fabric"),
        ]
        (complete,) = [e for e in events if e["ph"] == "X"]
        assert complete["ts"] == 2.0 * 1e6
        assert complete["dur"] == 1.0 * 1e6
        assert complete["tid"] == 0
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["s"] == "t"
        assert instant["ts"] == 2.5 * 1e6
        assert instant["args"] == {"node": 3}

    def test_never_closed_span_is_dropped_from_chrome_export(self):
        tracer = SpanTracer()
        tracer.begin("open", "job", 0.0, track="t")
        events = tracer.to_chrome_trace()["traceEvents"]
        assert [e["ph"] for e in events] == ["M"]

    def test_write_roundtrip(self, tmp_path):
        tracer = self._tracer()
        chrome = tracer.write_chrome_trace(tmp_path / "trace.json")
        jsonl = tracer.write_jsonl(tmp_path / "trace.jsonl")
        loaded = json.loads(chrome.read_text())
        assert len(loaded["traceEvents"]) == 4  # 2 meta + 1 span + 1 event
        assert len(jsonl.read_text().splitlines()) == 2
