"""Tests for P² streaming quantiles against numpy's exact percentile."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.quantiles import P2Quantile, WindowedQuantiles, quantile_key


class TestQuantileKey:
    def test_column_names(self):
        assert quantile_key(0.5) == "p50"
        assert quantile_key(0.99) == "p99"
        assert quantile_key(0.999) == "p999"


class TestP2Quantile:
    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_estimator_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    def test_small_samples_match_numpy_exactly(self):
        # Up to five observations the estimate is the exact linear
        # interpolation numpy.percentile uses by default.
        values = [3.0, 1.0, 4.0, 1.5, 9.0]
        for n in range(1, 6):
            est = P2Quantile(0.5)
            for v in values[:n]:
                est.add(v)
            assert est.value() == pytest.approx(
                float(np.percentile(values[:n], 50.0)), abs=1e-12
            )

    def test_median_of_uniform_stream_converges(self):
        rng = np.random.default_rng(7)
        data = rng.uniform(0.0, 100.0, size=5000)
        est = P2Quantile(0.5)
        for v in data:
            est.add(v)
        assert est.value() == pytest.approx(
            float(np.percentile(data, 50.0)), abs=2.0
        )

    def test_tail_quantile_of_heavy_tailed_stream(self):
        rng = np.random.default_rng(11)
        data = rng.lognormal(mean=1.0, sigma=1.0, size=20000)
        est = P2Quantile(0.99)
        for v in data:
            est.add(v)
        exact = float(np.percentile(data, 99.0))
        assert est.value() == pytest.approx(exact, rel=0.1)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=200, max_value=2000),
        p=st.sampled_from([0.25, 0.5, 0.9, 0.99]),
    )
    def test_estimate_tracks_numpy_for_iid_streams(self, seed, n, p):
        # The P² estimate of an iid uniform stream must sit close to the
        # exact empirical quantile — within a few percent of the value
        # range for interior quantiles, looser near the tail where the
        # marker density is thin.
        rng = np.random.default_rng(seed)
        data = rng.uniform(0.0, 1.0, size=n)
        est = P2Quantile(p)
        for v in data:
            est.add(v)
        exact = float(np.percentile(data, p * 100.0))
        tolerance = 0.05 if p <= 0.9 else 0.15
        assert abs(est.value() - exact) <= tolerance
        # The estimate is always inside the observed range.
        assert data.min() <= est.value() <= data.max()

    def test_count_tracks_observations(self):
        est = P2Quantile(0.5)
        for v in range(17):
            est.add(float(v))
        assert est.count == 17


class TestWindowedQuantiles:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowedQuantiles(0.0)

    def test_observations_bucket_into_tumbling_windows(self):
        wq = WindowedQuantiles(10.0, quantiles=(0.5,))
        for t, v in [(0.0, 1.0), (5.0, 3.0), (10.0, 100.0), (19.9, 200.0)]:
            wq.add(t, v)
        rows = wq.rows()
        assert [row["window_start"] for row in rows] == [0.0, 10.0]
        assert rows[0]["count"] == 2.0
        assert rows[0]["p50"] == pytest.approx(2.0)
        assert rows[1]["p50"] == pytest.approx(150.0)
        assert wq.count == 4

    def test_summary_covers_the_whole_stream(self):
        wq = WindowedQuantiles(1.0)
        data = np.arange(1.0, 101.0)
        for i, v in enumerate(data):
            wq.add(float(i) * 0.5, float(v))
        summary = wq.summary()
        assert set(summary) == {"p50", "p99", "p999"}
        assert summary["p50"] == pytest.approx(
            float(np.percentile(data, 50.0)), abs=3.0
        )

    def test_empty_stream_has_no_rows_and_nan_summary(self):
        wq = WindowedQuantiles(10.0)
        assert wq.rows() == []
        assert all(math.isnan(v) for v in wq.summary().values())
