"""Tests for the metrics registry and the Prometheus text round trip."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)


class TestCounter:
    def test_accumulates_per_label_set(self):
        c = Counter("jobs_total")
        c.inc()
        c.inc(2.0)
        c.inc(tenant="a")
        assert c.value() == 3.0
        assert c.value(tenant="a") == 1.0
        assert c.value(tenant="b") == 0.0

    def test_rejects_negative_increment(self):
        c = Counter("jobs_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_rejects_invalid_name(self):
        with pytest.raises(ValueError):
            Counter("1bad-name")


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("depth")
        g.set(4.0, tenant="a")
        g.inc(-1.5, tenant="a")
        assert g.value(tenant="a") == 2.5


class TestHistogram:
    def test_bucket_counts_are_cumulative_in_render(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        lines = h.render()
        assert 'lat_bucket{le="1"} 2' in lines
        assert 'lat_bucket{le="10"} 3' in lines
        assert 'lat_bucket{le="+Inf"} 4' in lines
        assert "lat_count 4" in lines
        assert h.count() == 4

    def test_rejects_unsorted_or_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_getters_are_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_collision_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_render_parse_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "Jobs").inc(3.0, tenant="t 0")
        reg.gauge("repro_depth", "Depth").set(2.5)
        h = reg.histogram("repro_lat_seconds", "Latency", buckets=(1.0, 60.0))
        h.observe(0.5)
        h.observe(90.0)
        samples = parse_prometheus_text(reg.render_prometheus())
        assert samples[("repro_jobs_total", (("tenant", "t 0"),))] == 3.0
        assert samples[("repro_depth", ())] == 2.5
        assert samples[("repro_lat_seconds_bucket", (("le", "1"),))] == 1.0
        assert samples[("repro_lat_seconds_bucket", (("le", "+Inf"),))] == 2.0
        assert samples[("repro_lat_seconds_count", ())] == 2.0
        assert samples[("repro_lat_seconds_sum", ())] == 90.5

    def test_nan_gauge_survives_the_roundtrip(self):
        reg = MetricsRegistry()
        reg.gauge("eta").set(math.nan)
        value = parse_prometheus_text(reg.render_prometheus())[("eta", ())]
        assert math.isnan(value)


class TestParser:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("metric_without_value\n")

    def test_rejects_malformed_labels(self):
        with pytest.raises(ValueError):
            parse_prometheus_text('m{a=unquoted} 1\n')

    def test_rejects_malformed_comment(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("# just prose\n")

    def test_rejects_duplicate_sample(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("m 1\nm 2\n")

    def test_unescapes_label_values(self):
        samples = parse_prometheus_text('m{a="x\\"y\\\\z"} 1\n')
        assert samples[("m", (("a", 'x"y\\z'),))] == 1.0
