"""Tests for the structured worker logger."""

import datetime
import re

from repro.obs.logging import StructuredLogger, format_fields


def _frozen_clock():
    return datetime.datetime(
        2026, 8, 8, 12, 0, 0, 123456, tzinfo=datetime.timezone.utc
    )


class TestFormatFields:
    def test_plain_values_stay_bare(self):
        assert format_fields(shard=0, cells=12) == "shard=0 cells=12"

    def test_booleans_lowercase(self):
        assert format_fields(cached=True, fresh=False) == (
            "cached=true fresh=false"
        )

    def test_floats_compact(self):
        assert format_fields(wall_s=0.0345170001) == "wall_s=0.034517"

    def test_spaces_and_quotes_force_quoting(self):
        assert format_fields(path="/a b") == 'path="/a b"'
        assert format_fields(msg='say "hi"') == 'msg="say \\"hi\\""'
        assert format_fields(empty="") == 'empty=""'


class TestStructuredLogger:
    def test_emits_timestamped_line(self):
        lines = []
        log = StructuredLogger(
            echo=lines.append, component="worker", clock=_frozen_clock
        )
        log.log("cell_done", shard=1, wall_s=0.5)
        assert lines == [
            "ts=2026-08-08T12:00:00.123Z component=worker "
            "event=cell_done shard=1 wall_s=0.5"
        ]
        assert log.enabled

    def test_none_echo_silences_everything(self):
        log = StructuredLogger(echo=None, component="worker")
        log.log("cell_done", shard=1)  # must not raise
        assert not log.enabled

    def test_component_is_optional(self):
        lines = []
        StructuredLogger(echo=lines.append, clock=_frozen_clock).log("x")
        assert lines == ["ts=2026-08-08T12:00:00.123Z event=x"]

    def test_child_shares_sink_with_new_component(self):
        lines = []
        parent = StructuredLogger(echo=lines.append, clock=_frozen_clock)
        parent.child("merge").log("start")
        assert lines == [
            "ts=2026-08-08T12:00:00.123Z component=merge event=start"
        ]

    def test_default_clock_is_utc_iso(self):
        lines = []
        StructuredLogger(echo=lines.append).log("x")
        assert re.match(
            r"^ts=\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z event=x$",
            lines[0],
        )
