"""Determinism and content tests for the in-simulation recorder.

The load-bearing contract: attaching an :class:`ObsRecorder` to
``run_stream`` must not change a single bit of the simulation output,
under every scheduler.  The golden-trace suite pins this against the
frozen fixture for the fair scheduler; here the equivalence is checked
scheduler-by-scheduler, and the recorder's own contents are validated
for consistency.
"""

import math

import numpy as np
import pytest

from repro.obs import NullRecorder, ObsRecorder
from repro.obs.metrics import parse_prometheus_text
from repro.netmodel import TokenBucketModel
from repro.simulator import SCHEDULERS, Cluster, NodeSpec, SparkEngine
from tests.simulator.test_golden_trace import _BUCKET, _snapshot


def _run(scheduler, recorder=None, deadline_s=None):
    """The golden reference stream (6 jobs, shaped 6-node cluster)."""
    from repro.scenarios.generate import job_stream, poisson_arrivals

    rng = np.random.default_rng(20260727)
    cluster = Cluster(
        n_nodes=6,
        node_spec=NodeSpec(slots=4),
        link_model_factory=lambda node: TokenBucketModel(_BUCKET),
    )
    times = poisson_arrivals(rng, rate_per_min=3.0, n_jobs=6)
    stream = job_stream(rng, times, n_nodes=6, slots=4, data_scale=0.15)
    if deadline_s is not None:
        # Deadlines are absolute sim times; give every job the same
        # (hopeless) slack after its own submission.
        stream = [(t, job, t + deadline_s) for t, job in stream]
    engine = SparkEngine(cluster, rng=rng, sample_interval_s=5.0)
    return engine.run_stream(stream, scheduler=scheduler, recorder=recorder)


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_recorder_never_perturbs_the_simulation(self, scheduler):
        bare = _run(scheduler)
        recorder = ObsRecorder(scrape_interval_s=7.0, window_s=120.0)
        observed = _run(scheduler, recorder=recorder)
        assert _snapshot(bare) == _snapshot(observed)
        assert bare.n_steps == observed.n_steps
        # The recorder actually recorded the run it rode along on.
        assert recorder.task_latency.count > 0
        assert len(recorder.tracer.spans("job")) == 6

    def test_null_recorder_is_discarded_up_front(self):
        bare = _run("fair")
        nulled = _run("fair", recorder=NullRecorder())
        assert _snapshot(bare) == _snapshot(nulled)


class TestRecorderContents:
    @pytest.fixture(scope="class")
    def recorder(self):
        recorder = ObsRecorder(scrape_interval_s=5.0, window_s=60.0)
        _run("fair", recorder=recorder)
        return recorder

    def test_counters_balance(self, recorder):
        reg = recorder.registry
        admitted = reg.counter("repro_sim_jobs_admitted_total").value()
        finished = reg.counter("repro_sim_jobs_finished_total").value()
        assert admitted == finished == 6.0
        opened = reg.counter("repro_sim_flows_opened_total").value()
        closed = reg.counter("repro_sim_flows_closed_total").value(
            result="completed"
        )
        assert opened == closed > 0

    def test_latency_histogram_matches_quantile_stream(self, recorder):
        h = recorder.registry.histogram("repro_sim_task_latency_seconds")
        assert h.count() == recorder.task_latency.count > 0
        summary = recorder.task_latency.summary()
        assert 0.0 < summary["p50"] <= summary["p99"] <= summary["p999"]

    def test_scrapes_form_aligned_series(self, recorder):
        series = recorder.series()
        times = series["active_flows"].times
        assert times.size > 1
        assert np.all(np.diff(times) > 0)
        for ts in series.values():
            assert ts.values.size == times.size
        # One queue-depth series per tenant, all drained by the end.
        depth_series = [
            ts
            for name, ts in series.items()
            if name.startswith("tenant_queue_depth/")
        ]
        assert len(depth_series) == 6
        assert all(ts.values[-1] == 0.0 for ts in depth_series)

    def test_prometheus_render_parses(self, recorder):
        samples = parse_prometheus_text(recorder.render_prometheus())
        assert samples[("repro_sim_jobs_finished_total", ())] == 6.0
        assert ("repro_sim_makespan_seconds", ()) in samples

    def test_spans_are_well_formed(self, recorder):
        for span in recorder.tracer.spans():
            assert span["t1"] >= span["t0"]
        assert len(recorder.tracer.spans("stage")) > 0
        assert len(recorder.tracer.spans("taskgroup")) > 0
        assert len(recorder.tracer.spans("flow")) > 0
        trace = recorder.tracer.to_chrome_trace()
        assert len(trace["traceEvents"]) > len(recorder.tracer.records())

    def test_shaper_transitions_recorded(self):
        # A big shuffle through nearly-drained buckets must deplete
        # them: the fleet fires the transition hook and the recorder
        # books one throttle per capped node.
        from repro.netmodel import TokenBucketParams
        from repro.simulator import JobSpec, StageSpec

        params = TokenBucketParams(
            peak_gbps=10.0,
            capped_gbps=1.0,
            replenish_gbps=0.95,
            capacity_gbit=400.0,
            initial_budget_gbit=5.0,
        )
        cluster = Cluster(
            n_nodes=2,
            node_spec=NodeSpec(slots=4),
            link_model_factory=lambda node: TokenBucketModel(params),
        )
        job = JobSpec(
            name="shuffler",
            stages=(
                StageSpec(
                    name="map", num_tasks=4, compute_s=0.5, compute_cov=0.0
                ),
                StageSpec(
                    name="reduce",
                    num_tasks=4,
                    compute_s=0.5,
                    compute_cov=0.0,
                    shuffle_gbit=200.0,
                    parents=(0,),
                ),
            ),
        )
        recorder = ObsRecorder()
        engine = SparkEngine(cluster, rng=np.random.default_rng(1))
        engine.run_stream([(0.0, job)], scheduler="fair", recorder=recorder)
        throttles = recorder.registry.counter(
            "repro_sim_shaper_throttles_total"
        )
        assert sum(throttles.samples().values()) > 0
        assert any(
            e["name"] == "shaper_throttle"
            for e in recorder.tracer.events("fabric")
        )


class TestRecorderOptions:
    def test_rejects_nonpositive_scrape_interval(self):
        with pytest.raises(ValueError):
            ObsRecorder(scrape_interval_s=0.0)

    def test_trace_flows_off_counts_but_does_not_span(self):
        recorder = ObsRecorder(trace_flows=False)
        _run("fair", recorder=recorder)
        assert recorder.tracer.spans("flow") == []
        opened = recorder.registry.counter(
            "repro_sim_flows_opened_total"
        ).value()
        assert opened > 0

    def test_preempt_scheduler_emits_preempt_events(self):
        recorder = ObsRecorder()
        _run("preempt", recorder=recorder)
        preempts = recorder.registry.counter(
            "repro_sim_preemptions_total"
        ).value()
        events = [
            e
            for e in recorder.tracer.events("sched")
            if e["name"] == "preempt"
        ]
        assert preempts == len(events)
        cancelled = recorder.registry.counter(
            "repro_sim_flows_closed_total"
        ).value(result="cancelled")
        assert cancelled >= 0

    def test_deadline_misses_counted(self):
        recorder = ObsRecorder()
        result = _run("fair", recorder=recorder, deadline_s=1.0)
        missed = sum(
            1 for job in result.job_results if job.deadline_missed
        )
        assert missed > 0
        counted = recorder.registry.counter(
            "repro_sim_deadline_misses_total"
        ).value()
        assert counted == missed
        assert any(
            e["name"] == "deadline_miss"
            for e in recorder.tracer.events("sched")
        )
