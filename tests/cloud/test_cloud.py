"""Tests for instance catalogs, provider factories, and Ballani clouds."""

import numpy as np
import pytest

from repro.cloud import (
    BALLANI_CLOUDS,
    Ec2Provider,
    GceProvider,
    HpcCloudProvider,
    ballani_distribution,
    default_providers,
    instance_catalog,
    lookup_instance,
)
from repro.cloud.ballani import CLOUD_LABELS
from repro.netmodel import PerCoreQosModel, TokenBucketModel
from repro.netmodel.stochastic import Ar1QuantileModel


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestCatalog:
    def test_table3_has_eleven_campaign_rows(self):
        campaign_types = [s for s in instance_catalog() if s.experiment_weeks > 0]
        assert len(campaign_types) == 11

    def test_lookup(self):
        spec = lookup_instance("c5.xlarge")
        assert spec.provider == "amazon"
        assert spec.qos_gbps == 10.0
        assert spec.featured

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            lookup_instance("z9.mega")

    def test_gce_qos_is_two_gbps_per_core(self):
        for name, cores in [("gce-1core", 1), ("gce-2core", 2),
                            ("gce-4core", 4), ("gce-8core", 8)]:
            spec = lookup_instance(name)
            assert spec.qos_gbps == 2.0 * cores

    def test_hpccloud_has_no_qos(self):
        assert lookup_instance("hpccloud-8core").qos_gbps is None

    def test_total_cost_close_to_paper(self):
        # Table 3 costs sum to $1095 across the priced campaigns.
        total = sum(
            s.cost_usd for s in instance_catalog() if s.cost_usd is not None
        )
        assert total == pytest.approx(1_095.0)


class TestEc2Provider:
    def test_link_model_is_token_bucket(self, rng):
        model = Ec2Provider().link_model("c5.xlarge", rng)
        assert isinstance(model, TokenBucketModel)
        assert model.limit() == pytest.approx(10.0)

    def test_nominal_time_to_empty_near_ten_minutes(self):
        params = Ec2Provider().bucket_params("c5.xlarge")
        assert params.time_to_empty_s == pytest.approx(600.0, rel=0.1)

    def test_bigger_instances_get_bigger_buckets(self):
        provider = Ec2Provider()
        sizes = ["c5.large", "c5.xlarge", "c5.2xlarge", "c5.4xlarge"]
        budgets = [provider.bucket_params(s).capacity_gbit for s in sizes]
        assert budgets == sorted(budgets)
        lows = [provider.bucket_params(s).capped_gbps for s in sizes]
        assert lows == sorted(lows)

    def test_incarnations_vary(self, rng):
        provider = Ec2Provider()
        caps = {
            provider.sample_bucket_params("c5.xlarge", rng).capacity_gbit
            for _ in range(10)
        }
        assert len(caps) == 10  # lognormal jitter: all distinct

    def test_pre_2019_era_never_caps_at_5gbps(self, rng):
        provider = Ec2Provider(era="pre-2019-08")
        peaks = {
            provider.sample_bucket_params("c5.xlarge", rng).peak_gbps
            for _ in range(50)
        }
        assert peaks == {10.0}

    def test_post_2019_era_sometimes_caps_at_5gbps(self, rng):
        provider = Ec2Provider(era="post-2019-08", five_gbps_fraction=0.5)
        peaks = [
            provider.sample_bucket_params("c5.xlarge", rng).peak_gbps
            for _ in range(100)
        ]
        assert 5.0 in peaks and 10.0 in peaks

    def test_unknown_type_rejected(self, rng):
        with pytest.raises(KeyError):
            Ec2Provider().bucket_params("gce-8core")

    def test_latency_models(self):
        provider = Ec2Provider()
        assert not provider.latency_model().throttled
        assert provider.latency_model(throttled=True).throttled

    def test_negligible_retransmissions(self):
        assert Ec2Provider().retransmission_rate() < 1e-4


class TestGceProvider:
    def test_link_model_is_percore(self, rng):
        model = GceProvider().link_model("gce-8core", rng)
        assert isinstance(model, PerCoreQosModel)
        assert model.qos_gbps == 16.0

    def test_retransmission_rate_depends_on_write_size(self):
        provider = GceProvider()
        assert provider.retransmission_rate(9_000) < 1e-3
        assert provider.retransmission_rate(131_072) > 0.01


class TestHpcCloudProvider:
    def test_link_model_is_ar1(self, rng):
        model = HpcCloudProvider().link_model("hpccloud-8core", rng)
        assert isinstance(model, Ar1QuantileModel)

    def test_bandwidth_range_matches_paper(self, rng):
        # Section 3.1: 7.7 - 10.4 Gbps on the 8-core pair.
        dist = HpcCloudProvider().bandwidth_distribution("hpccloud-8core")
        assert dist.quantile(0.01) == pytest.approx(7.7)
        assert dist.quantile(0.99) == pytest.approx(10.4)

    def test_smaller_nodes_scale_down(self):
        provider = HpcCloudProvider()
        d8 = provider.bandwidth_distribution("hpccloud-8core")
        d4 = provider.bandwidth_distribution("hpccloud-4core")
        assert d4.median == pytest.approx(d8.median / 2.0)


class TestDefaultProviders:
    def test_three_clouds(self):
        providers = default_providers()
        assert set(providers) == {"amazon", "google", "hpccloud"}


class TestBallani:
    def test_eight_clouds(self):
        assert set(BALLANI_CLOUDS) == set(CLOUD_LABELS)
        assert len(BALLANI_CLOUDS) == 8

    def test_values_in_sub_gbps_range(self):
        for dist in BALLANI_CLOUDS.values():
            assert 0.0 < dist.quantile(0.01)
            assert dist.quantile(0.99) <= 1.0  # converted to Gbps

    def test_lookup_case_insensitive(self):
        assert ballani_distribution("a") is BALLANI_CLOUDS["A"]

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            ballani_distribution("Z")

    def test_f_and_g_are_the_most_variable(self):
        # The paper singles out clouds F-G as supporting fine sampling
        # rates because of their high variability.
        def relative_spread(label):
            d = BALLANI_CLOUDS[label]
            return (d.quantile(0.99) - d.quantile(0.01)) / d.median

        spreads = {label: relative_spread(label) for label in CLOUD_LABELS}
        top_two = sorted(spreads, key=spreads.get, reverse=True)[:2]
        assert set(top_two) == {"F", "G"}
