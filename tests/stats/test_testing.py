"""Tests for the statistical assumption tests (F5.4)."""

import numpy as np
import pytest

from repro.stats import (
    adf_test,
    ljung_box_test,
    mann_whitney_test,
    runs_test,
    shapiro_test,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestShapiro:
    def test_normal_sample_keeps_null(self, rng):
        verdict = shapiro_test(rng.normal(0, 1, 200))
        assert not verdict.reject_null

    def test_exponential_sample_rejects(self, rng):
        verdict = shapiro_test(rng.exponential(1, 200))
        assert verdict.reject_null

    def test_needs_three_samples(self):
        with pytest.raises(ValueError):
            shapiro_test([1.0, 2.0])


class TestMannWhitney:
    def test_same_distribution_keeps_null(self, rng):
        a = rng.normal(10, 2, 100)
        b = rng.normal(10, 2, 100)
        assert not mann_whitney_test(a, b).reject_null

    def test_shifted_distribution_rejects(self, rng):
        a = rng.normal(10, 2, 100)
        b = rng.normal(14, 2, 100)
        assert mann_whitney_test(a, b).reject_null

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_test(np.ones((2, 2)), np.ones(4))


class TestRunsTest:
    def test_random_sequence_keeps_null(self, rng):
        verdict = runs_test(rng.normal(0, 1, 300))
        assert not verdict.reject_null

    def test_trending_sequence_rejects(self):
        # A monotone-ish trend has almost no runs.
        samples = np.linspace(0, 100, 200) + np.random.default_rng(0).normal(
            0, 1, 200
        )
        assert runs_test(samples).reject_null

    def test_alternating_sequence_rejects(self):
        samples = np.tile([1.0, 10.0], 100)
        # Perfect alternation has too many runs for randomness; values
        # equal to the median are dropped so perturb slightly.
        samples = samples + np.random.default_rng(1).normal(0, 0.01, 200)
        assert runs_test(samples).reject_null

    def test_details_contain_run_counts(self, rng):
        verdict = runs_test(rng.normal(0, 1, 100))
        assert "runs" in verdict.details
        assert "expected_runs" in verdict.details

    def test_degenerate_sample_rejected(self):
        with pytest.raises(ValueError):
            runs_test([1.0, 1.0, 1.0, 2.0, 2.0])


class TestLjungBox:
    def test_white_noise_keeps_null(self, rng):
        verdict = ljung_box_test(rng.normal(0, 1, 500))
        assert not verdict.reject_null

    def test_ar1_rejects(self, rng):
        n = 500
        x = np.zeros(n)
        for i in range(1, n):
            x[i] = 0.8 * x[i - 1] + rng.normal()
        assert ljung_box_test(x).reject_null

    def test_constant_series_rejected(self):
        with pytest.raises(ValueError):
            ljung_box_test(np.ones(50))


class TestAdf:
    def test_stationary_series_rejects_unit_root(self, rng):
        # AR(1) with phi=0.5 is stationary: the test should reject the
        # unit-root null (i.e. support stationarity).
        n = 400
        x = np.zeros(n)
        for i in range(1, n):
            x[i] = 0.5 * x[i - 1] + rng.normal()
        verdict = adf_test(x)
        assert verdict.reject_null

    def test_random_walk_keeps_unit_root(self, rng):
        walk = np.cumsum(rng.normal(0, 1, 400))
        verdict = adf_test(walk)
        assert not verdict.reject_null

    def test_details_contain_critical_values(self, rng):
        verdict = adf_test(rng.normal(0, 1, 100))
        assert verdict.details["crit_1pct"] < verdict.details["crit_5pct"]
        assert verdict.details["crit_5pct"] < verdict.details["crit_10pct"]

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError):
            adf_test(np.arange(5.0))

    def test_p_value_in_unit_interval(self, rng):
        for _ in range(5):
            verdict = adf_test(rng.normal(0, 1, 80))
            assert 0.0 <= verdict.p_value <= 1.0


def test_verdict_str_is_informative(rng):
    verdict = shapiro_test(rng.normal(0, 1, 50))
    text = str(verdict)
    assert "shapiro" in text
    assert "H0" in text
