"""Tests for Pettitt's changepoint test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import pettitt_test


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestPettitt:
    def test_no_changepoint_keeps_null(self, rng):
        assert not pettitt_test(rng.normal(10, 1, 100)).reject_null

    def test_midpoint_shift_detected(self, rng):
        samples = np.concatenate([rng.normal(10, 1, 50), rng.normal(14, 1, 50)])
        verdict = pettitt_test(samples)
        assert verdict.reject_null
        assert 40 <= verdict.details["changepoint_index"] <= 58

    def test_early_shift_detected(self, rng):
        # The case a half-vs-half Mann-Whitney misses: the shift sits
        # a quarter of the way in (Figure 19's early budget depletion).
        samples = np.concatenate([rng.normal(78, 3, 6), rng.normal(186, 5, 18)])
        verdict = pettitt_test(samples)
        assert verdict.reject_null
        assert 3 <= verdict.details["changepoint_index"] <= 8

    def test_late_shift_detected(self, rng):
        samples = np.concatenate([rng.normal(80, 3, 40), rng.normal(140, 5, 8)])
        assert pettitt_test(samples).reject_null

    def test_pure_trend_detected(self, rng):
        samples = np.linspace(0, 50, 60) + rng.normal(0, 1, 60)
        assert pettitt_test(samples).reject_null

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            pettitt_test([1.0, 2.0, 3.0])

    def test_p_value_in_unit_interval(self, rng):
        verdict = pettitt_test(rng.normal(0, 1, 30))
        assert 0.0 <= verdict.p_value <= 1.0

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_false_positive_rate_controlled(self, seed):
        # Individually the test may (rarely) reject on noise; here we
        # only require structural sanity per draw — and the aggregate
        # check below bounds the rate.
        rng = np.random.default_rng(seed)
        verdict = pettitt_test(rng.normal(0, 1, 50))
        assert verdict.statistic >= 0

    def test_false_positive_rate_aggregate(self):
        rng = np.random.default_rng(1)
        rejections = sum(
            pettitt_test(rng.normal(0, 1, 50)).reject_null for _ in range(300)
        )
        # Pettitt's approximation is conservative; allow some slack.
        assert rejections / 300 < 0.10

    def test_statistic_matches_bruteforce(self, rng):
        # Cross-check the rank-based O(n log n) computation against the
        # textbook double sum.
        samples = rng.normal(0, 1, 40)
        verdict = pettitt_test(samples)
        n = samples.size
        u_values = []
        for t in range(1, n):
            u = 0
            for i in range(t):
                for j in range(t, n):
                    u += np.sign(samples[j] - samples[i])
            u_values.append(abs(u))
        assert verdict.statistic == pytest.approx(max(u_values))
