"""Tests for Cohen's Kappa, dispersion summaries, and the bootstrap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    bootstrap_ci,
    coefficient_of_variation,
    cohens_kappa,
    dispersion_summary,
)


class TestKappa:
    def test_perfect_agreement(self):
        labels = ["yes", "no", "yes", "no", "maybe"]
        assert cohens_kappa(labels, labels) == pytest.approx(1.0)

    def test_chance_level_agreement_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 10_000)
        b = rng.integers(0, 2, 10_000)
        assert abs(cohens_kappa(a.tolist(), b.tolist())) < 0.05

    def test_known_value(self):
        # Classic worked example: 2x2 table with observed 0.7,
        # expected 0.5 -> kappa 0.4.
        a = ["y"] * 35 + ["y"] * 15 + ["n"] * 15 + ["n"] * 35
        b = ["y"] * 35 + ["n"] * 15 + ["y"] * 15 + ["n"] * 35
        assert cohens_kappa(a, b) == pytest.approx(0.4)

    def test_paper_threshold_interpretation(self):
        # Scores > 0.8 denote near-perfect agreement; ~95% raw
        # agreement on a balanced binary task clears it.
        rng = np.random.default_rng(1)
        truth = rng.integers(0, 2, 2_000)
        flip = rng.uniform(size=2_000) < 0.025
        a = truth.tolist()
        b = np.where(flip, 1 - truth, truth).tolist()
        assert cohens_kappa(a, b) > 0.8

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cohens_kappa([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cohens_kappa([], [])

    def test_single_label_edge_case(self):
        assert cohens_kappa(["x", "x"], ["x", "x"]) == 1.0


class TestCov:
    def test_known_cov(self):
        samples = [8.0, 12.0]  # mean 10, std 2
        assert coefficient_of_variation(samples) == pytest.approx(0.2)

    def test_zero_mean_is_inf(self):
        # Unified contract with dispersion_summary: degenerate samples
        # summarize as infinitely dispersed instead of crashing a sweep.
        assert coefficient_of_variation([-1.0, 1.0]) == float("inf")
        assert dispersion_summary([-1.0, 1.0]).cov == float("inf")
        assert dispersion_summary([0.0, 0.0]).cov == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    def test_dispersion_summary_fields(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(100, 10, 500)
        summary = dispersion_summary(samples)
        assert summary.n == 500
        assert summary.mean == pytest.approx(100, abs=2)
        assert summary.cov == pytest.approx(0.1, abs=0.02)
        assert summary.box.p25 < summary.median < summary.box.p75
        assert summary.iqr == summary.box.iqr

    @given(
        values=st.lists(
            st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_cov_nonnegative_for_positive_samples(self, values):
        assert coefficient_of_variation(values) >= 0.0


class TestBootstrap:
    def test_median_ci_contains_estimate(self):
        rng = np.random.default_rng(3)
        samples = rng.normal(50, 5, 100)
        ci = bootstrap_ci(samples)
        assert ci.low <= ci.estimate <= ci.high

    def test_mean_statistic(self):
        rng = np.random.default_rng(4)
        samples = rng.normal(50, 5, 100)
        ci = bootstrap_ci(samples, statistic=np.mean)
        assert ci.low <= np.mean(samples) <= ci.high

    def test_agrees_with_order_statistics_ci(self):
        from repro.stats import median_ci

        rng = np.random.default_rng(5)
        samples = rng.normal(100, 10, 200)
        boot = bootstrap_ci(samples, resamples=4000)
        order = median_ci(samples)
        # The two methods should broadly agree on the interval.
        assert abs(boot.low - order.low) < 3.0
        assert abs(boot.high - order.high) < 3.0

    def test_deterministic_default_rng(self):
        samples = np.arange(1.0, 51.0)
        a = bootstrap_ci(samples)
        b = bootstrap_ci(samples)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], resamples=5)
