"""Tests for the CONFIRM repetition analysis."""

import numpy as np
import pytest

from repro.stats import confirm_curve, min_samples_for_ci, repetitions_needed


class TestConfirmCurve:
    def test_curve_starts_at_min_samples(self):
        rng = np.random.default_rng(0)
        curve = confirm_curve(rng.normal(100, 5, 50))
        assert curve.ns[0] == min_samples_for_ci(0.5, 0.95)
        assert curve.ns[-1] == 50

    def test_ci_tightens_with_iid_samples(self):
        rng = np.random.default_rng(1)
        curve = confirm_curve(rng.normal(100, 5, 200))
        widths = curve.ci_high - curve.ci_low
        # Average width over the last decile is smaller than the first.
        assert np.mean(widths[-20:]) < np.mean(widths[:20])

    def test_no_widening_for_iid(self):
        rng = np.random.default_rng(2)
        curve = confirm_curve(rng.normal(100, 5, 200))
        assert not curve.widening_detected()

    def test_widening_detected_for_drifting_series(self):
        # A strong upward drift (the Figure 19 Query-65 situation:
        # depleting budgets slow successive repetitions) widens CIs.
        rng = np.random.default_rng(3)
        drift = np.linspace(0, 80, 120)
        samples = rng.normal(100, 2, 120) + drift
        curve = confirm_curve(samples)
        assert curve.widening_detected()

    def test_empty_curve_for_tiny_sample(self):
        curve = confirm_curve([1.0, 2.0, 3.0])
        assert len(curve) == 0
        with pytest.raises(ValueError):
            curve.final_ci()

    def test_final_ci_matches_full_sample(self):
        rng = np.random.default_rng(4)
        samples = rng.normal(50, 5, 80)
        curve = confirm_curve(samples)
        final = curve.final_ci()
        assert final.n == 80
        assert final.low <= final.estimate <= final.high

    def test_relative_half_widths_positive(self):
        rng = np.random.default_rng(5)
        curve = confirm_curve(rng.normal(100, 5, 60))
        assert np.all(curve.relative_half_widths >= 0)


class TestRepetitionsNeeded:
    def test_low_variance_needs_few_repetitions(self):
        rng = np.random.default_rng(6)
        samples = rng.normal(100, 0.5, 100)
        needed = repetitions_needed(samples, error=0.05)
        assert needed is not None
        assert needed <= 15

    def test_high_variance_needs_many_repetitions(self):
        rng = np.random.default_rng(7)
        low_var = repetitions_needed(rng.normal(100, 1, 300), error=0.01)
        high_var = repetitions_needed(rng.normal(100, 20, 300), error=0.01)
        # Higher variance must not need fewer repetitions; it usually
        # needs far more (or never converges).
        if high_var is not None:
            assert low_var is not None and high_var >= low_var
        else:
            assert True  # never converged: strictly harder

    def test_none_when_bound_never_met(self):
        rng = np.random.default_rng(8)
        samples = rng.normal(100, 40, 30)
        assert repetitions_needed(samples, error=0.001) is None

    def test_paper_scale_seventy_reps_for_one_percent(self):
        # With ~5% CoV (typical of the Figure 13 benchmarks), 1% error
        # bounds need dozens of repetitions.
        rng = np.random.default_rng(9)
        samples = rng.normal(100, 5, 300)
        needed = repetitions_needed(samples, error=0.01)
        assert needed is not None
        assert needed > 25


class TestMinSamples:
    def test_median_95(self):
        assert min_samples_for_ci(0.5, 0.95) == 6

    def test_median_99_needs_more(self):
        assert min_samples_for_ci(0.5, 0.99) == 8

    def test_tail_needs_many_more(self):
        n_median = min_samples_for_ci(0.5, 0.95)
        n_tail = min_samples_for_ci(0.9, 0.95)
        assert n_tail > 3 * n_median
