"""Tests for group comparisons and time-series tooling."""

import numpy as np
import pytest

from repro.stats import (
    autocorrelation,
    compare_groups,
    diurnal_profile,
    interval_medians,
    kruskal_wallis,
    one_way_anova,
    stationary_windows,
)
from repro.trace import TimeSeries


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestAnova:
    def test_equal_means_keep_null(self, rng):
        groups = [rng.normal(10, 1, 40) for _ in range(3)]
        assert not one_way_anova(groups).reject_null

    def test_shifted_mean_rejects(self, rng):
        groups = [rng.normal(10, 1, 40), rng.normal(12, 1, 40)]
        assert one_way_anova(groups).reject_null

    def test_validation(self):
        with pytest.raises(ValueError):
            one_way_anova([[1.0, 2.0]])
        with pytest.raises(ValueError):
            one_way_anova([[1.0], [1.0, 2.0]])


class TestKruskal:
    def test_same_distribution_keeps_null(self, rng):
        groups = [rng.exponential(5, 60) for _ in range(3)]
        assert not kruskal_wallis(groups).reject_null

    def test_shifted_distribution_rejects(self, rng):
        groups = [rng.exponential(5, 60), rng.exponential(5, 60) + 4]
        assert kruskal_wallis(groups).reject_null


class TestCompareGroups:
    def test_normal_groups_use_anova(self, rng):
        groups = [rng.normal(10, 1, 50) for _ in range(3)]
        verdict = compare_groups(groups)
        assert verdict.name == "one-way-anova"

    def test_skewed_groups_use_kruskal(self, rng):
        groups = [rng.exponential(5, 100) for _ in range(3)]
        verdict = compare_groups(groups)
        assert verdict.name == "kruskal-wallis"

    def test_detects_budget_effect_between_batches(self, rng):
        # The practical use: comparing repetition batches run at fresh
        # vs depleted budgets (a Figure 19-style check).
        fresh = rng.normal(80, 3, 30)
        depleted = rng.normal(180, 8, 30)
        assert compare_groups([fresh, depleted]).reject_null


class TestAutocorrelation:
    def test_white_noise_near_zero(self, rng):
        acf = autocorrelation(rng.normal(0, 1, 2_000), max_lag=5)
        assert np.all(np.abs(acf) < 0.1)

    def test_ar1_decays_geometrically(self, rng):
        n = 5_000
        x = np.zeros(n)
        for i in range(1, n):
            x[i] = 0.7 * x[i - 1] + rng.normal()
        acf = autocorrelation(x, max_lag=3)
        assert acf[0] == pytest.approx(0.7, abs=0.07)
        assert acf[1] == pytest.approx(0.49, abs=0.08)

    def test_validation(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], max_lag=5)
        with pytest.raises(ValueError):
            autocorrelation(np.ones(100), max_lag=5)


class TestStationaryWindows:
    def test_stationary_series_fully_covered(self, rng):
        series = TimeSeries(np.arange(240.0), rng.normal(10, 1, 240))
        windows = stationary_windows(series, window_samples=60)
        assert len(windows) == 1
        start, end = windows[0]
        assert start == 0.0
        assert end >= 200.0

    def test_level_shift_splits_windows(self, rng):
        # Stationary at 10, then a ramp, then stationary at 30: the
        # windows should avoid covering the ramp as one stationary run.
        values = np.concatenate([
            rng.normal(10, 1, 120),
            np.linspace(10, 30, 120) + rng.normal(0, 0.5, 120),
            rng.normal(30, 1, 120),
        ])
        series = TimeSeries(np.arange(360.0), values)
        windows = stationary_windows(series, window_samples=60)
        assert len(windows) >= 2

    def test_validation(self, rng):
        series = TimeSeries(np.arange(100.0), rng.normal(0, 1, 100))
        with pytest.raises(ValueError):
            stationary_windows(series, window_samples=8)
        with pytest.raises(ValueError):
            stationary_windows(series, window_samples=20, stride_samples=0)


class TestIntervalMedians:
    def test_matches_resample_medians(self, rng):
        series = TimeSeries(np.arange(100.0), rng.normal(5, 1, 100))
        direct = series.resample_medians(10.0)
        via_stats = interval_medians(series, 10.0)
        assert via_stats.values == pytest.approx(direct.values)


class TestDiurnalProfile:
    def test_flat_series_no_swing(self, rng):
        times = np.arange(0, 2 * 86_400.0, 600.0)
        series = TimeSeries(times, np.full(times.size, 10.0))
        profile = diurnal_profile(series)
        assert profile.diurnal_swing == pytest.approx(0.0)
        assert profile.hourly_counts.sum() == times.size

    def test_sinusoidal_day_detected(self):
        times = np.arange(0, 3 * 86_400.0, 600.0)
        hours = (times / 3_600.0) % 24
        values = 10.0 + 3.0 * np.sin(2 * np.pi * hours / 24.0)
        profile = diurnal_profile(TimeSeries(times, values))
        assert profile.diurnal_swing > 0.3
        assert profile.peak_hour in (5, 6, 7)  # sin peaks at hour 6

    def test_offset_shifts_hours(self):
        times = np.arange(0, 86_400.0, 3_600.0)
        values = np.zeros(times.size)
        values[0] = 100.0  # spike at t=0
        base = diurnal_profile(TimeSeries(times, values))
        shifted = diurnal_profile(TimeSeries(times, values), t0_offset_s=3_600.0)
        assert base.peak_hour == 0
        assert shifted.peak_hour == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            diurnal_profile(TimeSeries(np.empty(0), np.empty(0)))
