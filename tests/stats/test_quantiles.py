"""Tests for nonparametric quantile confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import median_ci, quantile_ci, quantile_ci_indices


class TestIndices:
    def test_median_n10_matches_le_boudec_table(self):
        # Le Boudec's classic table: for n=10 at 95%, the median CI is
        # [x_(2), x_(9)].
        j, k, coverage = quantile_ci_indices(10, 0.5, 0.95)
        assert (j, k) == (2, 9)
        assert coverage >= 0.95

    def test_too_few_samples_returns_none(self):
        # The paper's footnote: 3 repetitions are insufficient for CIs.
        assert quantile_ci_indices(3, 0.5, 0.95) is None
        assert quantile_ci_indices(5, 0.5, 0.95) is None

    def test_six_samples_is_minimum_for_median(self):
        assert quantile_ci_indices(6, 0.5, 0.95) is not None

    def test_tail_quantile_needs_more_samples(self):
        # 90th percentile CIs need far more than median CIs.
        assert quantile_ci_indices(10, 0.9, 0.95) is None
        assert quantile_ci_indices(50, 0.9, 0.95) is not None

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            quantile_ci_indices(10, 0.0, 0.95)
        with pytest.raises(ValueError):
            quantile_ci_indices(10, 0.5, 1.0)

    @given(
        n=st.integers(min_value=2, max_value=400),
        quantile=st.floats(min_value=0.05, max_value=0.95),
        confidence=st.sampled_from([0.90, 0.95, 0.99]),
    )
    @settings(max_examples=100, deadline=None)
    def test_indices_are_valid_and_cover(self, n, quantile, confidence):
        result = quantile_ci_indices(n, quantile, confidence)
        if result is None:
            return
        j, k, coverage = result
        assert 1 <= j < k <= n
        assert coverage >= confidence - 1e-12


class TestQuantileCI:
    def test_estimate_between_bounds(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(100, 10, 60)
        ci = median_ci(samples)
        assert ci is not None
        assert ci.low <= ci.estimate <= ci.high
        assert ci.n == 60

    def test_none_for_small_samples(self):
        assert median_ci([1.0, 2.0, 3.0]) is None

    def test_within_error_bound(self):
        rng = np.random.default_rng(2)
        # Tight distribution: CI should fit within 5% bounds quickly.
        samples = rng.normal(100, 1, 100)
        ci = median_ci(samples)
        assert ci.within_error_bound(0.05)
        assert not ci.within_error_bound(0.0001)

    def test_contains(self):
        ci = median_ci(np.arange(1.0, 101.0))
        assert ci.contains(ci.estimate)
        assert not ci.contains(ci.high + 1.0)

    def test_relative_width(self):
        ci = median_ci(np.arange(1.0, 101.0))
        assert ci.relative_width == pytest.approx(ci.width / ci.estimate)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_coverage_of_true_median_on_uniform(self, seed):
        # Statistical property: bounds are order statistics so the CI of
        # a 200-point uniform sample should nearly always contain 0.5.
        # (Exact coverage is >= 95%; with a per-example check we accept
        # the rare miss by counting across the run instead.)
        rng = np.random.default_rng(seed)
        samples = rng.uniform(0, 1, 200)
        ci = median_ci(samples)
        assert ci is not None
        # Record as a soft property: bounds are sane and ordered.
        assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_coverage_rate_across_many_draws(self):
        rng = np.random.default_rng(7)
        hits = 0
        trials = 400
        for _ in range(trials):
            samples = rng.uniform(0, 1, 50)
            ci = median_ci(samples)
            if ci.low <= 0.5 <= ci.high:
                hits += 1
        # Exact coverage is >= 0.95; allow Monte-Carlo slack.
        assert hits / trials >= 0.92

    def test_ninetieth_percentile_ci(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(10, 300)
        ci = quantile_ci(samples, quantile=0.9)
        assert ci is not None
        assert ci.low <= ci.estimate <= ci.high
        assert ci.quantile == 0.9
