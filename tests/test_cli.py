"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_figures_registered(self):
        parser = build_parser()
        for name in (f"fig{i:02d}" for i in range(1, 20)):
            args = parser.parse_args([name, "--fast"])
            assert args.artifact == name

    def test_tables_registered(self):
        parser = build_parser()
        for name in ("table1", "table2", "table3", "table4"):
            args = parser.parse_args([name])
            assert args.artifact == name

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_accept_seed(self):
        parser = build_parser()
        args = parser.parse_args(["fig16", "--fast", "--seed", "3"])
        assert args.seed == 3
        # Omitting --seed keeps the artifact's hardcoded default.
        assert parser.parse_args(["fig16"]).seed is None

    def test_scenario_registered(self):
        args = build_parser().parse_args(
            ["scenario", "--fast", "--seed", "7", "--workers", "2"]
        )
        assert args.seed == 7
        assert args.workers == 2

    def test_campaign_subcommands_share_runtime_flags(self):
        # The CLI-consistency contract: every campaign-ish subcommand
        # accepts the same --workers/--seed/--store vocabulary.
        parser = build_parser()
        cases = {
            "scenario": ["scenario"],
            "bench": ["bench"],
            "worker": ["worker", "m.json"],
            "merge": ["merge", "s0", "s1"],
        }
        for name, argv in cases.items():
            args = parser.parse_args(
                argv + ["--workers", "3", "--seed", "9", "--store", "d"]
            )
            assert args.workers == 3, name
            assert args.seed == 9, name
            assert args.store == "d", name

    def test_worker_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "m.json"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["merge", "s0"])

    def test_remote_flag_spans_the_fabric(self):
        # worker, campaign run, and campaign status share one --remote
        # vocabulary naming the remote store root.
        parser = build_parser()
        cases = {
            "worker": ["worker", "m.json", "--store", "d"],
            "campaign run": ["campaign", "run", "shards"],
            "campaign status": ["campaign", "status", "shards"],
        }
        for name, argv in cases.items():
            args = parser.parse_args(argv + ["--remote", "r"])
            assert args.remote == "r", name
            assert parser.parse_args(argv).remote is None, name

    def test_store_sync_verbs_registered(self):
        parser = build_parser()
        for verb in ("push", "pull", "sync"):
            args = parser.parse_args(
                ["store", verb, "local", "--remote", "r",
                 "--retries", "5", "--timeout", "2.5", "--seed", "7"]
            )
            assert args.store_command == verb
            assert args.store_dir == "local" and args.remote == "r"
            assert args.retries == 5 and args.timeout == 2.5
            with pytest.raises(SystemExit):  # --remote is required
                parser.parse_args(["store", verb, "local"])

    def test_store_verify_and_digest_flags(self):
        parser = build_parser()
        args = parser.parse_args(["store", "verify", "d", "--repair"])
        assert args.repair
        args = parser.parse_args(["store", "digest", "d0", "d1"])
        assert args.stores == ["d0", "d1"]

    def test_figures_accept_workers(self):
        args = build_parser().parse_args(["fig16", "--fast", "--workers", "2"])
        assert args.workers == 2


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "table3" in out
        assert "fingerprint" in out

    def test_fast_figure(self, capsys):
        assert main(["fig02"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "cloud=A" in out

    def test_fast_simulation_figure(self, capsys):
        assert main(["fig14", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "nrmse" in out

    def test_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NSDI" in out

    def test_fingerprint(self, capsys):
        assert main(["fingerprint", "c5.xlarge"]) == 0
        out = capsys.readouterr().out
        assert "token bucket" in out
        assert "base bandwidth" in out

    def test_fingerprint_unknown_instance(self, capsys):
        assert main(["fingerprint", "z9.mega"]) == 2
        assert "error" in capsys.readouterr().err

    def test_seed_changes_stochastic_artifact(self, capsys):
        assert main(["fig12", "--seed", "0"]) == 0
        base = capsys.readouterr().out
        assert main(["fig12", "--seed", "0"]) == 0
        assert capsys.readouterr().out == base
        assert main(["fig12", "--seed", "5"]) == 0
        assert capsys.readouterr().out != base

    def test_seed_ignored_on_deterministic_artifact(self, capsys):
        assert main(["fig02", "--seed", "5"]) == 0
        captured = capsys.readouterr()
        assert "cloud=A" in captured.out
        assert "--seed ignored" in captured.err

    def test_scenario_fast(self, capsys, tmp_path):
        repo = str(tmp_path / "cells")
        argv = ["scenario", "--fast", "--seed", "7",
                "--providers", "amazon", "--arrival-rates", "2.0",
                "--repo", repo]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "scenario sweep" in first
        assert "computed=2 cached=0" in first
        # Re-running against the same repository hits the cache for
        # every cell and reproduces the rows byte for byte.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "computed=0 cached=2" in second
        assert second.replace("computed=0 cached=2", "computed=2 cached=0") == first

    def test_scenario_bad_provider(self, capsys):
        assert main(["scenario", "--fast", "--providers", "clowncloud"]) == 2
        assert "error" in capsys.readouterr().err

    def test_scenario_store_flag_matches_repo_alias(self, capsys, tmp_path):
        argv = ["scenario", "--fast", "--seed", "7",
                "--providers", "amazon", "--arrival-rates", "2.0"]
        assert main(argv + ["--store", str(tmp_path / "a")]) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--repo", str(tmp_path / "b")]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_shard_worker_merge_workflow(self, capsys, tmp_path):
        base = ["scenario", "--fast", "--seed", "7",
                "--providers", "amazon", "--arrival-rates", "2.0"]
        shard_dir = tmp_path / "shards"
        assert main(base + ["--shards", "2", "--shard-dir", str(shard_dir)]) == 0
        out = capsys.readouterr().out
        assert "2 shard manifest(s)" in out
        assert (shard_dir / "shard-0.json").exists()
        for index in range(2):
            assert main([
                "worker", str(shard_dir / f"shard-{index}.json"),
                "--store", str(shard_dir / f"shard-{index}-store"),
            ]) == 0
            assert "worker done" in capsys.readouterr().out
        merged = tmp_path / "merged"
        assert main([
            "merge", str(shard_dir / "shard-0-store"),
            str(shard_dir / "shard-1-store"), "--store", str(merged),
        ]) == 0
        assert "content hash" in capsys.readouterr().out
        # The merged store serves the whole sweep from cache.
        assert main(base + ["--store", str(merged)]) == 0
        assert "computed=0 cached=2" in capsys.readouterr().out

    def test_shards_requires_shard_dir(self, capsys):
        assert main(["scenario", "--fast", "--shards", "2"]) == 2
        assert "shard-dir" in capsys.readouterr().err

    def test_worker_missing_manifest(self, capsys, tmp_path):
        code = main(["worker", str(tmp_path / "nope.json"),
                     "--store", str(tmp_path / "s")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_scenario_corrupted_cache_is_clean_error(self, capsys, tmp_path):
        store = tmp_path / "cells"
        argv = ["scenario", "--fast", "--seed", "7",
                "--providers", "amazon", "--arrival-rates", "2.0",
                "--store", str(store)]
        assert main(argv) == 0
        capsys.readouterr()
        victim = next(store.glob("scn-*"))
        (victim / "runtimes.json").unlink()
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "corrupt" in err

    def test_bench_seed_refuses_ledger_operations(self, capsys):
        assert main(["bench", "--seed", "5", "--check"]) == 2
        assert "checksums" in capsys.readouterr().err

    def test_store_verify_missing_store_is_clean_error(
        self, capsys, tmp_path
    ):
        missing = tmp_path / "never-created"
        assert main(["store", "verify", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        # The audit must not scaffold the store it failed to find.
        assert not missing.exists()

    def test_campaign_run_empty_dir_is_clean_error(self, capsys, tmp_path):
        assert main(["campaign", "run", str(tmp_path)]) == 2
        assert "no shard manifests" in capsys.readouterr().err


class TestStoreMaintenance:
    def _store(self, tmp_path, name="local"):
        from repro.runtime import ArtifactStore

        store = ArtifactStore(tmp_path / name)
        store.put("k1", {"config": {"seed": 1}, "a": {"values": [1.0]}})
        store.put("k2", {"config": {"seed": 2}})
        return store

    def test_push_pull_roundtrip_via_cli(self, capsys, tmp_path):
        from repro.runtime import ArtifactStore

        source = self._store(tmp_path)
        remote = tmp_path / "remote"
        assert main([
            "store", "push", str(source.root), "--remote", str(remote),
            "--quiet",
        ]) == 0
        assert "pushed=2" in capsys.readouterr().out
        dest = ArtifactStore(tmp_path / "dest")
        assert main([
            "store", "pull", str(dest.root), "--remote", str(remote),
            "--quiet",
        ]) == 0
        assert "pulled=2" in capsys.readouterr().out
        assert dest.content_hash() == source.content_hash()
        assert dest.verify().ok

    def test_pull_failure_names_missing_keys(self, capsys, tmp_path):
        source = self._store(tmp_path)
        remote = tmp_path / "remote"
        assert main([
            "store", "push", str(source.root), "--remote", str(remote),
            "--quiet",
        ]) == 0
        capsys.readouterr()
        # Corrupt one remote document after the push: the pull must
        # fail that key (exit 1), land the healthy one, and say why.
        (remote / "k1" / "a.json").write_text('{"values": [9.0]}')
        dest = tmp_path / "dest"
        dest.mkdir()
        code = main([
            "store", "pull", str(dest), "--remote", str(remote),
            "--retries", "1", "--quiet",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "failed=1" in captured.out
        assert "missing k1" in captured.err
        from repro.runtime import ArtifactStore

        landed = ArtifactStore(dest)
        assert landed.keys() == ["k2"]
        assert landed.verify().ok

    def test_sync_missing_store_is_clean_error(self, capsys, tmp_path):
        code = main([
            "store", "sync", str(tmp_path / "never"), "--remote",
            str(tmp_path / "r"),
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_digest_backfills_undigested_store(self, capsys, tmp_path):
        import json as json_module

        store = self._store(tmp_path)
        manifest_path = store.root / "manifest.json"
        manifest = json_module.loads(manifest_path.read_text())
        for entry in manifest.values():
            entry.pop("sha256", None)
            entry.pop("documents", None)
        manifest_path.write_text(json_module.dumps(manifest))
        assert main(["store", "verify", str(store.root)]) == 0
        assert "2 undigested key(s)" in capsys.readouterr().out
        assert main(["store", "digest", str(store.root)]) == 0
        assert "recorded digests for 2 key(s)" in capsys.readouterr().out
        assert main(["store", "verify", str(store.root)]) == 0
        assert "undigested" not in capsys.readouterr().out

    def test_verify_repair_drops_corruption_and_exits_clean(
        self, capsys, tmp_path
    ):
        store = self._store(tmp_path)
        (store.root / "k1" / "a.json").write_text('{"values": [9.0]}')
        assert main(["store", "verify", str(store.root)]) == 1
        capsys.readouterr()
        assert main(["store", "verify", str(store.root), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired: dropped 1" in out
        assert store.verify().ok and "k1" not in store

    def test_worker_remote_syncs_and_resumes(self, capsys, tmp_path):
        # Full cross-machine loop at the CLI surface: shard, run the
        # worker with --remote, then a second worker on a fresh box
        # (fresh store) must serve everything from the pulled remote.
        base = ["scenario", "--fast", "--seed", "7",
                "--providers", "amazon", "--arrival-rates", "2.0"]
        shard_dir = tmp_path / "shards"
        assert main(base + ["--shards", "1", "--shard-dir", str(shard_dir)]) == 0
        capsys.readouterr()
        remote = tmp_path / "remote-store"
        manifest = str(shard_dir / "shard-0.json")
        assert main([
            "worker", manifest, "--store", str(shard_dir / "shard-0-store"),
            "--remote", str(remote), "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "worker done" in out and "sync push" in out
        fresh = tmp_path / "other-machine-store"
        assert main([
            "worker", manifest, "--store", str(fresh),
            "--remote", str(remote), "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "computed=0" in out  # every cell pulled, none recomputed
        from repro.runtime import ArtifactStore

        assert (
            ArtifactStore(fresh).content_hash()
            == ArtifactStore(shard_dir / "shard-0-store").content_hash()
        )


class TestServing:
    SERVE = ["serve", "--fast", "--provider", "fixed", "--rate", "10",
             "--duration", "10", "--seed", "3"]

    def test_serve_registered_with_defaults(self):
        args = build_parser().parse_args(["serve", "--fast"])
        assert args.provider == "hpccloud"
        assert args.arrival == "poisson"
        assert args.instance is None  # provider default applies later

    def test_scenario_workload_alias(self):
        args = build_parser().parse_args(
            ["scenario", "--workload", "serving", "--rates", "40,90"]
        )
        assert args.workloads == "serving"
        assert args.rates == "40,90"

    def test_serve_prints_verdict_table(self, capsys):
        assert main(self.SERVE) == 0
        out = capsys.readouterr().out
        assert "== serve: fixed/fixed-9gbps" in out
        assert "cell: srv-" in out
        assert "latency:" in out
        assert "slo verdicts:" in out
        assert "slo: PASS" in out or "slo: FAIL" in out

    def test_serve_is_deterministic(self, capsys):
        assert main(self.SERVE) == 0
        first = capsys.readouterr().out
        assert main(self.SERVE) == 0
        assert capsys.readouterr().out == first

    def test_serve_prom_output_parses(self, capsys):
        from repro.obs import parse_prometheus_text

        assert main(self.SERVE + ["--prom"]) == 0
        samples = parse_prometheus_text(capsys.readouterr().out)
        assert ("repro_slo_pass", ()) in samples
        assert (
            "repro_slo_target_seconds", (("quantile", "p99"),)
        ) in samples

    def test_serve_unknown_provider_needs_instance(self, capsys):
        assert main(["serve", "--fast", "--provider", "clowncloud"]) == 2
        assert "error" in capsys.readouterr().err

    def test_serving_sweep_caches(self, capsys, tmp_path):
        argv = ["scenario", "--workload", "serving", "--fast", "--seed", "3",
                "--providers", "fixed", "--arrivals", "poisson",
                "--rates", "10", "--store", str(tmp_path / "cells")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "serving sweep" in first
        assert "computed=1 cached=0" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "computed=0 cached=1" in second
        assert second.replace(
            "computed=0 cached=1", "computed=1 cached=0"
        ) == first

    def test_serving_cannot_mix_with_dag_workloads(self, capsys):
        code = main(["scenario", "--workload", "serving,terasort", "--fast"])
        assert code == 2
        assert "its own sweep" in capsys.readouterr().err
