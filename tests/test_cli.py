"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_figures_registered(self):
        parser = build_parser()
        for name in (f"fig{i:02d}" for i in range(1, 20)):
            args = parser.parse_args([name, "--fast"])
            assert args.artifact == name

    def test_tables_registered(self):
        parser = build_parser()
        for name in ("table1", "table2", "table3", "table4"):
            args = parser.parse_args([name])
            assert args.artifact == name

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "table3" in out
        assert "fingerprint" in out

    def test_fast_figure(self, capsys):
        assert main(["fig02"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "cloud=A" in out

    def test_fast_simulation_figure(self, capsys):
        assert main(["fig14", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "nrmse" in out

    def test_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NSDI" in out

    def test_fingerprint(self, capsys):
        assert main(["fingerprint", "c5.xlarge"]) == 0
        out = capsys.readouterr().out
        assert "token bucket" in out
        assert "base bandwidth" in out

    def test_fingerprint_unknown_instance(self, capsys):
        assert main(["fingerprint", "z9.mega"]) == 2
        assert "error" in capsys.readouterr().err
