"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_figures_registered(self):
        parser = build_parser()
        for name in (f"fig{i:02d}" for i in range(1, 20)):
            args = parser.parse_args([name, "--fast"])
            assert args.artifact == name

    def test_tables_registered(self):
        parser = build_parser()
        for name in ("table1", "table2", "table3", "table4"):
            args = parser.parse_args([name])
            assert args.artifact == name

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_accept_seed(self):
        parser = build_parser()
        args = parser.parse_args(["fig16", "--fast", "--seed", "3"])
        assert args.seed == 3
        # Omitting --seed keeps the artifact's hardcoded default.
        assert parser.parse_args(["fig16"]).seed is None

    def test_scenario_registered(self):
        args = build_parser().parse_args(
            ["scenario", "--fast", "--seed", "7", "--workers", "2"]
        )
        assert args.seed == 7
        assert args.workers == 2


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "table3" in out
        assert "fingerprint" in out

    def test_fast_figure(self, capsys):
        assert main(["fig02"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "cloud=A" in out

    def test_fast_simulation_figure(self, capsys):
        assert main(["fig14", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "nrmse" in out

    def test_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NSDI" in out

    def test_fingerprint(self, capsys):
        assert main(["fingerprint", "c5.xlarge"]) == 0
        out = capsys.readouterr().out
        assert "token bucket" in out
        assert "base bandwidth" in out

    def test_fingerprint_unknown_instance(self, capsys):
        assert main(["fingerprint", "z9.mega"]) == 2
        assert "error" in capsys.readouterr().err

    def test_seed_changes_stochastic_artifact(self, capsys):
        assert main(["fig12", "--seed", "0"]) == 0
        base = capsys.readouterr().out
        assert main(["fig12", "--seed", "0"]) == 0
        assert capsys.readouterr().out == base
        assert main(["fig12", "--seed", "5"]) == 0
        assert capsys.readouterr().out != base

    def test_seed_ignored_on_deterministic_artifact(self, capsys):
        assert main(["fig02", "--seed", "5"]) == 0
        captured = capsys.readouterr()
        assert "cloud=A" in captured.out
        assert "--seed ignored" in captured.err

    def test_scenario_fast(self, capsys, tmp_path):
        repo = str(tmp_path / "cells")
        argv = ["scenario", "--fast", "--seed", "7",
                "--providers", "amazon", "--arrival-rates", "2.0",
                "--repo", repo]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "scenario sweep" in first
        assert "computed=2 cached=0" in first
        # Re-running against the same repository hits the cache for
        # every cell and reproduces the rows byte for byte.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "computed=0 cached=2" in second
        assert second.replace("computed=0 cached=2", "computed=2 cached=0") == first

    def test_scenario_bad_provider(self, capsys):
        assert main(["scenario", "--fast", "--providers", "clowncloud"]) == 2
        assert "error" in capsys.readouterr().err
