"""Tests for the serving workload over the event core."""

import numpy as np
import pytest

from repro.netmodel import ConstantRateModel
from repro.serving.arrivals import poisson_process
from repro.serving.slo import SloPolicy
from repro.serving.state import ServingState, serve
from repro.serving.topology import ServiceTopology
from repro.simulator import Cluster, NodeSpec, SparkEngine


def make_engine(seed=0, n_nodes=4, rate_gbps=10.0):
    cluster = Cluster(
        n_nodes=n_nodes,
        node_spec=NodeSpec(),
        link_model_factory=lambda node: ConstantRateModel(rate_gbps),
    )
    return SparkEngine(cluster, rng=np.random.default_rng(seed))


def open_loop(seed=0, rate_rps=10.0, duration_s=20.0, **kwargs):
    engine = make_engine(seed)
    arrivals = poisson_process(engine.rng, rate_rps, duration_s)
    return serve(
        engine,
        ServiceTopology.three_tier(),
        duration_s=duration_s,
        arrivals=arrivals,
        **kwargs,
    )


def snapshot(result):
    return {
        "n_requests": result.n_requests,
        "n_completed": result.n_completed,
        "makespan": result.makespan_s,
        "latency": result.latency,
        "windows": result.windows,
        "n_steps": result.n_steps,
        "samples": result.sample_times.tolist(),
        "egress": result.egress_rates.tolist(),
    }


class TestOpenLoop:
    def test_request_conservation(self):
        result = open_loop()
        assert result.n_requests > 0
        assert result.n_completed == result.n_requests
        assert result.latency["count"] == float(result.n_completed)

    def test_deterministic(self):
        assert snapshot(open_loop(seed=3)) == snapshot(open_loop(seed=3))

    def test_latencies_positive_and_max_bounds_mean(self):
        result = open_loop()
        assert 0.0 < result.latency["mean_s"] <= result.latency["max_s"]
        assert result.latency["sum_s"] == pytest.approx(
            result.latency["mean_s"] * result.n_completed
        )

    def test_drain_can_exceed_duration(self):
        # In-flight requests finish after arrivals stop; the makespan
        # is when the last one drains, never before the last arrival.
        result = open_loop(rate_rps=30.0, duration_s=10.0)
        assert result.makespan_s > 0.0
        assert result.n_completed == result.n_requests

    def test_slo_gate_rides_the_run(self):
        result = open_loop(
            slo_policy=SloPolicy(p99_ms=0.001, window_s=5.0, min_count=1)
        )
        # A microsecond target is unmeetable: every window violates.
        assert result.slo is not None
        assert not result.slo.passed
        assert result.slo_violations > 0
        no_gate = open_loop()
        assert no_gate.slo is None
        assert no_gate.slo_violations == 0


class TestClosedLoop:
    def test_users_cycle_until_duration(self):
        engine = make_engine()
        result = serve(
            engine,
            ServiceTopology.line(2),
            duration_s=10.0,
            users=3,
            think_s=1.0,
        )
        # Each user re-issues roughly every think+service interval;
        # 3 users over 10 s must produce well over one request each.
        assert result.n_requests > 9
        assert result.n_completed == result.n_requests

    def test_more_users_more_requests(self):
        def run(users):
            return serve(
                make_engine(),
                ServiceTopology.line(2),
                duration_s=10.0,
                users=users,
                think_s=1.0,
            ).n_requests

        assert run(6) > run(2)

    def test_mixed_load(self):
        engine = make_engine()
        arrivals = poisson_process(engine.rng, 5.0, 10.0)
        result = serve(
            engine,
            ServiceTopology.line(2),
            duration_s=10.0,
            arrivals=arrivals,
            users=2,
            think_s=2.0,
        )
        assert result.n_completed == result.n_requests > 0


class TestPlacementAndFlows:
    def test_colocated_line_uses_no_fabric(self):
        # A 1-service "tree" never leaves its node: zero egress.
        engine = make_engine()
        arrivals = poisson_process(engine.rng, 10.0, 10.0)
        result = serve(
            engine,
            ServiceTopology.line(1),
            duration_s=10.0,
            arrivals=arrivals,
        )
        assert float(result.egress_rates.sum()) == 0.0

    def test_remote_calls_move_payload(self):
        result = open_loop()
        assert float(result.egress_rates.max()) > 0.0

    def test_payload_scale_inflates_latency(self):
        light = open_loop(seed=5, payload_scale=1.0)
        heavy = open_loop(seed=5, payload_scale=50.0)
        assert heavy.latency["mean_s"] > light.latency["mean_s"]


class TestValidation:
    def test_rejects_bad_parameters(self):
        engine = make_engine()
        topo = ServiceTopology.line(2)
        with pytest.raises(ValueError, match="duration"):
            ServingState(engine, topo, engine.cluster.build_fabric(),
                         duration_s=0.0, users=1)
        with pytest.raises(ValueError, match="negative"):
            ServingState(engine, topo, engine.cluster.build_fabric(),
                         duration_s=1.0, users=-1)
        with pytest.raises(ValueError, match="payload_scale"):
            ServingState(engine, topo, engine.cluster.build_fabric(),
                         duration_s=1.0, users=1, payload_scale=0.0)

    def test_rejects_loadless_run(self):
        engine = make_engine()
        with pytest.raises(ValueError, match="load"):
            ServingState(
                engine,
                ServiceTopology.line(2),
                engine.cluster.build_fabric(),
                duration_s=1.0,
            )
