"""Tests for serving campaign cells: hashing, codec, executors, SLOs.

Ends with the PR's acceptance pin: at the seeded operating point, the
resampling HPC-cloud fabric reproducibly fails the p99 SLO while the
constant-rate fabric at the same class-median capacity passes.
"""

import dataclasses

import pytest

from repro.measurement.repository import TraceRepository
from repro.serving.scenario import (
    SERVING_DEFAULT_INSTANCES,
    ServingCampaign,
    ServingConfig,
    chain_serving,
    decode_serving_result,
    encode_serving_result,
    run_serving,
    run_servings_batched,
    serving_batch_executor,
    serving_cells,
    serving_matrix,
)

FAST = dict(n_nodes=4, rate_rps=10.0, duration_s=10.0, slo_window_s=5.0)


def cell_snapshot(result):
    return {
        "n_requests": result.n_requests,
        "n_completed": result.n_completed,
        "makespan": result.makespan_s,
        "latency": result.latency,
        "windows": result.windows,
        "slo": None if result.slo is None else result.slo.to_dict(),
        "fabric": result.fabric_state,
    }


class TestServingConfig:
    def test_id_is_stable_and_content_addressed(self):
        a = ServingConfig(seed=1, **FAST)
        b = ServingConfig(seed=1, **FAST)
        assert a.serving_id == b.serving_id
        assert a.serving_id.startswith("srv-")
        assert a.serving_id != ServingConfig(seed=2, **FAST).serving_id

    def test_predecessor_none_hashes_like_legacy(self):
        # Fresh cells hash without the predecessor key, so adding the
        # chaining feature never invalidated existing caches.
        fresh = ServingConfig(seed=1, **FAST)
        chained = dataclasses.replace(
            fresh, predecessor=fresh.serving_id
        )
        assert chained.serving_id != fresh.serving_id

    def test_validation(self):
        with pytest.raises(ValueError, match="arrival"):
            ServingConfig(arrival="nope")
        with pytest.raises(ValueError, match="topology"):
            ServingConfig(topology="ring")
        with pytest.raises(ValueError, match="n_nodes"):
            ServingConfig(n_nodes=1)
        with pytest.raises(ValueError, match="load"):
            ServingConfig(rate_rps=0.0, users=0)
        with pytest.raises(ValueError, match="predecessor"):
            ServingConfig(predecessor="scn-123")

    def test_slo_policy_disabled_when_all_targets_zero(self):
        config = ServingConfig(
            slo_p50_ms=0.0, slo_p99_ms=0.0, slo_p999_ms=0.0
        )
        assert config.slo_policy() is None
        assert ServingConfig(slo_p99_ms=250.0).slo_policy() is not None

    def test_build_topology_shapes(self):
        assert ServingConfig(topology="line", depth=4).build_topology(
        ).calls_per_request() == 4
        assert ServingConfig(
            topology="fanout", breadth=2, depth=2
        ).build_topology().calls_per_request() == 7
        assert ServingConfig().build_topology().entry == "frontend"


class TestMatrix:
    def test_matrix_covers_the_cross_product(self):
        configs = serving_matrix(
            providers=("hpccloud", "fixed"),
            arrivals=("poisson", "flash"),
            rates_rps=(10.0, 20.0),
            n_nodes=4,
            duration_s=10.0,
        )
        assert len(configs) == 8
        assert len({c.serving_id for c in configs}) == 8
        assert {c.instance_name for c in configs} == {
            SERVING_DEFAULT_INSTANCES["hpccloud"],
            SERVING_DEFAULT_INSTANCES["fixed"],
        }

    def test_axis_extension_keeps_existing_cell_seeds(self):
        # Seeds derive from axis values, not position: growing an axis
        # must never change a pre-existing cell's cache key.
        small = serving_matrix(
            providers=("hpccloud",), rates_rps=(10.0,), n_nodes=4
        )
        grown = serving_matrix(
            providers=("hpccloud", "fixed"),
            rates_rps=(10.0, 30.0),
            n_nodes=4,
        )
        grown_ids = {c.serving_id for c in grown}
        assert all(c.serving_id in grown_ids for c in small)

    def test_chained_matrix(self):
        configs = serving_matrix(
            providers=("fixed",),
            arrivals=("poisson",),
            n_nodes=4,
            chain_length=3,
        )
        assert len(configs) == 3
        assert configs[0].predecessor is None
        assert configs[1].predecessor == configs[0].serving_id
        assert configs[2].predecessor == configs[1].serving_id

    def test_chain_validation(self):
        with pytest.raises(ValueError):
            chain_serving(ServingConfig(**FAST), 0)
        with pytest.raises(ValueError):
            serving_matrix(chain_length=0)


class TestExecutionPaths:
    def test_batched_matches_serial_bit_for_bit(self):
        configs = [
            ServingConfig(provider_name="hpccloud",
                          instance_name="hpccloud-8core", seed=7, **FAST),
            ServingConfig(provider_name="hpccloud",
                          instance_name="hpccloud-8core", seed=8, **FAST),
            ServingConfig(provider_name="fixed",
                          instance_name="fixed-9gbps", seed=9, **FAST),
        ]
        serial = [cell_snapshot(run_serving(c)) for c in configs]
        batched = [
            cell_snapshot(r) for r in run_servings_batched(configs)
        ]
        assert batched == serial

    def test_chained_cells_resume_from_fabric_state(self):
        base = ServingConfig(
            provider_name="hpccloud", instance_name="hpccloud-8core",
            seed=11, **FAST,
        )
        first, second = chain_serving(base, 2)
        upstream = run_serving(first)
        chained = run_serving(second, upstream=upstream)
        assert chained.n_completed == chained.n_requests
        # Chain guards: missing upstream, provider mismatch, node count.
        with pytest.raises(ValueError, match="no upstream"):
            run_serving(second)
        mismatched = dataclasses.replace(
            second, provider_name="fixed", instance_name="fixed-9gbps"
        )
        with pytest.raises(ValueError, match="provider"):
            run_serving(mismatched, upstream=upstream)

    def test_campaign_caches_cells(self, tmp_path):
        repo = TraceRepository(tmp_path)
        configs = serving_matrix(
            providers=("fixed",),
            arrivals=("poisson",),
            rates_rps=(10.0,),
            n_nodes=4,
            duration_s=10.0,
            slo_window_s=5.0,
        )
        first = ServingCampaign(configs, repository=repo).run()
        assert all(not r.cached for r in first.values())
        second = ServingCampaign(configs, repository=repo).run()
        assert all(r.cached for r in second.values())
        for sid, a in first.items():
            b = second[sid]
            assert a.aggregate_row() == b.aggregate_row()
            assert a.windows == b.windows
            assert a.fabric_state == b.fabric_state

    def test_batch_executor_campaign_matches_serial(self):
        configs = serving_matrix(
            providers=("fixed", "hpccloud"),
            arrivals=("poisson",),
            rates_rps=(10.0,),
            n_nodes=4,
            duration_s=10.0,
        )
        serial = ServingCampaign(configs).run()
        batched = ServingCampaign(
            configs, executor=serving_batch_executor(batch_size=2)
        ).run()
        assert serial.keys() == batched.keys()
        for sid, a in serial.items():
            assert cell_snapshot(a) == cell_snapshot(batched[sid])

    def test_duplicate_configs_rejected(self):
        config = ServingConfig(**FAST)
        with pytest.raises(ValueError, match="duplicate"):
            ServingCampaign([config, config])


class TestCodec:
    def test_encode_decode_round_trip(self):
        config = ServingConfig(
            provider_name="fixed", instance_name="fixed-9gbps",
            seed=21, **FAST,
        )
        result = run_serving(config)
        documents, arrays = encode_serving_result(result)
        assert arrays == {}
        assert "fabric" in documents
        [cell] = serving_cells([config])
        clone = decode_serving_result(cell, documents)
        assert clone.cached
        assert clone.config == config
        assert clone.n_requests == result.n_requests
        assert clone.latency == result.latency
        assert clone.windows == result.windows
        assert clone.slo == result.slo
        assert clone.fabric_state == result.fabric_state
        assert clone.aggregate_row() == result.aggregate_row()

    def test_telemetry_stays_out_of_the_store(self):
        config = ServingConfig(
            provider_name="fixed", instance_name="fixed-9gbps",
            seed=22, **FAST,
        )
        documents, _ = encode_serving_result(run_serving(config))
        assert "n_steps" not in documents["serving"]


class TestAcceptance:
    """The PR's headline claim, pinned at the seeded operating point."""

    def leg(self, provider, instance):
        return run_serving(
            ServingConfig(
                provider_name=provider,
                instance_name=instance,
                n_nodes=4,
                topology="three_tier",
                arrival="flash",
                rate_rps=90.0,
                duration_s=60.0,
                slo_p99_ms=500.0,
                slo_window_s=10.0,
                seed=1,
            )
        )

    def test_variability_alone_breaks_the_slo(self):
        variable = self.leg("hpccloud", "hpccloud-8core")
        fixed = self.leg("fixed", "fixed-9gbps")
        # Same arrivals, same compute noise, same class-median mean
        # capacity: only the resampling fabric violates.
        assert variable.slo_violations >= 1
        assert not variable.slo.passed
        assert fixed.slo_violations == 0
        assert fixed.slo.passed
        # And the violation is *reproducible*: the same cell re-run
        # lands on identical windows and verdicts.
        again = self.leg("hpccloud", "hpccloud-8core")
        assert cell_snapshot(again) == cell_snapshot(variable)
