"""Tests for SLO policies, reports, and their metric/store forms."""

import math

import pytest

from repro.obs import MetricsRegistry, parse_prometheus_text
from repro.serving.slo import SloPolicy, SloReport, SloViolation


def window(start, count, **quantiles):
    return {"window_start": start, "count": float(count), **quantiles}


class TestSloPolicy:
    def test_targets_skip_disabled_quantiles(self):
        policy = SloPolicy(p99_ms=250.0)
        assert policy.targets() == {"p99": 0.25}
        full = SloPolicy(p50_ms=50.0, p99_ms=250.0, p999_ms=900.0)
        assert set(full.targets()) == {"p50", "p99", "p999"}

    def test_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(p99_ms=-1.0)
        with pytest.raises(ValueError):
            SloPolicy(window_s=0.0)
        with pytest.raises(ValueError):
            SloPolicy(min_count=0)

    def test_evaluate_flags_only_over_target_windows(self):
        policy = SloPolicy(p99_ms=100.0, window_s=10.0, min_count=1)
        report = policy.evaluate(
            [
                window(0.0, 20, p99=0.05),
                window(10.0, 20, p99=0.15),
                window(20.0, 20, p99=0.09),
            ]
        )
        assert not report.passed
        assert report.n_windows == 3
        assert report.n_evaluated == 3
        [violation] = report.violations
        assert violation.window_start == 10.0
        assert violation.quantile == "p99"
        assert violation.excess_ratio == pytest.approx(1.5)
        assert report.worst["p99"] == 0.15

    def test_min_count_skips_thin_windows(self):
        # A one-request window's p99 is noise, not a violation.
        policy = SloPolicy(p99_ms=100.0, min_count=5)
        report = policy.evaluate(
            [window(0.0, 1, p99=9.0), window(10.0, 5, p99=0.05)]
        )
        assert report.passed
        assert report.n_windows == 2
        assert report.n_evaluated == 1

    def test_nan_and_missing_quantiles_skipped(self):
        policy = SloPolicy(p99_ms=100.0, p999_ms=200.0, min_count=1)
        report = policy.evaluate(
            [window(0.0, 10, p99=math.nan), window(10.0, 10, p99=0.05)]
        )
        assert report.passed
        assert report.worst["p99"] == 0.05
        assert math.isnan(report.worst["p999"])

    def test_multiple_quantiles_violate_one_window(self):
        policy = SloPolicy(p50_ms=10.0, p99_ms=50.0, min_count=1)
        report = policy.evaluate([window(0.0, 10, p50=0.02, p99=0.08)])
        assert len(report.violations) == 2
        assert report.n_violation_windows == 1
        assert len(report.violations_for("p50")) == 1

    def test_policy_round_trip(self):
        policy = SloPolicy(p50_ms=10.0, p99_ms=250.0, window_s=15.0, min_count=3)
        assert SloPolicy.from_dict(policy.to_dict()) == policy


class TestSloReport:
    def make_report(self):
        policy = SloPolicy(p99_ms=100.0, p999_ms=500.0, min_count=1)
        return policy.evaluate(
            [
                window(0.0, 10, p99=0.05, p999=0.2),
                window(10.0, 10, p99=0.12, p999=0.3),
            ]
        )

    def test_verdict_rows(self):
        rows = self.make_report().verdict_rows()
        by_quantile = {row["quantile"]: row for row in rows}
        assert by_quantile["p99"]["status"] == "FAIL"
        assert by_quantile["p99"]["violations"] == 1
        assert by_quantile["p99"]["worst_ms"] == 120.0
        assert by_quantile["p999"]["status"] == "PASS"
        assert by_quantile["p999"]["target_ms"] == 500.0

    def test_verdict_rows_unobserved_worst_is_none(self):
        policy = SloPolicy(p99_ms=100.0, min_count=1)
        [row] = policy.evaluate([]).verdict_rows()
        assert row["worst_ms"] is None

    def test_report_round_trip(self):
        report = self.make_report()
        clone = SloReport.from_dict(report.to_dict())
        assert clone.policy == report.policy
        assert clone.violations == report.violations
        assert clone.n_windows == report.n_windows
        assert clone.n_evaluated == report.n_evaluated
        assert clone.worst == report.worst

    def test_round_trip_preserves_nan_worst_as_null(self):
        policy = SloPolicy(p99_ms=100.0, min_count=1)
        report = policy.evaluate([])
        payload = report.to_dict()
        assert payload["worst"]["p99"] is None
        assert math.isnan(SloReport.from_dict(payload).worst["p99"])

    def test_to_metrics_renders_and_parses(self):
        registry = MetricsRegistry()
        self.make_report().to_metrics(registry)
        samples = parse_prometheus_text(registry.render_prometheus())
        assert samples[("repro_slo_pass", ())] == 0.0
        assert samples[
            ("repro_slo_target_seconds", (("quantile", "p99"),))
        ] == pytest.approx(0.1)
        assert samples[
            ("repro_slo_violation_windows", (("quantile", "p99"),))
        ] == 1.0
        assert samples[
            ("repro_slo_worst_seconds", (("quantile", "p999"),))
        ] == pytest.approx(0.3)
        assert samples[("repro_slo_windows_total", ())] == 2.0

    def test_passing_report_metrics(self):
        policy = SloPolicy(p99_ms=1000.0, min_count=1)
        registry = MetricsRegistry()
        policy.evaluate([window(0.0, 10, p99=0.1)]).to_metrics(registry)
        samples = parse_prometheus_text(registry.render_prometheus())
        assert samples[("repro_slo_pass", ())] == 1.0


class TestSloViolation:
    def test_round_trip(self):
        violation = SloViolation(
            window_start=30.0, quantile="p99", observed_s=0.4, target_s=0.25
        )
        assert SloViolation.from_dict(violation.to_dict()) == violation
        assert violation.excess_ratio == pytest.approx(1.6)
