"""Tests for microservice call-tree topologies."""

import pytest

from repro.serving.topology import ServiceSpec, ServiceTopology


class TestServiceSpec:
    def test_defaults_normalize_to_float(self):
        spec = ServiceSpec(name="svc", compute_ms=2)
        assert isinstance(spec.compute_ms, float)
        assert spec.children == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceSpec(name="")
        with pytest.raises(ValueError):
            ServiceSpec(name="s", compute_ms=-1.0)
        with pytest.raises(ValueError):
            ServiceSpec(name="s", compute_cov=-0.1)
        with pytest.raises(ValueError):
            ServiceSpec(name="s", request_gbit=-0.1)
        with pytest.raises(ValueError):
            ServiceSpec(name="s", response_gbit=-0.1)


class TestTopologyValidation:
    def test_duplicate_service_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ServiceTopology(
                [ServiceSpec(name="a"), ServiceSpec(name="a")], entry="a"
            )

    def test_unknown_entry_rejected(self):
        with pytest.raises(ValueError, match="entry"):
            ServiceTopology([ServiceSpec(name="a")], entry="missing")

    def test_undefined_child_rejected(self):
        with pytest.raises(ValueError, match="undefined"):
            ServiceTopology(
                [ServiceSpec(name="a", children=("ghost",))], entry="a"
            )

    def test_call_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            ServiceTopology(
                [
                    ServiceSpec(name="a", children=("b",)),
                    ServiceSpec(name="b", children=("a",)),
                ],
                entry="a",
            )

    def test_self_call_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            ServiceTopology(
                [ServiceSpec(name="a", children=("a",))], entry="a"
            )

    def test_diamond_is_acyclic(self):
        # a -> {b, c} -> d: d reachable twice is sharing, not a cycle.
        topo = ServiceTopology(
            [
                ServiceSpec(name="a", children=("b", "c")),
                ServiceSpec(name="b", children=("d",)),
                ServiceSpec(name="c", children=("d",)),
                ServiceSpec(name="d"),
            ],
            entry="a",
        )
        # Multiplicity counts: d is called once per path.
        assert topo.calls_per_request() == 5


class TestStockShapes:
    def test_line(self):
        topo = ServiceTopology.line(depth=4)
        assert topo.names == ("svc0", "svc1", "svc2", "svc3")
        assert topo.entry == "svc0"
        assert topo.spec("svc3").children == ()
        assert topo.calls_per_request() == 4
        with pytest.raises(ValueError):
            ServiceTopology.line(depth=0)

    def test_fanout(self):
        topo = ServiceTopology.fanout(breadth=2, depth=2)
        assert len(topo.names) == 7  # 1 + 2 + 4
        assert topo.calls_per_request() == 7
        assert topo.entry == "svc-0-0"
        # Root first in service order (placement staggering contract).
        assert topo.names[0] == topo.entry
        with pytest.raises(ValueError):
            ServiceTopology.fanout(breadth=0)

    def test_three_tier(self):
        topo = ServiceTopology.three_tier()
        assert topo.entry == "frontend"
        assert topo.calls_per_request() == 5
        assert topo.spec("api").children == ("db", "cache")

    def test_overrides_apply_to_every_service(self):
        topo = ServiceTopology.line(depth=2, compute_ms=7.5)
        assert all(
            spec.compute_ms == 7.5 for spec in topo.services.values()
        )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "topo",
        [
            ServiceTopology.line(3),
            ServiceTopology.fanout(3, 2),
            ServiceTopology.three_tier(compute_ms=4.0),
        ],
    )
    def test_dict_round_trip(self, topo):
        clone = ServiceTopology.from_dict(topo.to_dict())
        assert clone.entry == topo.entry
        assert clone.names == topo.names
        for name in topo.names:
            assert clone.spec(name) == topo.spec(name)

    def test_round_trip_is_json_compatible(self):
        import json

        topo = ServiceTopology.three_tier()
        wire = json.loads(json.dumps(topo.to_dict()))
        assert ServiceTopology.from_dict(wire).names == topo.names
