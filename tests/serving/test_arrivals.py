"""Tests for the lazy open-loop arrival processes."""

import numpy as np
import pytest

from repro.serving.arrivals import (
    diurnal_process,
    flash_crowd_process,
    poisson_process,
)


class TestPoissonProcess:
    def test_first_arrival_after_a_gap(self):
        # Serving convention: a cold service's first request lands at a
        # random instant, not t=0 (unlike the eager job-stream form).
        times = list(poisson_process(np.random.default_rng(0), 5.0, 100.0))
        assert times[0] > 0.0

    def test_sorted_and_bounded(self):
        times = list(poisson_process(np.random.default_rng(1), 8.0, 50.0))
        assert times == sorted(times)
        assert all(0.0 < t < 50.0 for t in times)

    def test_rate_matches(self):
        times = list(
            poisson_process(np.random.default_rng(2), 20.0, 500.0)
        )
        assert len(times) / 500.0 == pytest.approx(20.0, rel=0.1)

    def test_same_seed_same_stream(self):
        a = list(poisson_process(np.random.default_rng(3), 5.0, 60.0))
        b = list(poisson_process(np.random.default_rng(3), 5.0, 60.0))
        assert a == b

    def test_lazy_generation(self):
        # Building the generator draws nothing from the RNG.
        rng = np.random.default_rng(4)
        before = rng.bit_generator.state
        gen = poisson_process(rng, 5.0, 60.0)
        assert rng.bit_generator.state == before
        next(gen)
        assert rng.bit_generator.state != before

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            next(poisson_process(rng, 0.0, 10.0))
        with pytest.raises(ValueError):
            next(poisson_process(rng, 1.0, 0.0))


class TestDiurnalProcess:
    def test_peak_half_period_denser_than_trough(self):
        # sin² crests at period/2: the middle half-period must carry
        # clearly more arrivals than the trough-centred edges.
        period = 200.0
        times = np.array(
            list(
                diurnal_process(
                    np.random.default_rng(5),
                    base_rps=2.0,
                    peak_rps=20.0,
                    period_s=period,
                    duration_s=period,
                )
            )
        )
        mid = np.sum((times > period * 0.25) & (times < period * 0.75))
        edges = times.size - mid
        assert mid > 1.5 * edges

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            next(diurnal_process(rng, 0.0, 5.0, 60.0, 60.0))
        with pytest.raises(ValueError):
            next(diurnal_process(rng, 5.0, 4.0, 60.0, 60.0))
        with pytest.raises(ValueError):
            next(diurnal_process(rng, 1.0, 5.0, 0.0, 60.0))


class TestFlashCrowdProcess:
    def test_spike_window_is_denser(self):
        times = np.array(
            list(
                flash_crowd_process(
                    np.random.default_rng(6),
                    base_rps=4.0,
                    spike_rps=40.0,
                    spike_start_s=100.0,
                    spike_len_s=50.0,
                    duration_s=250.0,
                )
            )
        )
        in_spike = np.sum((times >= 100.0) & (times < 150.0))
        spike_rate = in_spike / 50.0
        base_rate = (times.size - in_spike) / 200.0
        assert spike_rate == pytest.approx(40.0, rel=0.25)
        assert base_rate == pytest.approx(4.0, rel=0.35)

    def test_thinning_preserves_determinism(self):
        def run():
            return list(
                flash_crowd_process(
                    np.random.default_rng(7), 2.0, 10.0, 5.0, 5.0, 30.0
                )
            )

        assert run() == run()

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            next(flash_crowd_process(rng, 0.0, 5.0, 1.0, 1.0, 10.0))
        with pytest.raises(ValueError):
            next(flash_crowd_process(rng, 5.0, 4.0, 1.0, 1.0, 10.0))
        with pytest.raises(ValueError):
            next(flash_crowd_process(rng, 1.0, 5.0, -1.0, 1.0, 10.0))
        with pytest.raises(ValueError):
            next(flash_crowd_process(rng, 1.0, 5.0, 1.0, 0.0, 10.0))
