"""Post-mortem of a token-bucket-induced straggler (finding F4.3).

A TPC-DS stream runs on a healthy-looking 12-node cluster and one node
keeps falling behind.  This example reproduces the Figure 18 scenario
and then *diagnoses* it from telemetry the way an operator would:
per-node throttled time, budget floors, and the oscillation signature
that distinguishes shaper throttling from plain slow hardware.

Run with:  python examples/straggler_postmortem.py
"""

import numpy as np

from repro.paper import fig18


def main() -> None:
    result = fig18.reproduce(
        budget_gbit=2_500.0, stream_repeats=3, skewed_node=4, skew_factor=2.0
    )

    print("per-node telemetry after the TPC-DS stream:\n")
    print(f"{'node':>4} {'min budget (Gbit)':>18} {'throttled %':>12}  verdict")
    for row in result.rows():
        print(
            f"{row['node']:>4} {row['min_budget_gbit']:>18} "
            f"{row['throttled_pct']:>12}  {row['role']}"
        )

    stragglers = result.straggler_nodes
    if not stragglers:
        print("\nno straggler found")
        return

    node = stragglers[0]
    bandwidth = result.bandwidth[node]
    print(f"\nnode {node} diagnosis:")
    print(f"  budget floor: {result.budget[node].values.min():.1f} Gbit")
    print(
        "  bandwidth oscillates between QoS levels: "
        f"{result.straggler_oscillates()}"
    )
    active = bandwidth.values[bandwidth.values > 0.05]
    if active.size:
        print(f"  transmit-time mean rate: {active.mean():.1f} Gbps "
              f"(healthy peers sustain ~10)")
    print(
        "\nverdict: the node's *token budget* depleted — it holds "
        "more shuffle data than its peers (scheduling imbalance), so its "
        "egress outruns the replenish rate. Resting the cluster or "
        "rebalancing data fixes it; replacing the 'slow' machine will not."
    )


if __name__ == "__main__":
    main()
