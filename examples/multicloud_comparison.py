"""Multi-cloud sensitivity analysis (finding F5.1).

"Network-heavy experiments run on different clouds cannot be directly
compared" — but running the same system on multiple clouds is a good
*sensitivity analysis*.  This example runs the same TPC-DS query with
the same inputs on three emulated clouds and reports how much of the
performance spread is the platform's doing.

Run with:  python examples/multicloud_comparison.py
"""

import numpy as np

from repro.core.analysis import analyze_sample
from repro.core.runner import SimulatorExperiment
from repro.paper._common import gce_cluster, hpccloud_cluster, token_bucket_cluster
from repro.workloads import tpcds_job

REPETITIONS = 15


def run_on(cluster_name: str, cluster, budget=None) -> np.ndarray:
    experiment = SimulatorExperiment(
        cluster,
        tpcds_job(68, n_nodes=12, slots=4),
        rng=np.random.default_rng(42),
        budget_gbit=budget,
    )
    samples = np.empty(REPETITIONS)
    for i in range(REPETITIONS):
        if i > 0:
            experiment.reset()
        samples[i] = experiment.measure()
    return samples


def main() -> None:
    clusters = {
        "amazon-ec2 (fresh buckets)": (token_bucket_cluster(5_400.0), 5_400.0),
        "amazon-ec2 (depleted)": (token_bucket_cluster(10.0), 10.0),
        "google-cloud": (gce_cluster(cores=8), None),
        "hpccloud": (hpccloud_cluster(cores=8), None),
    }
    print("TPC-DS Q68, identical inputs, four platform conditions")
    print(f"{REPETITIONS} fresh-VM repetitions each\n")

    medians = {}
    for name, (cluster, budget) in clusters.items():
        samples = run_on(name, cluster, budget)
        report = analyze_sample(samples)
        medians[name] = report.dispersion.median
        ci = report.ci
        ci_text = f"[{ci.low:.1f}, {ci.high:.1f}]" if ci else "n/a"
        print(
            f"{name:28s} median {report.dispersion.median:6.1f} s  "
            f"95% CI {ci_text}  CoV {report.dispersion.cov:.1%}"
        )

    spread = max(medians.values()) / min(medians.values())
    print(
        f"\nCross-platform spread: {spread:.2f}x on identical code and data."
        "\nConclusion (F5.1): absolute numbers from different clouds are not"
        "\ncomparable; report the platform and its fingerprint with results."
    )


if __name__ == "__main__":
    main()
