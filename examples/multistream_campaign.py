"""Batched multi-stream execution: many cells, one super-fleet.

A campaign matrix is hundreds of *independent* small simulations, and
for small cells the serial cost of each event step is dominated by
numpy ufunc dispatch on tiny arrays — above all the shaper fleet's
``horizons``/``advance`` pair, paid per cell per step.
``repro.simulator.multistream.run_streams`` amortizes that dispatch:
it concatenates every cell's shaper fleet into one super-fleet and
advances all live cells in lockstep rounds with a single batched
fleet call pair per round, while each cell still steps by its own
event horizon.  Per-cell arithmetic, RNG draws, and event order are
untouched, so results are byte-identical to serial ``run_stream``
calls — the identity this example asserts before printing a speedup.

Two entry points are shown:

1. the raw runner — build ``StreamTask``s, call ``run_streams``;
2. the campaign form — ``ScenarioCampaign(configs,
   executor=batch_executor())`` runs a whole cached scenario matrix
   through the same machinery (chained cells fall back to serial).

Run with:  python examples/multistream_campaign.py
"""

import time

import numpy as np

from repro.bench.hotpath import _MS_BUCKET
from repro.netmodel import TokenBucketModel
from repro.scenarios.generate import job_stream, poisson_arrivals
from repro.scenarios.orchestrate import (
    ScenarioCampaign,
    ScenarioConfig,
    batch_executor,
)
from repro.simulator import Cluster, NodeSpec, SparkEngine
from repro.simulator.multistream import StreamTask, run_streams

N_CELLS = 16


def build_cells():
    """Small shaper-transition-heavy cells: the batching sweet spot."""
    cells = []
    for i in range(N_CELLS):
        rng = np.random.default_rng(100 + i)
        cluster = Cluster(
            n_nodes=2,
            node_spec=NodeSpec(slots=1),
            link_model_factory=lambda node: TokenBucketModel(_MS_BUCKET),
        )
        times = poisson_arrivals(rng, rate_per_min=4.0, n_jobs=2)
        stream = job_stream(rng, times, n_nodes=2, slots=1, data_scale=5.0)
        engine = SparkEngine(cluster, rng=rng, sample_interval_s=600.0)
        cells.append((engine, list(stream)))
    return cells


def raw_runner() -> None:
    print(f"-- raw runner: {N_CELLS} cells, serial vs batched --")
    start = time.perf_counter()
    serial = [
        engine.run_stream(stream, scheduler="fair")
        for engine, stream in build_cells()
    ]
    serial_wall = time.perf_counter() - start

    tasks = [
        StreamTask(engine, stream, scheduler="fair")
        for engine, stream in build_cells()
    ]
    start = time.perf_counter()
    batched = run_streams(tasks)
    batch_wall = time.perf_counter() - start

    # Byte-identity is the contract, not an approximation: every
    # runtime array, step count, and makespan must match exactly.
    for a, b in zip(serial, batched):
        assert np.array_equal(a.runtimes(), b.runtimes())
        assert a.n_steps == b.n_steps and a.makespan_s == b.makespan_s
    steps = sum(r.n_steps for r in serial)
    print(f"  serial : {serial_wall:6.2f}s  ({steps} steps)")
    print(f"  batched: {batch_wall:6.2f}s  (byte-identical results)")
    if batch_wall > 0:
        print(f"  speedup: {serial_wall / batch_wall:.2f}x")


def campaign_form() -> None:
    print(f"\n-- campaign form: ScenarioCampaign + batch_executor() --")
    configs = [
        ScenarioConfig(
            n_nodes=2,
            slots=1,
            n_jobs=2,
            arrival_rate_per_min=4.0,
            scheduler="fair",
            data_scale=0.5,
            seed=200 + i,
        )
        for i in range(N_CELLS)
    ]
    serial = ScenarioCampaign(configs).run().results
    batched = (
        ScenarioCampaign(configs, executor=batch_executor()).run().results
    )
    assert serial.keys() == batched.keys()
    for key, a in serial.items():
        b = batched[key]
        assert np.array_equal(a.runtimes, b.runtimes)
        assert a.makespan_s == b.makespan_s
    print(
        f"  {len(batched)} cells batched; per-cell results identical "
        "to the serial campaign"
    )


def main() -> None:
    raw_runner()
    campaign_form()


if __name__ == "__main__":
    main()
