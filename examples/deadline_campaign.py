"""Deadline campaign: scheduler family x warm-fabric chains.

"When should I run my application benchmark?" — scheduling and
arrival-time effects dominate cloud benchmark variability, so this
walkthrough sweeps the *scheduler* axis the way the paper sweeps
providers.  Every cell synthesizes per-job deadlines (slack drawn
relative to each job's ideal service time) and expands into a
two-link warm-fabric chain: link 2 is a different tenant arriving on
the exact shaper state — token budgets, stream ages, RNG positions —
link 1 left behind, the Figure 19 carry-over at campaign scale.  The
sweep table then compares deadline-miss rates and mean slowdown per
scheduler, fresh fabric vs warm.

Run with:  python examples/deadline_campaign.py
"""

import tempfile

from repro.measurement import TraceRepository
from repro.scenarios import ScenarioCampaign, scenario_matrix

SEED = 11
SCHEDULERS = ("fifo", "fair", "preempt", "srpt", "edf")


def main() -> None:
    # 1. Generate: one cell per scheduler, each expanded into a
    #    two-link warm-fabric chain with synthesized deadlines.
    configs = scenario_matrix(
        providers=("amazon",),
        arrival_rates=(4.0,),
        schedulers=SCHEDULERS,
        n_jobs=4,
        n_nodes=4,
        data_scale=0.1,
        seed=SEED,
        deadline_slack=1.5,
        chain_length=2,
    )
    chained = sum(1 for c in configs if c.predecessor is not None)
    print(
        f"deadline campaign: {len(configs)} cells "
        f"({len(configs) - chained} fresh + {chained} chained), seed {SEED}\n"
    )

    # 2. Run: chains execute in dependency order; every executor
    #    (serial, pool, shards) produces byte-identical stores.
    with tempfile.TemporaryDirectory() as cache_dir:
        repository = TraceRepository(cache_dir)
        outcome = ScenarioCampaign(configs, repository=repository).run()

        # 3. Report: the deadline-miss table, fresh vs warm fabric.
        print(f"{'sched':>8s} {'fabric':>7s} {'miss_rate':>9s} "
              f"{'slowdown':>8s} {'mean_s':>8s}")
        for row in sorted(
            outcome.aggregate_rows(),
            key=lambda r: (SCHEDULERS.index(r["scheduler"]), r["chained"]),
        ):
            fabric = "warm" if row["chained"] else "fresh"
            print(
                f"{row['scheduler']:>8s} {fabric:>7s} "
                f"{row['miss_rate']:9.2f} {row['mean_slowdown']:8.2f} "
                f"{row['mean_runtime_s']:8.1f}"
            )

        rerun = ScenarioCampaign(configs, repository=repository).run()
        assert rerun.aggregate_rows() == outcome.aggregate_rows()
        print(
            f"\nre-run cache hits: {len(rerun.cached_ids)}/{len(configs)}"
        )

    rows = outcome.aggregate_rows()

    def mean_of(column, scheduler):
        values = [r[column] for r in rows if r["scheduler"] == scheduler]
        return sum(values) / len(values)

    # Burst arrivals at 4 jobs/min overload the little cluster, and
    # overload is exactly where the scheduler axis discriminates:
    # shortest-remaining-first compresses average slowdown, while
    # EDF's urgency-first ordering keeps feeding slots to jobs that
    # are already doomed (the classic EDF overload collapse).
    print(
        f"mean slowdown: srpt {mean_of('mean_slowdown', 'srpt'):.2f} vs "
        f"fifo {mean_of('mean_slowdown', 'fifo'):.2f} vs "
        f"edf {mean_of('mean_slowdown', 'edf'):.2f}"
    )
    print(
        f"mean miss rate: srpt {mean_of('miss_rate', 'srpt'):.2f} vs "
        f"fifo {mean_of('miss_rate', 'fifo'):.2f} vs "
        f"edf {mean_of('miss_rate', 'edf'):.2f}"
    )
    warm = [r["mean_slowdown"] for r in rows if r["chained"]]
    fresh = [r["mean_slowdown"] for r in rows if not r["chained"]]
    print(
        f"warm-fabric slowdown {sum(warm) / len(warm):.2f} vs fresh "
        f"{sum(fresh) / len(fresh):.2f}: the tenant you follow decides "
        "the network you get"
    )


if __name__ == "__main__":
    main()
