"""Observability tour: metrics, spans, and live campaign status.

The paper's core complaint is experiments that report a single number
with no visibility into *how* it came about.  The `repro.obs` layer
makes every simulated campaign observable the way a production cluster
would be, without perturbing a single bit of the simulation:

1. an :class:`~repro.obs.recorder.ObsRecorder` rides along a
   multi-tenant ``run_stream`` and collects Prometheus-style metrics,
   sliding-window P² latency quantiles, and job/stage/flow spans;
2. the span timeline exports as Chrome trace-event JSON — open it in
   chrome://tracing or https://ui.perfetto.dev like a real distributed
   trace (``--trace-out trace.json``);
3. a sharded campaign reports live progress, throughput, ETA, and
   straggler shards from nothing but the files workers already write
   (``repro campaign status <dir>``).

Run with:  python examples/observability_tour.py [--trace-out trace.json]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.netmodel import TokenBucketModel, TokenBucketParams
from repro.obs import ObsRecorder
from repro.obs.status import campaign_status, render_text
from repro.runtime import run_manifest
from repro.scenarios import ScenarioCampaign, scenario_matrix
from repro.scenarios.generate import job_stream, poisson_arrivals
from repro.simulator import Cluster, NodeSpec, SparkEngine

BUCKET = TokenBucketParams(
    peak_gbps=10.0,
    capped_gbps=1.0,
    replenish_gbps=0.95,
    capacity_gbit=400.0,
    resume_threshold_gbit=40.0,
)


def observed_stream(trace_out: Path | None) -> None:
    """Part 1+2: one instrumented stream and its exports."""
    rng = np.random.default_rng(42)
    cluster = Cluster(
        n_nodes=6,
        node_spec=NodeSpec(slots=4),
        link_model_factory=lambda node: TokenBucketModel(BUCKET),
    )
    times = poisson_arrivals(rng, rate_per_min=3.0, n_jobs=8)
    stream = job_stream(rng, times, n_nodes=6, slots=4, data_scale=0.15)
    recorder = ObsRecorder(scrape_interval_s=5.0, window_s=120.0)
    result = SparkEngine(cluster, rng=rng, sample_interval_s=5.0).run_stream(
        stream, scheduler="fair", recorder=recorder
    )

    print("== observed stream ==")
    print(
        f"makespan {result.makespan_s:.1f}s over {len(result)} jobs, "
        f"{result.n_steps} event steps"
    )
    reg = recorder.registry
    for counter in (
        "repro_sim_jobs_finished_total",
        "repro_sim_tasks_completed_total",
        "repro_sim_flows_opened_total",
    ):
        print(f"  {counter} = {reg.counter(counter).value():.0f}")

    print("\ntask-latency quantiles per 120 s window (P2 streaming):")
    for row in recorder.task_latency.rows():
        print(
            f"  t={row['window_start']:>6.0f}s  n={row['count']:>4.0f}  "
            f"p50={row['p50']:7.2f}s  p99={row['p99']:7.2f}s  "
            f"p999={row['p999']:7.2f}s"
        )

    series = recorder.series()
    flows = series["active_flows"]
    print(
        f"\nscraped {flows.times.size} samples; "
        f"peak active flows {flows.values.max():.0f}, "
        f"peak queued tasks {series['queued_tasks'].values.max():.0f}"
    )

    spans = recorder.tracer
    print(
        f"spans: {len(spans.spans('job'))} jobs, "
        f"{len(spans.spans('stage'))} stages, "
        f"{len(spans.spans('taskgroup'))} task groups, "
        f"{len(spans.spans('flow'))} flows"
    )
    trace = spans.to_chrome_trace()
    print(f"chrome trace: {len(trace['traceEvents'])} events")
    if trace_out is not None:
        spans.write_chrome_trace(trace_out)
        print(f"wrote {trace_out} (open in chrome://tracing or Perfetto)")


def campaign_status_demo() -> None:
    """Part 3: live status of a half-finished sharded campaign."""
    configs = scenario_matrix(
        providers=("amazon",),
        arrival_rates=(1.0, 4.0),
        schedulers=("fifo", "fair"),
        n_jobs=3,
        n_nodes=4,
        data_scale=0.05,
        seed=11,
    )
    campaign = ScenarioCampaign(configs)
    with tempfile.TemporaryDirectory() as tmp:
        shard_dir = Path(tmp) / "shards"
        campaign.shard_manifests(shard_dir, 2)
        # Worker 0 finishes; worker 1 has not started yet — exactly the
        # moment an operator would probe the campaign.
        run_manifest(
            shard_dir / "shard-0.json",
            shard_dir / "shard-0-store",
            echo=None,
        )
        print("\n== campaign status (shard 1 not started) ==")
        print(render_text(campaign_status(shard_dir)))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the span timeline as Chrome trace-event JSON",
    )
    # parse_known_args, not parse_args: the examples smoke test runs
    # this file under runpy with pytest's argv still in sys.argv.
    args, _ = parser.parse_known_args()
    observed_stream(args.trace_out)
    campaign_status_demo()


if __name__ == "__main__":
    main()
