"""Distributed campaign walkthrough: results cross machines, bytes survive.

The paper's multi-month, multi-cloud campaigns cannot live on one
disk: shards run on machines that come and go, and results ride home
over networks that drop, truncate, and corrupt.  PR 8's answer is
:mod:`repro.runtime.remote` — a pluggable :class:`Transport` moves
opaque bytes, and :class:`RemoteStore` layers on digest-keyed delta
transfer, sha256 re-verification of every transferred document, and
bounded deterministic retries, so *the convergence invariant holds
across the wire*: whatever the link does, the merged store is
byte-identical to a serial run, and nothing corrupt ever acquires a
manifest entry.

The walkthrough stages the full operational loop:

1. **generate** — shard a campaign matrix into per-machine manifests;
2. **remote workers** — one ``repro worker --remote`` subprocess per
   shard executes its manifest and pushes each result, as it lands, to
   a per-shard remote store (here a shared directory; in the fleet, a
   mounted bucket or rsync target);
3. **pull** — back on the laptop, ``RemoteStore.pull`` mirrors the
   remote shard stores down, re-hashing every document on the way in;
4. **verify** — ``ArtifactStore.verify()`` audits what landed;
5. **merge** — the mirrors merge into one campaign store whose content
   hash must equal the serial reference;
6. **a hostile wire** — the same pull through a bit-flipping transport
   converges anyway, with the re-fetch visible in the report.

Run with:  python examples/distributed_campaign.py
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

import repro
from repro.runtime import (
    ArtifactStore,
    FaultyTransport,
    LocalDirTransport,
    RemoteStore,
    merge_stores,
    run_manifest,
    write_shard_manifests,
)
from repro.runtime.chaos import demo_codec, demo_matrix

SEED = 23
N_SHARDS = 2


def write_shards(directory: Path, cells) -> list[Path]:
    codec = demo_codec()
    return write_shard_manifests(
        cells, N_SHARDS, directory, codec.encode_ref,
        decode_ref=codec.decode_ref,
    )


def main() -> None:
    # Worker subprocesses must import `repro` from this checkout.
    src_dir = Path(repro.__file__).resolve().parent.parent
    existing = os.environ.get("PYTHONPATH", "")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{src_dir}:{existing}" if existing else str(src_dir)
    )

    cells = demo_matrix(n_chains=4, chain_len=2, seed=SEED)
    print(f"distributed campaign: {len(cells)} cells, {N_SHARDS} shards")

    with tempfile.TemporaryDirectory() as tmp:
        work = Path(tmp)

        # The ground truth: one serial, unperturbed, local run.
        serial_dir = work / "serial"
        write_shards(serial_dir, cells)
        for manifest in sorted(serial_dir.glob("shard-*.json")):
            run_manifest(manifest, serial_dir / "store", echo=None)
        serial_hash = ArtifactStore(serial_dir / "store").content_hash()
        print(f"serial reference hash: {serial_hash[:16]}...\n")

        # -- 1. generate: shard manifests for the fleet -----------------
        shard_dir = work / "shards"
        manifests = write_shards(shard_dir, cells)
        # The "shared remote": one store root per shard.  One writer
        # per remote root — machines never share a remote manifest.
        remote_root = work / "shared-remote"

        # -- 2. remote workers execute and push as cells land -----------
        print("remote workers (one subprocess per machine):")
        for index, manifest in enumerate(manifests):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "worker", str(manifest),
                 "--store", str(work / f"machine-{index}-store"),
                 "--remote", str(remote_root / f"shard-{index}-store"),
                 "--quiet"],
                env=env, capture_output=True, text=True,
            )
            assert proc.returncode == 0, proc.stderr
            sync_line = next(
                line for line in proc.stdout.splitlines()
                if line.startswith("sync ")
            )
            print(f"  machine {index}: {sync_line}")
        print("remote workers done\n")

        # -- 3. pull the remote shard stores down to the laptop ---------
        mirrors = []
        for index in range(N_SHARDS):
            mirror = ArtifactStore(work / f"mirror-{index}")
            report = RemoteStore(
                mirror,
                LocalDirTransport(remote_root / f"shard-{index}-store"),
                echo=None,
            ).pull()
            assert report.ok, report.failed
            print(f"pulled shard {index}: {len(report.pulled)} artifact(s), "
                  f"{report.documents} document(s), "
                  f"refetches={report.refetches}")
            mirrors.append(mirror)

        # -- 4. verify what landed --------------------------------------
        for index, mirror in enumerate(mirrors):
            audit = mirror.verify()
            state = "ok" if audit.ok else "CORRUPT"
            print(f"store verify mirror-{index}: {audit.checked} artifacts, "
                  f"{state}")
            assert audit.ok

        # -- 5. merge and check convergence -----------------------------
        summary = merge_stores(
            [mirror.root for mirror in mirrors], work / "merged"
        )
        assert summary["content_hash"] == serial_hash
        print(f"\nmerged {summary['total']} artifacts; "
              "merged hash equals the serial run: convergence held\n")

        # -- 6. the same pull over a hostile wire -----------------------
        # One bit flipped in transit: the digest check catches it, the
        # document is re-fetched, and the landed store is still clean.
        print("hostile wire: pull shard 0 through a bit-flipping transport")
        hostile = RemoteStore(
            ArtifactStore(work / "hostile-mirror"),
            FaultyTransport(
                LocalDirTransport(remote_root / "shard-0-store"),
                bit_flip=1,
            ),
            echo=None,
        )
        report = hostile.pull()
        assert report.ok and report.refetches == 1
        assert hostile.local.verify().ok
        assert (
            hostile.local.content_hash()
            == ArtifactStore(work / "mirror-0").content_hash()
        )
        print(f"  corruption detected and re-fetched "
              f"(refetches={report.refetches}); landed store verifies ok")


if __name__ == "__main__":
    main()
