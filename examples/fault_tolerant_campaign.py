"""Fault-tolerant campaign walkthrough: kill the workers, keep the bytes.

The paper's central complaint is that big-data experiments are rarely
reproducible; a campaign that dies halfway and merges a subtly
different result is the worst version of that.  The campaign fabric's
answer is *convergence*: workers hold heartbeat-renewed leases, a
supervisor (``repro campaign run``) relaunches the dead with backoff,
charges each death to the blamed cell, quarantines cells that exhaust
their retry budget, and lets idle workers steal pending chains — and
through all of it the merged store is byte-identical to an unperturbed
serial run.

This script stages two incidents against real ``repro worker``
subprocesses using the seeded chaos harness (:mod:`repro.runtime.chaos`):

1. a worker is SIGKILLed mid-shard — the supervisor detects the death,
   relaunches, and the campaign converges to the serial content hash;
2. a *poison* cell fails every attempt — the supervisor quarantines it
   (and its chained successor) into ``failures.json`` and merges the
   rest, refusing to pretend the campaign was whole.

Along the way ``ArtifactStore.verify()`` audits every store the same
way ``repro store verify`` does from the shell.

Run with:  python examples/fault_tolerant_campaign.py
"""

import json
import os
import tempfile
from pathlib import Path

import repro
from repro.runtime import ArtifactStore, run_campaign, run_manifest
from repro.runtime.chaos import CHAOS_ENV, deactivate, demo_codec, demo_matrix

SEED = 11
N_SHARDS = 2


def write_shards(directory: Path, cells) -> list[Path]:
    from repro.runtime import write_shard_manifests

    codec = demo_codec()
    return write_shard_manifests(
        cells, N_SHARDS, directory, codec.encode_ref,
        decode_ref=codec.decode_ref,
    )


def main() -> None:
    # Worker subprocesses must import `repro` from this checkout.
    src_dir = Path(repro.__file__).resolve().parent.parent
    existing = os.environ.get("PYTHONPATH", "")
    os.environ["PYTHONPATH"] = (
        f"{src_dir}:{existing}" if existing else str(src_dir)
    )

    cells = demo_matrix(n_chains=4, chain_len=2, seed=SEED)
    print(f"campaign: {len(cells)} cells in 4 chains, {N_SHARDS} shards")

    with tempfile.TemporaryDirectory() as tmp:
        work = Path(tmp)

        # The ground truth: one serial, unperturbed run.
        serial_dir = work / "serial"
        write_shards(serial_dir, cells)  # n_shards manifests, run as one
        for manifest in sorted(serial_dir.glob("shard-*.json")):
            run_manifest(manifest, serial_dir / "store", echo=None)
        serial_hash = ArtifactStore(serial_dir / "store").content_hash()
        print(f"serial reference hash: {serial_hash[:16]}...\n")

        # -- incident 1: SIGKILL a worker mid-shard ---------------------
        print("incident 1: kill a worker at its second cell")
        kill_dir = work / "kill"
        write_shards(kill_dir / "shards", cells)
        chaos = work / "chaos-kill.json"
        chaos.write_text(json.dumps({
            "schema": 1,
            "state_dir": str(work / "chaos-state"),
            "kill_at_cell": {"index": 1, "times": 1},
        }))
        os.environ[CHAOS_ENV] = str(chaos)
        summary = run_campaign(
            kill_dir / "shards",
            store_root=kill_dir / "merged",
            lease_ttl_s=10.0, poll_s=0.05,
            backoff_base_s=0.05, backoff_cap_s=0.2,
            max_wall_s=120.0, echo=None,
        )
        print(f"  worker deaths: {summary['deaths']}, "
              f"launches: {summary['launches']}")
        assert summary["ok"] and summary["deaths"] >= 1
        assert summary["merged"]["content_hash"] == serial_hash
        print("  merged hash equals the serial run: convergence held\n")

        # -- incident 2: a poison cell ----------------------------------
        print("incident 2: one cell fails every attempt")
        poison_dir = work / "poison"
        manifests = write_shards(poison_dir / "shards", cells)
        poison = json.loads(manifests[0].read_text())["cells"][0]["key"]
        chaos = work / "chaos-poison.json"
        chaos.write_text(json.dumps({
            "schema": 1, "poison_keys": [poison],
        }))
        os.environ[CHAOS_ENV] = str(chaos)
        summary = run_campaign(
            poison_dir / "shards",
            store_root=poison_dir / "merged",
            allow_partial=True, max_retries=1,
            lease_ttl_s=10.0, poll_s=0.05,
            backoff_base_s=0.05, backoff_cap_s=0.2,
            max_wall_s=120.0, echo=None,
        )
        assert not summary["ok"]
        assert summary["quarantined"] == (poison,)
        report = json.loads(
            (poison_dir / "shards" / "failures.json").read_text()
        )
        print(f"  quarantined: {list(report['cells'])}")
        print(f"  blocked successors: {report['blocked']}")
        merged = ArtifactStore(poison_dir / "merged")
        lost = len(cells) - len(merged.keys())
        print(f"  partial merge kept {len(merged.keys())}/{len(cells)} "
              f"cells (the poisoned chain cost {lost})\n")

        # -- the audit behind `repro store verify` ----------------------
        del os.environ[CHAOS_ENV]
        deactivate()
        for root in (serial_dir / "store", kill_dir / "merged",
                     poison_dir / "merged"):
            audit = ArtifactStore(root).verify()
            state = "ok" if audit.ok else "CORRUPT"
            print(f"store verify {root.name}: {audit.checked} artifacts, "
                  f"{state}")


if __name__ == "__main__":
    main()
