"""Variability-aware experiment planning (findings F5.2-F5.4).

The workflow the paper recommends, end to end:

1. fingerprint the platform's network (base rates + token-bucket
   parameters);
2. run a small pilot of the real experiment;
3. let CONFIRM project how many repetitions the full study needs for
   the target error bound;
4. derive the rest duration that returns the infrastructure to a
   known state between repetitions;
5. execute the planned design and emit a publishable report bundling
   results with the fingerprint.

Run with:  python examples/experiment_design_advisor.py
"""

import numpy as np

from repro.cloud import Ec2Provider
from repro.core import (
    ExperimentDesign,
    ExperimentReport,
    ExperimentRunner,
    ResetPolicy,
    recommend_repetitions,
    recommend_rest_duration,
    render_report,
)
from repro.core.runner import SimulatorExperiment
from repro.measurement import fingerprint_link
from repro.paper._common import token_bucket_cluster
from repro.workloads import hibench_job


def main() -> None:
    rng = np.random.default_rng(3)
    provider = Ec2Provider()

    # 1. Fingerprint the platform.
    fp = fingerprint_link(
        provider.link_model("c5.xlarge", rng), provider.latency_model(), rng=rng
    )
    print("fingerprint: bucket empties in "
          f"{fp.token_bucket.time_to_empty_s:.0f} s at full speed")

    # 2. Pilot: 12 repetitions of WordCount at a realistic budget.
    experiment = SimulatorExperiment(
        token_bucket_cluster(400.0),
        hibench_job("WC"),
        rng=np.random.default_rng(5),
        budget_gbit=400.0,
        run_noise_cov=0.03,
    )
    pilot_design = ExperimentDesign(repetitions=12, error_bound=0.02)
    pilot = ExperimentRunner(pilot_design).collect(experiment)
    print(f"pilot: n=12, median {np.median(pilot):.1f} s, "
          f"CoV {np.std(pilot)/np.mean(pilot):.1%}")

    # 3. How many repetitions does the full study need?
    needed = recommend_repetitions(pilot, error_bound=0.02)
    print(f"CONFIRM projection: {needed} repetitions for 2% error bounds")

    # 4. How long must the network rest between repetitions?
    rest = recommend_rest_duration(fp.token_bucket, refill_fraction=0.2)
    print(f"recommended rest between runs: {rest:.0f} s "
          "(refills the budget a WordCount consumes)")

    # 5. Execute the full design and publish.
    design = ExperimentDesign(
        repetitions=int(needed),
        reset_policy=ResetPolicy.REST,
        rest_s=float(rest),
        error_bound=0.02,
    )
    samples = ExperimentRunner(design).collect(experiment)
    report = ExperimentReport.build(
        title="WordCount on emulated c5.xlarge cluster",
        samples=samples,
        design=design,
        fingerprint=fp,
        environment={
            "instance": "c5.xlarge (emulated)",
            "cluster": "12 nodes x 4 slots",
            "workload": "HiBench WordCount, BigData scale",
        },
    )
    print("\n" + render_report(report))


if __name__ == "__main__":
    main()
