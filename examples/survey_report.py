"""Reproduce the Section 2 literature survey, end to end.

Builds the corpus, runs the two filter stages (Table 2's funnel),
double-reviews the selection with Cohen's Kappa agreement, and prints
the Figure 1 aggregates with the paper's headline claims.

Run with:  python examples/survey_report.py
"""

from repro.survey import (
    aggregate_figure1,
    generate_corpus,
    keyword_filter,
    manual_cloud_filter,
    run_double_review,
    survey_funnel,
)


def main() -> None:
    corpus = generate_corpus(seed=0)
    funnel = survey_funnel(corpus)
    print("== Table 2: survey funnel ==")
    print(f"articles total:        {funnel.total}")
    print(f"keyword-filtered:      {funnel.keyword_matched}")
    print(f"cloud experiments:     {funnel.cloud_experiments} "
          f"({funnel.per_venue})")
    print(f"citations of selection: {funnel.citations}")

    selected = manual_cloud_filter(keyword_filter(corpus))
    outcome = run_double_review(selected)
    summary = aggregate_figure1(selected, outcome)

    print("\n== Figure 1a: experiment reporting ==")
    print(f"reporting average/median: {summary.pct_reporting_center:.1f}%")
    print(f"reporting variability:    {summary.pct_reporting_variability:.1f}%")
    print(f"no/poor specification:    {summary.pct_underspecified:.1f}%")
    print(
        "of the center-reporting articles, "
        f"{summary.variability_share_of_center:.0%} report variability"
    )

    print("\n== Figure 1b: repetitions among well-specified articles ==")
    for reps, pct in summary.repetition_histogram_pct.items():
        bar = "#" * int(round(pct))
        print(f"{reps:>4} repetitions: {pct:4.1f}%  {bar}")
    print(
        f"{summary.low_repetition_share:.0%} of well-specified studies "
        "use <= 15 repetitions"
    )

    print("\n== reviewer agreement (Cohen's Kappa) ==")
    for category, kappa in summary.kappa.items():
        print(f"{category:22s} {kappa:.2f}")


if __name__ == "__main__":
    main()
