"""Randomized scenario sweep: does the paper generalize off-script?

The paper's application results use three fixed suites; this example
manufactures workloads instead.  A seeded matrix of scenario cells
(provider x arrival rate x scheduler) each runs a Poisson stream of
randomized DAG jobs on one shared, token-bucket-shaped fabric, then the
sweep table reports per-cell runtime dispersion — the multi-tenant
generalization of Figure 19's carry-over effect.  Results are cached in
a TraceRepository, so re-running the script recomputes nothing.

Run with:  python examples/scenario_sweep.py
"""

import tempfile

from repro.measurement import TraceRepository
from repro.scenarios import ScenarioCampaign, scenario_matrix

SEED = 7


def main() -> None:
    configs = scenario_matrix(
        providers=("amazon", "google"),
        arrival_rates=(1.0, 4.0),
        schedulers=("fifo", "fair"),
        n_jobs=3,
        n_nodes=4,
        data_scale=0.05,
        seed=SEED,
    )
    print(f"scenario sweep: {len(configs)} cells, seed {SEED}\n")

    with tempfile.TemporaryDirectory() as cache_dir:
        repository = TraceRepository(cache_dir)
        outcome = ScenarioCampaign(
            configs, repository=repository, workers=2
        ).run()

        print(f"{'provider':10s} {'rate/min':>8s} {'sched':>5s} "
              f"{'mean_s':>8s} {'cov':>7s}")
        for row in outcome.aggregate_rows():
            print(
                f"{row['provider']:10s} {row['rate_per_min']:8.1f} "
                f"{row['scheduler']:>5s} {row['mean_runtime_s']:8.1f} "
                f"{row['cov']:7.3f}"
            )
        print(f"\ncomputed {len(outcome.computed_ids)} cells, "
              f"cached {len(outcome.cached_ids)}")

        # Second pass: every cell comes from the repository.
        rerun = ScenarioCampaign(
            configs, repository=repository, workers=2
        ).run()
        assert rerun.aggregate_rows() == outcome.aggregate_rows()
        print(f"re-run cache hits: {len(rerun.cached_ids)}/{len(configs)} "
              f"(fraction {rerun.cache_hit_fraction:.0%})")

    # The scheduler is a real axis: fair trades tail latency for mean.
    fifo_cov = [r["cov"] for r in outcome.aggregate_rows() if r["scheduler"] == "fifo"]
    fair_cov = [r["cov"] for r in outcome.aggregate_rows() if r["scheduler"] == "fair"]
    print(f"\nmedian CoV   fifo={sorted(fifo_cov)[len(fifo_cov) // 2]:.3f}   "
          f"fair={sorted(fair_cov)[len(fair_cov) // 2]:.3f}")


if __name__ == "__main__":
    main()
