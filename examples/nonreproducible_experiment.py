"""Watch a sound-looking experiment go wrong (Figure 19's lesson).

Two experimenters measure the same query with the same number of
repetitions.  One creates fresh VMs for every repetition; the other
runs back-to-back in the same VMs, silently draining the hidden token
budget.  The analysis pipeline flags the second sample as non-iid —
the exact pathology Section 4.2 demonstrates.

Run with:  python examples/nonreproducible_experiment.py
"""

import numpy as np

from repro.core import (
    ExperimentDesign,
    ExperimentRunner,
    ResetPolicy,
    analyze_sample,
)
from repro.core.runner import SimulatorExperiment
from repro.paper._common import token_bucket_cluster
from repro.workloads import tpcds_job

REPETITIONS = 24
BUDGET = 700.0  # realistic leftover budget on a used deployment


def build_experiment(seed: int) -> SimulatorExperiment:
    return SimulatorExperiment(
        token_bucket_cluster(BUDGET),
        tpcds_job(65, n_nodes=12, slots=4),
        rng=np.random.default_rng(seed),
        budget_gbit=BUDGET,
        run_noise_cov=0.02,
    )


def main() -> None:
    fresh_design = ExperimentDesign(
        repetitions=REPETITIONS, reset_policy=ResetPolicy.FRESH
    )
    careless_design = ExperimentDesign(
        repetitions=REPETITIONS, reset_policy=ResetPolicy.NONE
    )

    fresh = ExperimentRunner(fresh_design).collect(build_experiment(seed=1))
    careless = ExperimentRunner(careless_design).collect(build_experiment(seed=1))

    print("TPC-DS Q65, 24 repetitions, two protocols\n")
    for name, samples in (("fresh VMs", fresh), ("back-to-back", careless)):
        report = analyze_sample(samples)
        ci = report.ci
        print(f"-- {name} --")
        print(f"first 5 runtimes: {np.round(samples[:5], 1)}")
        print(f"last 5 runtimes:  {np.round(samples[-5:], 1)}")
        print(f"median {report.dispersion.median:.1f} s, "
              f"CI [{ci.low:.1f}, {ci.high:.1f}]")
        print(report.verdict())
        print()

    print(
        "Same code, same cloud, same repetition count — only the reset\n"
        "policy differs. The back-to-back sample is not iid, its median\n"
        "is biased, and its CI is meaningless (F4.4/F5.4)."
    )


if __name__ == "__main__":
    main()
