"""Shaper-fleet scaling: the O(N) model loop vs one batched fleet.

Before PR 3, every fluid-simulation step asked each node's egress
shaper for its ceiling, horizon, and state update in a Python loop —
per-step cost grew linearly with cluster size even when nothing but
the shapers changed.  The struct-of-arrays fleets in
``repro.netmodel.fleet`` replace that loop with a handful of numpy
operations whose cost is nearly flat in node count.

This example sweeps the node count 16 -> 256 over the ``shaper_64_tb``
benchmark workload (sparse never-completing flows through
tier-oscillating token buckets — reused from ``repro.bench.hotpath``
so the example demonstrates exactly the pinned case) and prints the
achieved event-step rate through the vectorized fleet and through the
scalar-adapter reference loop.  Watch the scalar column's step rate
collapse with N while the fleet column barely moves.

Run with:  python examples/fleet_scaling.py
"""

from repro.bench.hotpath import _run_shaper_sweep

DURATION_S = 600.0
MAX_STEP_S = 0.1


def main() -> None:
    print(f"shaper-fleet scaling sweep ({DURATION_S:.0f}s of fluid time per cell)\n")
    print(
        f"{'nodes':>6s} {'fleet_steps/s':>14s} {'scalar_steps/s':>15s} "
        f"{'speedup':>8s}"
    )
    for n_nodes in (16, 32, 64, 128, 256):
        fleet = _run_shaper_sweep(
            n_nodes, DURATION_S, MAX_STEP_S, scalar_fleet=False
        )
        scalar = _run_shaper_sweep(
            n_nodes, DURATION_S, MAX_STEP_S, scalar_fleet=True
        )
        # Bit-exact by construction: both paths must walk the same
        # trajectory, or the speedup is between different simulations.
        assert fleet["checksum"] == scalar["checksum"]
        assert fleet["n_steps"] == scalar["n_steps"]
        fleet_rate = (
            fleet["n_steps"] / fleet["wall_s"]
            if fleet["wall_s"] > 0
            else float("inf")
        )
        scalar_rate = (
            scalar["n_steps"] / scalar["wall_s"]
            if scalar["wall_s"] > 0
            else float("inf")
        )
        speedup = (
            scalar["wall_s"] / fleet["wall_s"]
            if fleet["wall_s"] > 0
            else float("inf")
        )
        print(
            f"{n_nodes:6d} {fleet_rate:14.0f} {scalar_rate:15.0f} "
            f"{speedup:7.2f}x"
        )
    print(
        "\nThe scalar loop pays ~3 Python calls per node per step; the"
        "\nfleet pays a fixed handful of array ops regardless of N."
    )


if __name__ == "__main__":
    main()
