"""Sharded campaign walkthrough: one matrix, many machines.

The paper's Table 3 burned weeks of wall-clock and thousands of
dollars because every configuration ran start to finish in one place.
The `repro.runtime` layer splits a campaign the other way: the matrix
is partitioned into per-machine *shard manifests*, each machine runs
``python -m repro worker <manifest> --store <dir>`` (crash it, re-run
it — finished cells are never recomputed), and the shard stores merge
back into one campaign store whose bytes are identical to a serial
run's.

This script walks the full round trip locally:

1. generate shard manifests for a seeded scenario matrix,
2. "ship" each shard to a worker (here: the in-process entry point the
   CLI wraps),
3. interrupt one worker mid-shard and resume it,
4. merge the shard stores and prove the merged store matches a serial
   run, content hash for content hash.

Run with:  python examples/sharded_campaign.py
"""

import tempfile
from pathlib import Path

from repro.measurement import TraceRepository
from repro.runtime import ArtifactStore, merge_stores, run_manifest
from repro.scenarios import ScenarioCampaign, scenario_matrix

SEED = 7
N_SHARDS = 2


def main() -> None:
    configs = scenario_matrix(
        providers=("amazon", "google"),
        arrival_rates=(1.0, 4.0),
        schedulers=("fifo", "fair"),
        n_jobs=3,
        n_nodes=4,
        data_scale=0.05,
        seed=SEED,
    )
    campaign = ScenarioCampaign(configs)
    print(f"campaign: {len(configs)} cells, seed {SEED}, "
          f"{N_SHARDS} shards\n")

    with tempfile.TemporaryDirectory() as tmp:
        work = Path(tmp)

        # 1. The coordinator writes one manifest per machine.  On real
        # deployments these files (plus the package) are all a worker
        # machine needs.
        manifests = campaign.shard_manifests(work / "shards", N_SHARDS)
        for manifest in manifests:
            print(f"wrote {manifest.name}")

        # 2. Each machine executes its manifest into its own store.
        # Shard 0 runs to completion; shard 1 is interrupted after its
        # first cell to simulate preemption.
        shard_stores = [work / f"shard-{i}-store" for i in range(N_SHARDS)]
        summary = run_manifest(manifests[0], shard_stores[0], echo=None)
        print(f"\nshard 0: computed {len(summary['computed'])} cells")

        interrupted = _run_until_first_cell(manifests[1], shard_stores[1])
        print(f"shard 1: interrupted after {interrupted} cell(s)")

        # 3. Resume = re-run the same command line.  Stored cells are
        # skipped; only the unfinished remainder computes.
        summary = run_manifest(manifests[1], shard_stores[1], echo=None)
        print(f"shard 1 resumed: {len(summary['cached'])} cached, "
              f"{len(summary['computed'])} computed")

        # 4. Merge the shard stores into the campaign store.
        merged = merge_stores(shard_stores, work / "campaign-store")
        print(f"\nmerged {len(merged['adopted'])} cells -> "
              f"{merged['store']}")

        # The merged store is indistinguishable from a serial run...
        serial_repo = TraceRepository(work / "serial-store")
        serial = ScenarioCampaign(configs, repository=serial_repo).run()
        serial_hash = serial_repo.artifacts.content_hash()
        assert merged["content_hash"] == serial_hash
        print("content hash matches a serial run:", serial_hash[:16], "...")

        # ...and serves the whole sweep from cache.
        merged_repo = TraceRepository(work / "campaign-store")
        replay = ScenarioCampaign(configs, repository=merged_repo).run()
        assert replay.aggregate_rows() == serial.aggregate_rows()
        print(f"replay against merged store: "
              f"{len(replay.cached_ids)}/{len(configs)} cache hits")


def _run_until_first_cell(manifest: Path, store_root: Path) -> int:
    """Run a shard but "crash" it after its first completed cell."""
    from repro.scenarios import orchestrate

    class Preempted(RuntimeError):
        pass

    real = orchestrate.run_scenario
    done = 0

    def preempting(config):
        nonlocal done
        if done >= 1:
            raise Preempted("spot instance reclaimed")
        done += 1
        return real(config)

    # The worker surfaces a raising cell as CellExecutionError — the
    # retryable half of its exit-code protocol — with the original
    # message preserved.
    from repro.runtime import CellExecutionError

    orchestrate.run_scenario = preempting
    try:
        run_manifest(manifest, store_root, echo=None)
    except CellExecutionError as exc:
        assert "spot instance reclaimed" in str(exc)
    finally:
        orchestrate.run_scenario = real
    return len(ArtifactStore(store_root).keys())


if __name__ == "__main__":
    main()
