"""Serving SLOs on a variable fabric: the paper's question at p99.

The paper shows that hidden shaper state decides *batch* runtimes; a
microservice's tail latency is even more exposed, because one node's
depleted shaper sits on every request's critical path.  This example
builds a three-tier call tree, drives it with a flash-crowd arrival
burst at the same seeded operating point twice — once on resampling
HPC-cloud link incarnations, once on a constant-rate "fixed" fabric at
the same class-median capacity — and gates both runs with the same
p99 SLO.  Same mean bandwidth, same arrivals, same compute noise: only
the variability differs, and only the variable fabric fails the SLO.

Run with:  python examples/serving_slo.py
"""

from repro.serving import ServingConfig, run_serving

SEED = 1


def serve_on(provider: str, instance: str):
    config = ServingConfig(
        provider_name=provider,
        instance_name=instance,
        n_nodes=4,
        topology="three_tier",
        arrival="flash",
        rate_rps=90.0,
        duration_s=60.0,
        slo_p99_ms=500.0,
        slo_window_s=10.0,
        seed=SEED,
    )
    return config, run_serving(config)


def main() -> None:
    print("serving SLO gate: three-tier fan-out, flash crowd at 90 rps, "
          f"seed {SEED}\n")

    legs = [
        ("variable", "hpccloud", "hpccloud-8core"),
        ("fixed-rate", "fixed", "fixed-9gbps"),
    ]
    reports = {}
    for label, provider, instance in legs:
        config, result = serve_on(provider, instance)
        reports[label] = result
        lat = result.latency
        print(f"[{label}] {provider}/{instance}  cell {config.serving_id}")
        print(f"  {result.n_completed}/{result.n_requests} requests in "
              f"{result.makespan_s:.1f} s simulated")
        print(f"  p50 {lat['p50'] * 1e3:7.1f} ms   "
              f"p99 {lat['p99'] * 1e3:7.1f} ms   "
              f"max {lat['max_s'] * 1e3:7.1f} ms")
        print(f"  {'quantile':>8s} {'target_ms':>10s} {'worst_ms':>10s} "
              f"{'violations':>10s} {'status':>6s}")
        for row in result.slo.verdict_rows():
            print(f"  {row['quantile']:>8s} {row['target_ms']:10.1f} "
                  f"{row['worst_ms']:10.1f} {row['violations']:10d} "
                  f"{row['status']:>6s}")
        verdict = "PASS" if result.slo.passed else "FAIL"
        print(f"  slo verdict: {verdict} "
              f"({result.slo_violations} violation window(s))\n")

    variable, fixed = reports["variable"], reports["fixed-rate"]
    assert not variable.slo.passed and fixed.slo.passed
    print("same mean capacity, same arrivals — but only the variable "
          "fabric breaks the SLO:")
    print(f"  variable fabric: {variable.slo_violations} violation "
          f"window(s), worst p99 "
          f"{variable.slo.worst['p99'] * 1e3:.0f} ms")
    print(f"  fixed fabric:    {fixed.slo_violations} violation "
          f"window(s), worst p99 {fixed.slo.worst['p99'] * 1e3:.0f} ms")
    print("\nshaper variability, not mean bandwidth, decides the p99 "
          "verdict — the paper's reproducibility gap, restated as an SLO")


if __name__ == "__main__":
    main()
