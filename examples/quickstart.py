"""Quickstart: measure a cloud, fingerprint it, run a workload.

This walks the library's three layers in ~60 lines:

1. measure raw network behaviour of an emulated EC2 c5.xlarge pair
   (the token-bucket drop is visible within minutes of transfer);
2. fingerprint the link (F5.2) — base bandwidth/latency plus the
   identified token-bucket parameters;
3. run Terasort on a 12-node cluster shaped by that policy at two
   budgets and see the application-level slowdown.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.cloud import Ec2Provider
from repro.core.runner import SimulatorExperiment
from repro.emulator import FULL_SPEED
from repro.measurement import BandwidthProbe, fingerprint_link
from repro.netmodel import TokenBucketModel
from repro.paper._common import token_bucket_cluster
from repro.workloads import hibench_job


def main() -> None:
    rng = np.random.default_rng(7)
    provider = Ec2Provider()

    # 1. Raw measurement: one hour of full-speed transfer.
    model = provider.link_model("c5.xlarge", rng)
    trace = BandwidthProbe(model, FULL_SPEED).run(3_600.0, rng=rng)
    print("== one hour of full-speed iperf on c5.xlarge ==")
    print(f"first 10s window: {trace.values[0]:.1f} Gbps")
    print(f"last 10s window:  {trace.values[-1]:.1f} Gbps")
    print(f"box summary:      {trace.box_summary().as_dict()}")

    # 2. Fingerprint the link (F5.2).
    fresh = provider.link_model("c5.xlarge", rng)
    fp = fingerprint_link(fresh, provider.latency_model(), rng=rng)
    tb = fp.token_bucket
    print("\n== network fingerprint ==")
    print(f"base bandwidth: {fp.base_bandwidth_gbps:.1f} Gbps")
    print(f"base latency:   {fp.base_latency_ms:.2f} ms")
    print(
        f"token bucket:   high {tb.high_gbps:.1f} Gbps, low {tb.low_gbps:.1f} "
        f"Gbps, empties in {tb.time_to_empty_s:.0f} s"
    )

    # 3. Application impact: Terasort at a fresh vs depleted budget.
    print("\n== Terasort on a 12-node shaped cluster ==")
    for budget in (5_000.0, 10.0):
        experiment = SimulatorExperiment(
            token_bucket_cluster(budget),
            hibench_job("TS"),
            rng=np.random.default_rng(1),
            budget_gbit=budget,
        )
        runtime = experiment.measure()
        print(f"initial budget {budget:7.0f} Gbit -> runtime {runtime:6.1f} s")


if __name__ == "__main__":
    main()
